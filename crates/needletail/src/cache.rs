//! A small bounded LRU map for the engine's planning caches.
//!
//! The engine caches evaluated predicate bitmaps and ready group plans per
//! immutable table ([`crate::engine::NeedleTail`]); both caches are tiny
//! (dozens of entries) but must not grow without bound under an adversarial
//! stream of distinct queries. This map is the minimal structure that
//! serves: a `HashMap` tagged with a monotone use tick, evicting the
//! least-recently-used entry on overflow. Eviction is an `O(capacity)`
//! scan — at the capacities the engine uses (≤ 64) that is a few cache
//! lines, far below the cost of the plan it replaces, and it keeps the
//! structure free of the unsafe pointer juggling an intrusive LRU list
//! would need (this crate is `#![forbid(unsafe_code)]`).

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    /// Value plus the tick of its last use.
    map: HashMap<K, (u64, V)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            tick: 0,
        }
    }

    /// Number of entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// The bound this cache was created with (entries, not bytes).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks `key` up, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            &slot.1
        })
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// if the cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                // lint: allow(determinism) — min_by_key over strictly unique
                // monotone ticks has one answer regardless of visit order
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_reported_and_survives_clear() {
        let mut c: LruCache<&str, u32> = LruCache::new(3);
        assert_eq!(c.capacity(), 3);
        c.insert("a", 1);
        c.clear();
        assert_eq!(c.capacity(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
