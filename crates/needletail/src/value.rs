//! Typed scalar values.

use std::fmt;

/// A scalar value stored in a [`crate::table::Table`] cell.
///
/// Group-by attributes are usually [`Value::Str`] or [`Value::Int`]; measure
/// attributes (the `Y` in `SELECT X, AVG(Y)`) are [`Value::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is rejected at ingest so `Value` ordering is total.
    Float(f64),
    /// UTF-8 string (dictionary-encoded in storage).
    Str(String),
}

impl Value {
    /// The float view of a numeric value; `None` for strings.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// The string view; `None` for numerics.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The data type of this value.
    #[must_use]
    pub fn data_type(&self) -> crate::schema::DataType {
        match self {
            Value::Int(_) => crate::schema::DataType::Int,
            Value::Float(_) => crate::schema::DataType::Float,
            Value::Str(_) => crate::schema::DataType::Str,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("UA"), Value::Str("UA".into()));
    }

    #[test]
    fn as_f64() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.0).data_type(), DataType::Float);
        assert_eq!(Value::Str("a".into()).data_type(), DataType::Str);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Str("JB".into()).to_string(), "JB");
    }
}
