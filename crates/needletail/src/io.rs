//! Deterministic I/O + CPU cost model.
//!
//! The paper's wall-clock experiments (Figures 3b, 4a–c; Table 3) ran on a
//! specific server: spinning disks read sequentially at ~800 MB/s through
//! 1 MB Direct-I/O blocks, a single core performs ~10 M hash-map updates per
//! second, and the bitmap index retrieves one matching tuple per random
//! block read. We do not have that hardware, so — per the substitution rule
//! in DESIGN.md §4 — [`DiskModel`] reproduces those figures as a
//! *deterministic cost model*: the experiment harness feeds it the exact
//! operation counts ([`crate::metrics::MetricsSnapshot`]-style) and it
//! returns I/O and CPU seconds.
//!
//! Because every §5 time series is a monotone function of sample counts and
//! bytes scanned, the model preserves the *shape* of every figure (who wins,
//! crossovers, constants-vs-linear growth) even though absolute seconds
//! differ from the authors' testbed. The defaults are calibrated to the
//! constants the paper states or implies (§5.2): 800 MB/s sequential
//! bandwidth, 1e-7 s CPU per scanned record, and ~2 µs per random sample
//! (IFOCUS touches ~2M samples in 3.9 s at 10^9 records).

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Direct-I/O block size in bytes (paper: 1 MB).
    pub block_bytes: u64,
    /// Sequential read bandwidth in bytes/second (paper: ~800 MB/s).
    pub seq_bandwidth: f64,
    /// I/O seconds charged per random tuple retrieval (one block fetch
    /// through the hierarchical bitmap index).
    pub random_io_seconds_per_sample: f64,
    /// CPU seconds per sequentially scanned record (hash probe + update;
    /// paper: ~10 M updates/s on one thread).
    pub cpu_seconds_per_scan_record: f64,
    /// CPU seconds per sampled record (running-mean update + interval
    /// bookkeeping).
    pub cpu_seconds_per_sample: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl DiskModel {
    /// Defaults calibrated to the constants reported in §5.2.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            block_bytes: 1 << 20,
            seq_bandwidth: 800.0 * (1 << 20) as f64,
            random_io_seconds_per_sample: 1.5e-6,
            cpu_seconds_per_scan_record: 1.0e-7,
            cpu_seconds_per_sample: 0.5e-6,
        }
    }

    /// Cost of a full sequential scan over `total_bytes` containing
    /// `total_records` records.
    #[must_use]
    pub fn scan_cost(&self, total_bytes: u64, total_records: u64) -> CostBreakdown {
        let blocks = total_bytes.div_ceil(self.block_bytes).max(1);
        CostBreakdown {
            io_seconds: (blocks * self.block_bytes) as f64 / self.seq_bandwidth,
            cpu_seconds: total_records as f64 * self.cpu_seconds_per_scan_record,
        }
    }

    /// Cost of `samples` random tuple retrievals plus their per-sample CPU.
    #[must_use]
    pub fn sampling_cost(&self, samples: u64) -> CostBreakdown {
        CostBreakdown {
            io_seconds: samples as f64 * self.random_io_seconds_per_sample,
            cpu_seconds: samples as f64 * self.cpu_seconds_per_sample,
        }
    }
}

/// I/O and CPU seconds for an operation, reported separately exactly as
/// Figures 4b/4c do.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Seconds spent on (modelled) disk I/O.
    pub io_seconds: f64,
    /// Seconds spent on (modelled) CPU work.
    pub cpu_seconds: f64,
}

impl CostBreakdown {
    /// Total seconds (the model is single-threaded, like the paper's runs,
    /// so I/O and CPU add).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.io_seconds + self.cpu_seconds
    }
}

impl std::ops::Add for CostBreakdown {
    type Output = CostBreakdown;

    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_seconds: self.io_seconds + rhs.io_seconds,
            cpu_seconds: self.cpu_seconds + rhs.cpu_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_linear_in_bytes() {
        let m = DiskModel::paper_default();
        let c1 = m.scan_cost(8 << 30, 1_000_000_000);
        let c10 = m.scan_cost(80 << 30, 10_000_000_000);
        assert!((c10.io_seconds / c1.io_seconds - 10.0).abs() < 0.01);
        assert!((c10.cpu_seconds / c1.cpu_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_scan_seconds() {
        // 8 GB at 800 MB/s ≈ 10.2 s of I/O; 1e9 records at 1e-7 s = 100 s CPU.
        let m = DiskModel::paper_default();
        let c = m.scan_cost(8 << 30, 1_000_000_000);
        assert!((c.io_seconds - 10.24).abs() < 0.1, "io {c:?}");
        assert!((c.cpu_seconds - 100.0).abs() < 1.0, "cpu {c:?}");
    }

    #[test]
    fn sampling_linear_in_samples() {
        let m = DiskModel::paper_default();
        let c = m.sampling_cost(2_000_000);
        assert!((c.io_seconds - 3.0).abs() < 0.01);
        assert!((c.cpu_seconds - 1.0).abs() < 0.01);
        assert!((c.total_seconds() - 4.0).abs() < 0.02);
    }

    #[test]
    fn sampling_beats_scan_at_paper_scale() {
        // The paper's headline: at 10^9 records IFOCUS (≈2M samples) is an
        // order of magnitude faster than SCAN.
        let m = DiskModel::paper_default();
        let ifocus = m.sampling_cost(2_000_000).total_seconds();
        let scan = m.scan_cost(8 << 30, 1_000_000_000).total_seconds();
        assert!(scan / ifocus > 10.0, "scan {scan}s vs ifocus {ifocus}s");
    }

    #[test]
    fn scan_rounds_up_to_block() {
        let m = DiskModel::paper_default();
        let tiny = m.scan_cost(10, 1);
        // Even 10 bytes costs one full 1 MB block.
        assert!((tiny.io_seconds - (1 << 20) as f64 / m.seq_bandwidth).abs() < 1e-12);
    }

    #[test]
    fn costs_add() {
        let a = CostBreakdown {
            io_seconds: 1.0,
            cpu_seconds: 2.0,
        };
        let b = CostBreakdown {
            io_seconds: 0.5,
            cpu_seconds: 0.25,
        };
        let c = a + b;
        assert_eq!(c.io_seconds, 1.5);
        assert_eq!(c.cpu_seconds, 2.25);
        assert_eq!(c.total_seconds(), 3.75);
    }
}
