//! Per-attribute bitmap indexes.
//!
//! "For every value of every attribute in the relation that is indexed, the
//! bitmap index records a 1 at location i when the i-th tuple matches the
//! value for that attribute" (§4). [`BitmapIndex`] is exactly that: a sorted
//! map from distinct attribute value to a (representation-optimized)
//! [`Bitmap`], supporting equality probes and ordered range unions.

use crate::bitmap::{Bitmap, DenseBitmap};
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Totally ordered key form of a [`Value`] (floats via order-preserving bit
/// transform; NaN rejected at table ingest).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ValueKey {
    Int(i64),
    Float(u64),
    Str(String),
}

/// Order-preserving mapping from `f64` to `u64`.
fn float_key(f: f64) -> u64 {
    assert!(!f.is_nan(), "NaN cannot be indexed");
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

impl ValueKey {
    fn from_value(v: &Value) -> Self {
        match v {
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(float_key(*f)),
            Value::Str(s) => ValueKey::Str(s.clone()),
        }
    }
}

/// A bitmap index over one column of a table.
///
/// Per-value bitmaps are held behind [`Arc`] so the engine can hand them
/// to samplers, predicate evaluations, and plan-cache entries **zero-copy**
/// — an unfiltered `GROUP BY` query clones pointers, never table-sized
/// bitmaps.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    column: String,
    col_idx: usize,
    len: u64,
    /// Distinct value -> (original value, shared bitmap), ordered by value.
    entries: BTreeMap<ValueKey, (Value, Arc<Bitmap>)>,
}

impl BitmapIndex {
    /// Builds the index over `column` of `table` in one pass, then
    /// compresses each per-value bitmap into its smaller representation.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    #[must_use]
    pub fn build(table: &Table, column: &str) -> Self {
        let col_idx = table
            .schema()
            .column_index(column)
            // lint: allow(panic) — documented `# Panics` precondition of the
            // index builder, hit at table-load time with a caller-supplied
            // column name, never during query answering
            .unwrap_or_else(|| panic!("no column named {column:?}"));
        let len = table.row_count();
        let data_type = table.schema().columns()[col_idx].data_type;
        // Collect set-bit positions per distinct value.
        let mut positions: BTreeMap<ValueKey, (Value, Vec<u64>)> = BTreeMap::new();
        match data_type {
            DataType::Str => {
                // Avoid per-row string allocation via dictionary codes.
                let dict = table.str_dict(col_idx).to_vec();
                let mut per_code: Vec<Vec<u64>> = vec![Vec::new(); dict.len()];
                for row in 0..len {
                    per_code[table.str_code(row, col_idx) as usize].push(row);
                }
                for (code, rows) in per_code.into_iter().enumerate() {
                    let value = Value::Str(dict[code].clone());
                    positions.insert(ValueKey::from_value(&value), (value, rows));
                }
            }
            DataType::Int | DataType::Float => {
                for row in 0..len {
                    let value = table.value(row, col_idx);
                    positions
                        .entry(ValueKey::from_value(&value))
                        .or_insert_with(|| (value, Vec::new()))
                        .1
                        .push(row);
                }
            }
        }
        let entries = positions
            .into_iter()
            .filter(|(_, (_, rows))| !rows.is_empty())
            .map(|(key, (value, rows))| {
                let bm = Bitmap::Dense(DenseBitmap::from_sorted_positions(&rows, len)).optimize();
                (key, (value, Arc::new(bm)))
            })
            .collect();
        Self {
            column: column.to_owned(),
            col_idx,
            len,
            entries,
        }
    }

    /// The indexed column name.
    #[must_use]
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The indexed column position.
    #[must_use]
    pub fn column_index(&self) -> usize {
        self.col_idx
    }

    /// Number of rows covered.
    #[must_use]
    pub fn row_count(&self) -> u64 {
        self.len
    }

    /// Number of distinct indexed values.
    #[must_use]
    pub fn distinct_count(&self) -> usize {
        self.entries.len()
    }

    /// The distinct values in index (ascending) order.
    #[must_use]
    pub fn values(&self) -> Vec<Value> {
        self.entries.values().map(|(v, _)| v.clone()).collect()
    }

    /// The bitmap of rows matching `value` exactly, if any row does.
    #[must_use]
    pub fn bitmap_for(&self, value: &Value) -> Option<&Bitmap> {
        self.shared_bitmap_for(value).map(Arc::as_ref)
    }

    /// The shared handle to the bitmap of rows matching `value` exactly —
    /// cloning the returned [`Arc`] is the zero-copy path samplers and
    /// caches use.
    #[must_use]
    pub fn shared_bitmap_for(&self, value: &Value) -> Option<&Arc<Bitmap>> {
        self.entries
            .get(&ValueKey::from_value(value))
            .map(|(_, bm)| bm)
    }

    /// Number of rows matching `value` (0 if absent) — "group size from the
    /// index without touching disk".
    #[must_use]
    pub fn cardinality_of(&self, value: &Value) -> u64 {
        self.bitmap_for(value).map_or(0, Bitmap::count_ones)
    }

    /// OR of all bitmaps for numeric values in `[lo, hi]` (inclusive,
    /// either side optional). Strings are not range-indexable here.
    #[must_use]
    pub fn range_bitmap(&self, lo: Option<f64>, hi: Option<f64>) -> Bitmap {
        let mut acc: Option<Bitmap> = None;
        for (value, bm) in self.entries.values() {
            let Some(numeric) = value.as_f64() else {
                continue;
            };
            if lo.is_some_and(|l| numeric < l) || hi.is_some_and(|h| numeric > h) {
                continue;
            }
            acc = Some(match acc {
                None => (**bm).clone(),
                Some(a) => a.or(bm.as_ref()),
            });
        }
        acc.unwrap_or_else(|| Bitmap::zeros(self.len))
    }

    /// Total heap bytes across all per-value bitmaps.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.entries.values().map(|(_, bm)| bm.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
            ColumnDef::new("year", DataType::Int),
        ]));
        let rows = [
            ("AA", 30.0, 2007),
            ("JB", 15.0, 2007),
            ("AA", 20.0, 2008),
            ("UA", 85.0, 2008),
            ("JB", 10.0, 2008),
            ("AA", 25.0, 2008),
        ];
        for (n, d, y) in rows {
            b.push_row(vec![n.into(), d.into(), Value::Int(y)]);
        }
        b.finish()
    }

    #[test]
    fn string_index_partitions_rows() {
        let t = table();
        let idx = BitmapIndex::build(&t, "name");
        assert_eq!(idx.distinct_count(), 3);
        let aa = idx.bitmap_for(&"AA".into()).unwrap();
        assert_eq!(aa.iter_ones().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(idx.cardinality_of(&"JB".into()), 2);
        assert_eq!(idx.cardinality_of(&"ZZ".into()), 0);
        // Partition: bitmaps are disjoint and cover all rows.
        let total: u64 = idx.values().iter().map(|v| idx.cardinality_of(v)).sum();
        assert_eq!(total, t.row_count());
    }

    #[test]
    fn int_index_ordered_values() {
        let t = table();
        let idx = BitmapIndex::build(&t, "year");
        assert_eq!(
            idx.values(),
            vec![Value::Int(2007), Value::Int(2008)],
            "values must come back in ascending order"
        );
        assert_eq!(idx.cardinality_of(&Value::Int(2007)), 2);
        assert_eq!(idx.cardinality_of(&Value::Int(2008)), 4);
    }

    #[test]
    fn float_index_and_range() {
        let t = table();
        let idx = BitmapIndex::build(&t, "delay");
        assert_eq!(idx.cardinality_of(&Value::Float(30.0)), 1);
        let mid = idx.range_bitmap(Some(15.0), Some(30.0));
        // delays 15, 20, 25, 30 → rows 1, 2, 5, 0.
        assert_eq!(mid.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 5]);
        let open_low = idx.range_bitmap(None, Some(15.0));
        assert_eq!(open_low.iter_ones().collect::<Vec<_>>(), vec![1, 4]);
        let empty = idx.range_bitmap(Some(1000.0), None);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    fn float_key_preserves_order() {
        let mut xs = [-10.5, -0.0, 0.0, 1.0, 2.5, 1e9, -1e9];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let keys: Vec<u64> = xs.iter().map(|&x| super::float_key(x)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let t = table();
        let _ = BitmapIndex::build(&t, "missing");
    }
}
