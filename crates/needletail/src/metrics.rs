//! Operation counters.
//!
//! Every engine operation feeds a shared [`Metrics`] instance; the I/O cost
//! model ([`crate::io::DiskModel`]) turns the resulting counts into the
//! deterministic I/O / CPU second figures reported by the experiment
//! harness. Counters are atomic so handles can share one sink without
//! locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for engine activity.
#[derive(Debug, Default)]
pub struct Metrics {
    random_samples: AtomicU64,
    rows_scanned: AtomicU64,
    index_probes: AtomicU64,
    faulted_reads: AtomicU64,
    predicate_cache_hits: AtomicU64,
    predicate_cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    composite_cache_hits: AtomicU64,
    composite_cache_misses: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Random tuple retrievals (each costs one random block read).
    pub random_samples: u64,
    /// Rows read by sequential scans.
    pub rows_scanned: u64,
    /// In-memory bitmap index probes (rank/select/membership).
    pub index_probes: u64,
    /// Sampled-row reads dropped by an installed
    /// [`FaultInjector`](crate::fault::FaultInjector). The read was
    /// attempted (and charged as a random sample) but its value was never
    /// delivered. Always 0 without an injector.
    pub faulted_reads: u64,
    /// Predicate-bitmap LRU hits (repeat predicate evaluations served
    /// zero-copy). [`Predicate::True`](crate::Predicate::True) and bare
    /// indexed equalities bypass the cache entirely and count as neither
    /// hit nor miss.
    pub predicate_cache_hits: u64,
    /// Predicate-bitmap LRU misses (the predicate was evaluated against
    /// the table and the result cached).
    pub predicate_cache_misses: u64,
    /// Group-plan LRU hits: planning handed back ready `(label, rows)`
    /// sets with no predicate evaluation or per-group intersection.
    pub plan_cache_hits: u64,
    /// Group-plan LRU misses (the plan was built cold and cached).
    pub plan_cache_misses: u64,
    /// Composite (multi-attribute) index LRU hits.
    pub composite_cache_hits: u64,
    /// Composite index LRU misses (the joint index was built and cached).
    pub composite_cache_misses: u64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` random tuple retrievals.
    pub fn add_random_samples(&self, n: u64) {
        self.random_samples.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` sequentially scanned rows.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` index probes.
    pub fn add_index_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` sampled reads dropped by a fault injector.
    pub fn add_faulted_reads(&self, n: u64) {
        self.faulted_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one predicate-bitmap cache lookup (`hit` says which way).
    pub fn add_predicate_cache_lookup(&self, hit: bool) {
        if hit {
            self.predicate_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.predicate_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one group-plan cache lookup (`hit` says which way).
    pub fn add_plan_cache_lookup(&self, hit: bool) {
        if hit {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one composite-index cache lookup (`hit` says which way).
    pub fn add_composite_cache_lookup(&self, hit: bool) {
        if hit {
            self.composite_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.composite_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            random_samples: self.random_samples.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            faulted_reads: self.faulted_reads.load(Ordering::Relaxed),
            predicate_cache_hits: self.predicate_cache_hits.load(Ordering::Relaxed),
            predicate_cache_misses: self.predicate_cache_misses.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            composite_cache_hits: self.composite_cache_hits.load(Ordering::Relaxed),
            composite_cache_misses: self.composite_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.random_samples.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.faulted_reads.store(0, Ordering::Relaxed);
        self.predicate_cache_hits.store(0, Ordering::Relaxed);
        self.predicate_cache_misses.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
        self.composite_cache_hits.store(0, Ordering::Relaxed);
        self.composite_cache_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_random_samples(3);
        m.add_random_samples(2);
        m.add_rows_scanned(100);
        m.add_index_probes(7);
        let s = m.snapshot();
        assert_eq!(s.random_samples, 5);
        assert_eq!(s.rows_scanned, 100);
        assert_eq!(s.index_probes, 7);
    }

    #[test]
    fn cache_lookup_counters_split_by_outcome() {
        let m = Metrics::new();
        m.add_predicate_cache_lookup(false);
        m.add_predicate_cache_lookup(true);
        m.add_predicate_cache_lookup(true);
        m.add_plan_cache_lookup(false);
        m.add_plan_cache_lookup(true);
        m.add_composite_cache_lookup(false);
        let s = m.snapshot();
        assert_eq!((s.predicate_cache_hits, s.predicate_cache_misses), (2, 1));
        assert_eq!((s.plan_cache_hits, s.plan_cache_misses), (1, 1));
        assert_eq!((s.composite_cache_hits, s.composite_cache_misses), (0, 1));
    }

    #[test]
    fn reset_zeroes() {
        let m = Metrics::new();
        m.add_random_samples(9);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.add_random_samples(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().random_samples, 4000);
    }
}
