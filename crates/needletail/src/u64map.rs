//! Small open-addressed integer maps for hot sampler state.
//!
//! The virtual Fisher–Yates shuffle performs two lookups, one insert, and
//! one remove *per draw*; even with a fast hasher, `std::collections::
//! HashMap`'s general-purpose machinery (SipHash by default, tagged control
//! bytes, separate allocation paths) is measurable there. This map is the
//! special case that state needs and nothing more: power-of-two capacity,
//! interleaved `(key, value)` slots (one cache line serves a whole probe),
//! linear probing, multiply-shift hashing, and backward-shift deletion
//! (no tombstones, so probe chains never degrade).
//!
//! Two widths are provided: [`U64Map`] for arbitrary ranks and [`U32Map`]
//! for samplers whose population fits in `u32` — the common case, and half
//! the memory per entry, which matters because a long without-replacement
//! run grows this table past cache and every draw then pays its memory
//! latency four times.
//!
//! Keys are logical sampler ranks, so each width's all-ones key is reserved
//! as the empty marker (`MAX` would mean a table of `2^width` rows).

/// Slot word types usable by [`RawMap`].
pub trait SlotWord: Copy + Eq + std::fmt::Debug {
    /// The reserved empty-slot marker (all ones).
    const EMPTY: Self;
    /// Widening conversion.
    fn to_u64(self) -> u64;
    /// Narrowing conversion; caller guarantees the value fits.
    fn from_u64(v: u64) -> Self;
    /// Multiply-shift hash folded into `mask`.
    fn slot_of(self, mask: usize) -> usize;
}

/// Fibonacci multiplier for multiply-shift hashing.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

impl SlotWord for u64 {
    const EMPTY: Self = u64::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        self
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        v
    }

    #[inline]
    fn slot_of(self, mask: usize) -> usize {
        (self.wrapping_mul(MULT) >> 32) as usize & mask
    }
}

impl SlotWord for u32 {
    const EMPTY: Self = u32::MAX;

    #[inline]
    fn to_u64(self) -> u64 {
        u64::from(self)
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn from_u64(v: u64) -> Self {
        debug_assert!(v < u64::from(u32::MAX));
        v as u32
    }

    #[inline]
    fn slot_of(self, mask: usize) -> usize {
        (u64::from(self).wrapping_mul(MULT) >> 32) as usize & mask
    }
}

/// Open-addressed integer map with linear probing over interleaved slots.
#[derive(Debug, Clone)]
pub struct RawMap<T: SlotWord> {
    entries: Vec<(T, T)>,
    len: usize,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
}

/// Map for arbitrary `u64` ranks.
pub type U64Map = RawMap<u64>;
/// Half-size map for populations below `u32::MAX`.
pub type U32Map = RawMap<u32>;

impl<T: SlotWord> Default for RawMap<T> {
    fn default() -> Self {
        Self::with_capacity(16)
    }
}

impl<T: SlotWord> RawMap<T> {
    /// A map able to hold roughly `cap` entries before growing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let capacity = (cap.max(8) * 2).next_power_of_two();
        Self {
            entries: vec![(T::EMPTY, T::EMPTY); capacity],
            len: 0,
            mask: capacity - 1,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored for `key`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u64> {
        let key = T::from_u64(key);
        debug_assert!(key != T::EMPTY, "all-ones key is reserved");
        let mut i = key.slot_of(self.mask);
        loop {
            let (k, v) = self.entries[i];
            if k == key {
                return Some(v.to_u64());
            }
            if k == T::EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or updates `key`.
    pub fn insert(&mut self, key: u64, val: u64) {
        let key = T::from_u64(key);
        let val = T::from_u64(val);
        debug_assert!(key != T::EMPTY, "all-ones key is reserved");
        // Grow at 50% load: probe chains under linear probing lengthen
        // sharply past that, and the doubled table is still tiny relative
        // to the bitmaps it indexes into.
        if (self.len + 1) * 2 > self.entries.len() {
            self.grow();
        }
        let mut i = key.slot_of(self.mask);
        loop {
            let k = self.entries[i].0;
            if k == key {
                self.entries[i].1 = val;
                return;
            }
            if k == T::EMPTY {
                self.entries[i] = (key, val);
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key` if present, returning its value. Uses backward-shift
    /// deletion so no tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let key = T::from_u64(key);
        debug_assert!(key != T::EMPTY, "all-ones key is reserved");
        let mut i = key.slot_of(self.mask);
        loop {
            let k = self.entries[i].0;
            if k == T::EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let removed = self.entries[i].1;
        self.len -= 1;
        // Backward shift: close the gap by pulling forward any entry whose
        // home slot lies cyclically outside (gap, j].
        let mut gap = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let entry = self.entries[j];
            if entry.0 == T::EMPTY {
                break;
            }
            let home = entry.0.slot_of(self.mask);
            let moveable = if gap <= j {
                home <= gap || home > j
            } else {
                home <= gap && home > j
            };
            if moveable {
                self.entries[gap] = entry;
                gap = j;
            }
        }
        self.entries[gap].0 = T::EMPTY;
        Some(removed.to_u64())
    }

    /// Visits every live `(key, value)` entry in unspecified (slot) order.
    /// Checkpoint serialization sorts the collected pairs by key, so table
    /// layout never leaks into encoded bytes.
    pub fn for_each_entry(&self, mut f: impl FnMut(u64, u64)) {
        for &(k, v) in &self.entries {
            if k != T::EMPTY {
                f(k.to_u64(), v.to_u64());
            }
        }
    }

    /// Pre-grows so `extra` further inserts need no rehash mid-batch.
    pub fn reserve(&mut self, extra: usize) {
        while (self.len + extra) * 2 > self.entries.len() {
            self.grow();
        }
    }

    /// Removes every entry, keeping a small table.
    pub fn clear(&mut self) {
        // Shrink back: long without-replacement runs can grow the table
        // large, and `reset` starts a fresh permutation anyway.
        *self = Self::default();
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, vec![(T::EMPTY, T::EMPTY); new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, v) in old {
            if k != T::EMPTY {
                self.insert_raw(k, v);
            }
        }
    }

    /// Insert during rehash (no growth check).
    fn insert_raw(&mut self, key: T, val: T) {
        let mut i = key.slot_of(self.mask);
        loop {
            let k = self.entries[i].0;
            if k == T::EMPTY {
                self.entries[i] = (key, val);
                self.len += 1;
                return;
            }
            debug_assert!(k != key);
            i = (i + 1) & self.mask;
        }
    }
}

/// Fisher–Yates swap state that picks the narrow table when the population
/// allows it (anything below `u32::MAX` logical slots).
#[derive(Debug, Clone)]
pub enum SwapMap {
    /// Populations below `u32::MAX`: 8-byte entries.
    Narrow(U32Map),
    /// Full-width fallback.
    Wide(U64Map),
}

impl SwapMap {
    /// Chooses the width for a population of `n` logical slots.
    #[must_use]
    pub fn for_population(n: u64) -> Self {
        if n < u64::from(u32::MAX) {
            SwapMap::Narrow(U32Map::default())
        } else {
            SwapMap::Wide(U64Map::default())
        }
    }

    /// The value stored for `key`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u64> {
        match self {
            SwapMap::Narrow(m) => m.get(key),
            SwapMap::Wide(m) => m.get(key),
        }
    }

    /// Inserts or updates `key`.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u64) {
        match self {
            SwapMap::Narrow(m) => m.insert(key, val),
            SwapMap::Wide(m) => m.insert(key, val),
        }
    }

    /// Removes `key` if present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        match self {
            SwapMap::Narrow(m) => m.remove(key),
            SwapMap::Wide(m) => m.remove(key),
        }
    }

    /// Visits every live `(key, value)` entry in unspecified (slot) order.
    pub fn for_each_entry(&self, f: impl FnMut(u64, u64)) {
        match self {
            SwapMap::Narrow(m) => m.for_each_entry(f),
            SwapMap::Wide(m) => m.for_each_entry(f),
        }
    }

    /// Pre-grows for `extra` further inserts.
    pub fn reserve(&mut self, extra: usize) {
        match self {
            SwapMap::Narrow(m) => m.reserve(extra),
            SwapMap::Wide(m) => m.reserve(extra),
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SwapMap::Narrow(m) => m.len(),
            SwapMap::Wide(m) => m.len(),
        }
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry, keeping a small table.
    pub fn clear(&mut self) {
        match self {
            SwapMap::Narrow(m) => m.clear(),
            SwapMap::Wide(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = U64Map::default();
        assert!(m.is_empty());
        for i in 0..1000u64 {
            m.insert(i * 3, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 3), Some(i));
            assert_eq!(m.get(i * 3 + 1), None);
        }
        for i in 0..500u64 {
            assert_eq!(m.remove(i * 3), Some(i));
            assert_eq!(m.remove(i * 3), None);
        }
        assert_eq!(m.len(), 500);
        for i in 500..1000u64 {
            assert_eq!(m.get(i * 3), Some(i), "survivor {i} lost after removes");
        }
    }

    #[test]
    fn update_overwrites() {
        let mut m = U32Map::default();
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.get(7), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut m = U32Map::default();
        for i in 0..10_000 {
            m.insert(i, i);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(3), None);
        m.insert(3, 4);
        assert_eq!(m.get(3), Some(4));
    }

    #[test]
    fn reserve_prevents_mid_batch_growth() {
        let mut m = U32Map::default();
        m.reserve(1000);
        let cap_before = m.entries.len();
        for i in 0..1000 {
            m.insert(i, i);
        }
        assert_eq!(m.entries.len(), cap_before, "reserve must pre-size");
    }

    #[test]
    fn swap_map_picks_width() {
        assert!(matches!(
            SwapMap::for_population(1_000_000),
            SwapMap::Narrow(_)
        ));
        assert!(matches!(
            SwapMap::for_population(u64::from(u32::MAX)),
            SwapMap::Wide(_)
        ));
        let mut wide = SwapMap::for_population(u64::MAX);
        wide.insert(u64::from(u32::MAX) + 7, 1);
        assert_eq!(wide.get(u64::from(u32::MAX) + 7), Some(1));
    }

    #[test]
    fn for_each_entry_visits_exactly_the_live_set() {
        let mut m = SwapMap::for_population(1000);
        for i in 0..200u64 {
            m.insert(i * 2, i);
        }
        for i in 0..50u64 {
            m.remove(i * 4);
        }
        let mut seen = Vec::new();
        m.for_each_entry(|k, v| seen.push((k, v)));
        seen.sort_unstable();
        let expect: Vec<(u64, u64)> = (0..200u64)
            .map(|i| (i * 2, i))
            .filter(|&(k, _)| !(k.is_multiple_of(4) && k < 200))
            .collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn randomized_agreement_with_std_hashmap() {
        use std::collections::HashMap;
        // Deterministic xorshift exercise of mixed ops, checked against the
        // std map as the oracle (this is what correctness of backward-shift
        // deletion hinges on), over both widths.
        for narrow in [false, true] {
            let mut x = 0x0123_4567_89AB_CDEF_u64;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut ours = if narrow {
                SwapMap::Narrow(U32Map::default())
            } else {
                SwapMap::Wide(U64Map::default())
            };
            let mut oracle: HashMap<u64, u64> = HashMap::new();
            for round in 0..60_000 {
                let key = step() % 512; // small domain forces dense collisions
                match step() % 3 {
                    0 => {
                        let val = step() % 100_000;
                        ours.insert(key, val);
                        oracle.insert(key, val);
                    }
                    1 => {
                        assert_eq!(ours.remove(key), oracle.remove(&key), "round {round}");
                    }
                    _ => {
                        assert_eq!(ours.get(key), oracle.get(&key).copied(), "round {round}");
                    }
                }
                assert_eq!(ours.len(), oracle.len(), "round {round}");
            }
            for (&k, &v) in &oracle {
                assert_eq!(ours.get(k), Some(v));
            }
        }
    }
}
