//! The `SCAN` baseline: exact per-group aggregates via one sequential pass.
//!
//! "The SCAN operation represents an approach that a more traditional
//! system, such as PostgreSQL, would take to solve the visualization
//! problem" (§5.1): read every record, update a running (count, sum) in a
//! hash map keyed on the group, and emit exact means. The engine charges
//! the pass to the cost model as sequential block reads plus one hash
//! update per record.

use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Exact aggregate for one group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// The group-by value.
    pub group: Value,
    /// Number of (predicate-satisfying) rows in the group.
    pub count: u64,
    /// Sum of the measure column over the group.
    pub sum: f64,
}

impl GroupAggregate {
    /// The group mean; `None` for an empty group.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Scans `table` computing `SELECT group_col, AVG(agg_col), COUNT(*), SUM(agg_col)
/// WHERE predicate GROUP BY group_col`, returning groups in first-appearance
/// order (strings) / ascending order (numerics).
///
/// # Panics
///
/// Panics if either column is missing or `agg_col` is not numeric.
#[must_use]
pub fn scan_group_aggregates(
    table: &Table,
    group_col: &str,
    agg_col: &str,
    predicate: &Predicate,
) -> Vec<GroupAggregate> {
    let g_idx = table
        .schema()
        .column_index(group_col)
        // lint: allow(panic) — documented `# Panics` precondition of the
        // ground-truth scan helper; callers resolve columns first
        .unwrap_or_else(|| panic!("no column named {group_col:?}"));
    let a_idx = table
        .schema()
        .column_index(agg_col)
        // lint: allow(panic) — documented `# Panics` precondition of the
        // ground-truth scan helper; callers resolve columns first
        .unwrap_or_else(|| panic!("no column named {agg_col:?}"));

    // Accumulate per distinct group value; key by display form is unsafe for
    // floats, so key by the table's distinct-value ordering instead.
    let distinct = table.distinct_values(g_idx);
    let key_of: HashMap<String, usize> = distinct
        .iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), i))
        .collect();
    let mut counts = vec![0u64; distinct.len()];
    let mut sums = vec![0.0f64; distinct.len()];

    for row in 0..table.row_count() {
        if !predicate.matches_row(table, row) {
            continue;
        }
        let group = table.value(row, g_idx);
        let slot = key_of[&group.to_string()];
        counts[slot] += 1;
        sums[slot] += table.float_value(row, a_idx);
    }

    distinct
        .into_iter()
        .enumerate()
        .map(|(i, group)| GroupAggregate {
            group,
            count: counts[i],
            sum: sums[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, Schema};
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for (n, d) in [
            ("AA", 30.0),
            ("JB", 15.0),
            ("AA", 20.0),
            ("UA", 85.0),
            ("JB", 25.0),
            ("AA", 10.0),
        ] {
            b.push_row(vec![n.into(), d.into()]);
        }
        b.finish()
    }

    #[test]
    fn exact_means() {
        let aggs = scan_group_aggregates(&table(), "name", "delay", &Predicate::True);
        assert_eq!(aggs.len(), 3);
        let by_name: HashMap<String, &GroupAggregate> =
            aggs.iter().map(|a| (a.group.to_string(), a)).collect();
        assert_eq!(by_name["AA"].count, 3);
        assert!((by_name["AA"].mean().unwrap() - 20.0).abs() < 1e-12);
        assert!((by_name["JB"].mean().unwrap() - 20.0).abs() < 1e-12);
        assert!((by_name["UA"].mean().unwrap() - 85.0).abs() < 1e-12);
        assert!((by_name["UA"].sum - 85.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_filters_rows() {
        let aggs = scan_group_aggregates(&table(), "name", "delay", &Predicate::ge("delay", 20.0));
        let by_name: HashMap<String, &GroupAggregate> =
            aggs.iter().map(|a| (a.group.to_string(), a)).collect();
        assert_eq!(by_name["AA"].count, 2);
        assert!((by_name["AA"].mean().unwrap() - 25.0).abs() < 1e-12);
        assert_eq!(by_name["JB"].count, 1);
    }

    #[test]
    fn empty_group_mean_is_none() {
        let aggs =
            scan_group_aggregates(&table(), "name", "delay", &Predicate::ge("delay", 1000.0));
        assert!(aggs.iter().all(|a| a.count == 0 && a.mean().is_none()));
    }

    #[test]
    fn integer_group_column() {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("bucket", DataType::Int),
            ColumnDef::new("y", DataType::Float),
        ]));
        for (g, y) in [(2i64, 4.0), (1, 1.0), (2, 6.0), (1, 3.0)] {
            b.push_row(vec![Value::Int(g), y.into()]);
        }
        let aggs = scan_group_aggregates(&b.finish(), "bucket", "y", &Predicate::True);
        // Numeric groups come back sorted ascending.
        assert_eq!(aggs[0].group, Value::Int(1));
        assert!((aggs[0].mean().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(aggs[1].group, Value::Int(2));
        assert!((aggs[1].mean().unwrap() - 5.0).abs() < 1e-12);
    }
}
