//! Minimal CSV ingestion.
//!
//! Loads delimited text into a [`Table`] so real datasets (e.g. the ASA
//! Data Expo flight records the paper evaluates on) can be dropped into the
//! engine without external dependencies. Supports RFC-4180-style quoting
//! (`"a,b"`, doubled quotes), type inference or an explicit schema, and a
//! configurable delimiter.

use crate::schema::{ColumnDef, DataType, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use std::fmt;

/// CSV parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A data row's field count differs from the header's.
    ArityMismatch {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to parse under the (inferred or given) schema.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Offending text.
        text: String,
    },
    /// A quoted field was left unterminated.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::ArityMismatch {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, header has {expected}"),
            CsvError::BadField { line, column, text } => {
                write!(f, "line {line}: column {column:?} cannot parse {text:?}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// CSV reader options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Explicit schema; `None` infers per column (Int ⊂ Float ⊂ Str) from
    /// the data.
    pub schema: Option<Schema>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            schema: None,
        }
    }
}

/// Parses CSV text (header row required) into a [`Table`].
///
/// # Errors
///
/// Returns a [`CsvError`] on structural or type errors.
pub fn read_csv(text: &str, options: &CsvOptions) -> Result<Table, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or(CsvError::MissingHeader)?;
    let header = split_fields(header_line, options.delimiter, 1)?;
    if header.is_empty() {
        return Err(CsvError::MissingHeader);
    }

    // Parse all rows as strings first.
    let mut raw_rows: Vec<(usize, Vec<String>)> = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let fields = split_fields(line, options.delimiter, line_no)?;
        if fields.len() != header.len() {
            return Err(CsvError::ArityMismatch {
                line: line_no,
                found: fields.len(),
                expected: header.len(),
            });
        }
        raw_rows.push((line_no, fields));
    }

    let schema = match &options.schema {
        Some(s) => s.clone(),
        None => infer_schema(&header, &raw_rows),
    };

    let mut builder = TableBuilder::new(schema.clone());
    for (line_no, fields) in raw_rows {
        let mut row = Vec::with_capacity(fields.len());
        for (field, def) in fields.into_iter().zip(schema.columns()) {
            let value = parse_field(&field, def.data_type).ok_or_else(|| CsvError::BadField {
                line: line_no,
                column: def.name.clone(),
                text: field.clone(),
            })?;
            row.push(value);
        }
        builder.push_row(row);
    }
    Ok(builder.finish())
}

/// Splits one line into fields with RFC-4180 quoting.
fn split_fields(line: &str, delimiter: char, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            if ch == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(ch);
            }
        } else if ch == '"' && field.is_empty() {
            in_quotes = true;
        } else if ch == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(ch);
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(field);
    Ok(fields)
}

/// Per-column inference: Int if every field parses as i64, else Float if
/// every field parses as f64, else Str.
fn infer_schema(header: &[String], rows: &[(usize, Vec<String>)]) -> Schema {
    let columns = header
        .iter()
        .enumerate()
        .map(|(c, name)| {
            let mut all_int = true;
            let mut all_float = true;
            for (_, fields) in rows {
                let f = fields[c].trim();
                if all_int && f.parse::<i64>().is_err() {
                    all_int = false;
                }
                if all_float && f.parse::<f64>().is_err() {
                    all_float = false;
                }
                if !all_int && !all_float {
                    break;
                }
            }
            let data_type = if all_int {
                DataType::Int
            } else if all_float {
                DataType::Float
            } else {
                DataType::Str
            };
            ColumnDef::new(name.clone(), data_type)
        })
        .collect();
    Schema::new(columns)
}

fn parse_field(field: &str, data_type: DataType) -> Option<Value> {
    let trimmed = field.trim();
    match data_type {
        DataType::Int => trimmed.parse::<i64>().ok().map(Value::Int),
        DataType::Float => trimmed
            .parse::<f64>()
            .ok()
            .filter(|f| !f.is_nan())
            .map(Value::Float),
        DataType::Str => Some(Value::Str(field.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLIGHTS: &str = "\
name,delay,year
AA,30.5,2008
JB,15,2008
AA,20.25,2007
";

    #[test]
    fn infers_types() {
        let t = read_csv(FLIGHTS, &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 3);
        let s = t.schema();
        assert_eq!(s.column("name").unwrap().data_type, DataType::Str);
        assert_eq!(s.column("delay").unwrap().data_type, DataType::Float);
        assert_eq!(s.column("year").unwrap().data_type, DataType::Int);
        assert_eq!(t.value(0, 1), Value::Float(30.5));
        assert_eq!(t.value(1, 1), Value::Float(15.0), "int promotes to float");
        assert_eq!(t.value(2, 2), Value::Int(2007));
    }

    #[test]
    fn explicit_schema_wins() {
        let schema = Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
            ColumnDef::new("year", DataType::Str),
        ]);
        let t = read_csv(
            FLIGHTS,
            &CsvOptions {
                schema: Some(schema),
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(t.value(0, 2), Value::Str("2008".into()));
    }

    #[test]
    fn quoted_fields() {
        let csv = "name,motto\n\"Air, Lines\",\"say \"\"hi\"\"\"\nPlain,ok\n";
        let t = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.value(0, 0), Value::Str("Air, Lines".into()));
        assert_eq!(t.value(0, 1), Value::Str("say \"hi\"".into()));
        assert_eq!(t.value(1, 0), Value::Str("Plain".into()));
    }

    #[test]
    fn custom_delimiter() {
        let tsv = "a|b\n1|2.5\n";
        let t = read_csv(
            tsv,
            &CsvOptions {
                delimiter: '|',
                ..CsvOptions::default()
            },
        )
        .unwrap();
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(0, 1), Value::Float(2.5));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "x\n\n1\n\n2\n";
        let t = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn errors() {
        assert_eq!(
            read_csv("", &CsvOptions::default()).unwrap_err(),
            CsvError::MissingHeader
        );
        let arity = read_csv("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(arity, CsvError::ArityMismatch { line: 2, .. }));
        let quote = read_csv("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(quote, CsvError::UnterminatedQuote { line: 2 }));
        // Explicit schema forces parse failure.
        let schema = Schema::new(vec![ColumnDef::new("a", DataType::Int)]);
        let bad = read_csv(
            "a\nnot_a_number\n",
            &CsvOptions {
                schema: Some(schema),
                ..CsvOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(bad, CsvError::BadField { line: 2, .. }));
    }

    #[test]
    fn end_to_end_with_engine() {
        use crate::engine::NeedleTail;
        use crate::predicate::Predicate;
        let t = read_csv(FLIGHTS, &CsvOptions::default()).unwrap();
        let engine = NeedleTail::new(t, &["name"]).unwrap();
        let aggs = engine.scan("name", "delay", &Predicate::True).unwrap();
        let aa = aggs.iter().find(|a| a.group.to_string() == "AA").unwrap();
        assert_eq!(aa.count, 2);
        assert!((aa.mean().unwrap() - 25.375).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = CsvError::ArityMismatch {
            line: 3,
            found: 2,
            expected: 4,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(CsvError::MissingHeader.to_string().contains("header"));
    }
}
