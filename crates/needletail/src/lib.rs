//! # rapidviz-needletail
//!
//! A Rust reimplementation of the substrate the paper's experiments run on:
//! **NEEDLETAIL** (§4), "a database system designed to produce a random
//! sample of records matching a set of ad-hoc conditions".
//!
//! The engine stores relations row-oriented in memory and builds
//! **hierarchical bitmap indexes** over the indexed attributes: for every
//! distinct value of an indexed attribute there is a bitmap with a `1` at
//! position `i` iff tuple `i` matches. A two-level rank/select acceleration
//! structure ([`bitmap::DenseBitmap`]) lets the engine fetch the `j`-th
//! matching tuple — and therefore a *uniformly random* matching tuple — in
//! `O(log n)` time, which is the constant-per-sample retrieval guarantee the
//! paper's cost model assumes (§2.3 footnote 1). Bitmaps compress well; an
//! RLE representation ([`bitmap::RleBitmap`]) is provided with full boolean
//! algebra and is chosen automatically when it is smaller.
//!
//! Components:
//!
//! * [`value`] / [`schema`] / [`table`] — typed values, schemas, and the
//!   in-memory row store (dictionary-encoded strings).
//! * [`bitmap`] — dense (rank/select) and RLE compressed bitmaps with
//!   boolean algebra, plus conversions.
//! * [`index`] — the per-attribute value → bitmap index.
//! * [`predicate`] — ad-hoc selection predicates (`WHERE`-clauses, §6.3.3)
//!   evaluated to bitmaps through the indexes (or by scanning when an
//!   attribute is unindexed).
//! * [`sampler`] — random tuple sampling over an eligibility bitmap, with or
//!   without replacement, and the skip-based group-size estimator used by
//!   the unknown-size `SUM` algorithm (§6.3.1, Algorithm 5). Single draws
//!   and batched draws (one sorted `select_many` sweep per batch, resolved
//!   through a reusable per-sampler scratch arena — allocation-free at
//!   steady state, radix-sorted above [`RADIX_MIN_BATCH`]).
//! * [`engine`] — the [`engine::NeedleTail`] façade tying it together,
//!   including the zero-copy planning caches (shared `Arc` bitmaps, an LRU
//!   of evaluated predicate bitmaps keyed by canonical predicate form, and
//!   a plan cache handing back ready group row sets — repeat-query
//!   planning is near-O(1) and allocation-light).
//! * [`cache`] — the small bounded LRU map those caches use.
//! * [`scan`] — the `SCAN` baseline: a full sequential pass computing exact
//!   per-group aggregates via a hash map, as a traditional DBMS would.
//! * [`io`] — the deterministic I/O + CPU cost model used to regenerate the
//!   paper's wall-clock figures (a documented substitution for the authors'
//!   hardware; see DESIGN.md §4).
//! * [`metrics`] — sample/block counters every operation feeds.
//! * [`fault`] — injectable storage-read fault points (deterministic,
//!   row-keyed), so chaos tests can verify that sessions degrade to
//!   best-effort answers instead of panicking when reads fail.

pub mod bitmap;
pub mod cache;
pub mod composite;
pub mod csv;
pub mod disk;
pub mod engine;
pub mod fault;
pub mod index;
pub mod io;
pub mod metrics;
pub mod predicate;
pub mod sampler;
pub mod scan;
pub mod schema;
pub mod storage;
pub mod table;
pub mod u64map;
pub mod value;

pub use bitmap::{Bitmap, DenseBitmap, RleBitmap};
pub use composite::CompositeIndex;
pub use csv::{read_csv, CsvError, CsvOptions};
pub use disk::SimulatedDisk;
pub use engine::{
    CacheCapacities, EngineError, GroupHandle, NeedleTail, NeedleTailBuilder, SizedGroupHandle,
};
pub use fault::{FaultInjector, FaultSite, SeededFaults};
pub use index::BitmapIndex;
pub use io::{CostBreakdown, DiskModel};
pub use metrics::{Metrics, MetricsSnapshot};
pub use predicate::Predicate;
pub use sampler::{BatchScratch, BitmapSampler, RowSet, SizeEstimatingSampler, RADIX_MIN_BATCH};
pub use scan::{scan_group_aggregates, GroupAggregate};
pub use schema::{ColumnDef, DataType, Schema};
pub use storage::{read_table, write_table, StorageError};
pub use table::{Table, TableBuilder};
pub use value::Value;
