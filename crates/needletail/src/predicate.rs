//! Ad-hoc selection predicates (§6.3.3).
//!
//! A [`Predicate`] is a boolean combination of per-column atoms. Evaluation
//! produces an eligibility [`Bitmap`]: the index path is used when the
//! referenced column is indexed (equality probe / range union), and an
//! in-memory column scan otherwise — exactly the two retrieval modes the
//! paper describes for NEEDLETAIL. A row-level oracle
//! ([`Predicate::matches_row`]) is provided for testing and for the scan
//! baseline.

use crate::bitmap::{Bitmap, DenseBitmap};
use crate::index::BitmapIndex;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// A selection predicate over table columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no selection).
    True,
    /// `column = value`.
    Eq(String, Value),
    /// `column IN (values)`.
    In(String, Vec<Value>),
    /// `lo <= column <= hi` on a numeric column; either bound optional.
    Range {
        /// Column name.
        column: String,
        /// Inclusive lower bound, if any.
        lo: Option<f64>,
        /// Inclusive upper bound, if any.
        hi: Option<f64>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor: `column = value`.
    #[must_use]
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(column.into(), value.into())
    }

    /// Convenience constructor: `column IN (values)`.
    #[must_use]
    pub fn is_in<V: Into<Value>>(
        column: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        Predicate::In(column.into(), values.into_iter().map(Into::into).collect())
    }

    /// Convenience constructor: `column >= lo`.
    #[must_use]
    pub fn ge(column: impl Into<String>, lo: f64) -> Self {
        Predicate::Range {
            column: column.into(),
            lo: Some(lo),
            hi: None,
        }
    }

    /// Convenience constructor: `column <= hi`.
    #[must_use]
    pub fn le(column: impl Into<String>, hi: f64) -> Self {
        Predicate::Range {
            column: column.into(),
            lo: None,
            hi: Some(hi),
        }
    }

    /// Convenience constructor: `lo <= column <= hi`.
    #[must_use]
    pub fn between(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate::Range {
            column: column.into(),
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// `self AND other`.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    #[must_use]
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Row-level evaluation (oracle path; used by tests and SCAN).
    ///
    /// # Panics
    ///
    /// Panics if a referenced column does not exist or a range atom targets
    /// a non-numeric column.
    #[must_use]
    pub fn matches_row(&self, table: &Table, row: u64) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(col, value) => {
                let idx = column_index(table, col);
                table.value(row, idx) == *value
            }
            Predicate::In(col, values) => {
                let idx = column_index(table, col);
                let v = table.value(row, idx);
                values.contains(&v)
            }
            Predicate::Range { column, lo, hi } => {
                let idx = column_index(table, column);
                let x = table
                    .value(row, idx)
                    .as_f64()
                    // lint: allow(panic) — documented `# Panics` precondition:
                    // the engine type-checks predicate columns against the
                    // schema at plan time, so this is a caller bug, not data
                    .unwrap_or_else(|| panic!("range predicate on non-numeric column {column:?}"));
                lo.is_none_or(|l| x >= l) && hi.is_none_or(|h| x <= h)
            }
            Predicate::And(a, b) => a.matches_row(table, row) && b.matches_row(table, row),
            Predicate::Or(a, b) => a.matches_row(table, row) || b.matches_row(table, row),
            Predicate::Not(p) => !p.matches_row(table, row),
        }
    }

    /// Evaluates to an eligibility bitmap, using indexes where available.
    ///
    /// # Panics
    ///
    /// Panics if a referenced column does not exist.
    #[must_use]
    pub fn evaluate(&self, table: &Table, indexes: &HashMap<String, BitmapIndex>) -> Bitmap {
        let n = table.row_count();
        match self {
            Predicate::True => Bitmap::ones(n),
            Predicate::Eq(col, value) => {
                if let Some(index) = indexes.get(col) {
                    index
                        .bitmap_for(value)
                        .cloned()
                        .unwrap_or_else(|| Bitmap::zeros(n))
                } else {
                    self.scan_bitmap(table)
                }
            }
            Predicate::In(col, values) => {
                if let Some(index) = indexes.get(col) {
                    let mut acc = Bitmap::zeros(n);
                    for value in values {
                        if let Some(bm) = index.bitmap_for(value) {
                            acc = acc.or(bm);
                        }
                    }
                    acc
                } else {
                    self.scan_bitmap(table)
                }
            }
            Predicate::Range { column, lo, hi } => {
                if let Some(index) = indexes.get(column) {
                    index.range_bitmap(*lo, *hi)
                } else {
                    self.scan_bitmap(table)
                }
            }
            Predicate::And(a, b) => a.evaluate(table, indexes).and(&b.evaluate(table, indexes)),
            Predicate::Or(a, b) => a.evaluate(table, indexes).or(&b.evaluate(table, indexes)),
            Predicate::Not(p) => p.evaluate(table, indexes).not(),
        }
    }

    /// Fallback: evaluate an atom by scanning the column.
    fn scan_bitmap(&self, table: &Table) -> Bitmap {
        let bits: Vec<bool> = (0..table.row_count())
            .map(|row| self.matches_row(table, row))
            .collect();
        Bitmap::Dense(DenseBitmap::from_bools(&bits))
    }

    /// A canonical, hashable key for this predicate — the engine's cache
    /// key ([`crate::engine::NeedleTail`]'s predicate-bitmap and plan
    /// caches).
    ///
    /// Canonicalization maps evaluation-equivalent spellings to one key so
    /// they share a cache entry:
    ///
    /// * `AND` / `OR` chains are flattened across nesting, their operands
    ///   canonicalized recursively, then **sorted and de-duplicated** —
    ///   `a AND (b AND c)` and `(c AND b) AND a` collide, as intersection
    ///   and union are commutative, associative, and idempotent;
    /// * double negation is removed;
    /// * `IN` lists are sorted and de-duplicated;
    /// * strings are length-prefixed and floats rendered by their exact
    ///   bit pattern, so distinct predicates can never collide.
    ///
    /// The key says nothing about *which table* the predicate was evaluated
    /// against — the engine's caches are per-engine (per immutable table),
    /// which scopes it.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        fn col(out: &mut String, name: &str) {
            use std::fmt::Write as _;
            let _ = write!(out, "{}:{name}", name.len());
        }
        fn val(out: &mut String, v: &Value) {
            use std::fmt::Write as _;
            match v {
                Value::Int(i) => {
                    let _ = write!(out, "i{i}");
                }
                Value::Float(f) => {
                    let _ = write!(out, "f{:016x}", f.to_bits());
                }
                Value::Str(s) => {
                    let _ = write!(out, "s{}:{s}", s.len());
                }
            }
        }
        fn bound(out: &mut String, b: Option<f64>) {
            use std::fmt::Write as _;
            match b {
                None => out.push('-'),
                Some(x) => {
                    let _ = write!(out, "f{:016x}", x.to_bits());
                }
            }
        }
        /// Flattens same-operator chains (`And` under `And`, `Or` under
        /// `Or`) into one operand list.
        fn flatten<'p>(p: &'p Predicate, conj: bool, out: &mut Vec<&'p Predicate>) {
            match (p, conj) {
                (Predicate::And(a, b), true) | (Predicate::Or(a, b), false) => {
                    flatten(a, conj, out);
                    flatten(b, conj, out);
                }
                _ => out.push(p),
            }
        }
        fn render(p: &Predicate, out: &mut String) {
            match p {
                Predicate::True => out.push('T'),
                Predicate::Eq(c, v) => {
                    out.push_str("E(");
                    col(out, c);
                    out.push(',');
                    val(out, v);
                    out.push(')');
                }
                Predicate::In(c, values) => {
                    out.push_str("I(");
                    col(out, c);
                    out.push_str(",[");
                    let mut rendered: Vec<String> = values
                        .iter()
                        .map(|v| {
                            let mut s = String::new();
                            val(&mut s, v);
                            s
                        })
                        .collect();
                    rendered.sort_unstable();
                    rendered.dedup();
                    out.push_str(&rendered.join(","));
                    out.push_str("])");
                }
                Predicate::Range { column, lo, hi } => {
                    out.push_str("R(");
                    col(out, column);
                    out.push(',');
                    bound(out, *lo);
                    out.push(',');
                    bound(out, *hi);
                    out.push(')');
                }
                chain @ (Predicate::And(..) | Predicate::Or(..)) => {
                    let conj = matches!(chain, Predicate::And(..));
                    let mut operands = Vec::new();
                    flatten(chain, conj, &mut operands);
                    let mut rendered: Vec<String> = operands
                        .iter()
                        .map(|q| {
                            let mut s = String::new();
                            render(q, &mut s);
                            s
                        })
                        .collect();
                    rendered.sort_unstable();
                    rendered.dedup();
                    out.push(if conj { 'A' } else { 'O' });
                    out.push('(');
                    out.push_str(&rendered.join(if conj { "&" } else { "|" }));
                    out.push(')');
                }
                Predicate::Not(inner) => {
                    if let Predicate::Not(doubly) = inner.as_ref() {
                        render(doubly, out);
                    } else {
                        out.push_str("N(");
                        render(inner, out);
                        out.push(')');
                    }
                }
            }
        }
        let mut out = String::new();
        render(self, &mut out);
        out
    }

    /// The set of column names this predicate references.
    #[must_use]
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Eq(col, _) | Predicate::In(col, _) => out.push(col),
            Predicate::Range { column, .. } => out.push(column),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }
}

fn column_index(table: &Table, name: &str) -> usize {
    table
        .schema()
        .column_index(name)
        // lint: allow(panic) — documented `# Panics` precondition: predicate
        // columns are resolved against the schema at plan time, so a miss
        // here is a caller bug, not a data-dependent serving failure
        .unwrap_or_else(|| panic!("no column named {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, Schema};
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for (n, d) in [
            ("AA", 30.0),
            ("JB", 15.0),
            ("AA", 20.0),
            ("UA", 85.0),
            ("JB", 10.0),
        ] {
            b.push_row(vec![n.into(), d.into()]);
        }
        b.finish()
    }

    fn indexed(table: &Table, cols: &[&str]) -> HashMap<String, BitmapIndex> {
        cols.iter()
            .map(|c| ((*c).to_owned(), BitmapIndex::build(table, c)))
            .collect()
    }

    /// Index path and scan path must agree for any predicate.
    fn assert_paths_agree(p: &Predicate, t: &Table) {
        let with_idx = p.evaluate(t, &indexed(t, &["name", "delay"]));
        let without = p.evaluate(t, &HashMap::new());
        assert_eq!(
            with_idx.iter_ones().collect::<Vec<_>>(),
            without.iter_ones().collect::<Vec<_>>(),
            "index vs scan disagree for {p:?}"
        );
        for row in 0..t.row_count() {
            assert_eq!(with_idx.get(row), p.matches_row(t, row));
        }
    }

    #[test]
    fn eq_predicate() {
        let t = table();
        let p = Predicate::eq("name", "AA");
        assert_paths_agree(&p, &t);
        let bm = p.evaluate(&t, &indexed(&t, &["name"]));
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn eq_missing_value_is_empty() {
        let t = table();
        let p = Predicate::eq("name", "ZZ");
        assert_eq!(p.evaluate(&t, &indexed(&t, &["name"])).count_ones(), 0);
        assert_paths_agree(&p, &t);
    }

    #[test]
    fn range_predicates() {
        let t = table();
        for p in [
            Predicate::ge("delay", 20.0),
            Predicate::le("delay", 15.0),
            Predicate::between("delay", 12.0, 40.0),
        ] {
            assert_paths_agree(&p, &t);
        }
        let high = Predicate::ge("delay", 30.0).evaluate(&t, &indexed(&t, &["delay"]));
        assert_eq!(high.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn boolean_combinations() {
        let t = table();
        let p = Predicate::eq("name", "AA")
            .and(Predicate::ge("delay", 25.0))
            .or(Predicate::eq("name", "UA"));
        assert_paths_agree(&p, &t);
        let bm = p.evaluate(&t, &indexed(&t, &["name", "delay"]));
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        let not = Predicate::eq("name", "JB").not();
        assert_paths_agree(&not, &t);
        assert_eq!(not.evaluate(&t, &HashMap::new()).count_ones(), 3);
    }

    #[test]
    fn in_predicate() {
        let t = table();
        let p = Predicate::is_in("name", ["AA", "UA"]);
        assert_paths_agree(&p, &t);
        let bm = p.evaluate(&t, &indexed(&t, &["name"]));
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
        // Empty list matches nothing.
        let none = Predicate::is_in("name", Vec::<&str>::new());
        assert_eq!(none.evaluate(&t, &indexed(&t, &["name"])).count_ones(), 0);
        assert_paths_agree(&none, &t);
    }

    #[test]
    fn true_matches_all() {
        let t = table();
        assert_eq!(
            Predicate::True.evaluate(&t, &HashMap::new()).count_ones(),
            t.row_count()
        );
    }

    #[test]
    fn referenced_columns() {
        let p = Predicate::eq("name", "AA")
            .and(Predicate::ge("delay", 1.0))
            .or(Predicate::eq("name", "JB"));
        assert_eq!(p.referenced_columns(), vec!["delay", "name"]);
        assert!(Predicate::True.referenced_columns().is_empty());
    }

    #[test]
    fn canonical_key_identifies_equivalent_spellings() {
        let a = Predicate::eq("name", "AA");
        let b = Predicate::ge("delay", 30.0);
        let c = Predicate::le("delay", 90.0);
        // Conjunction order and nesting don't matter.
        let left = a.clone().and(b.clone()).and(c.clone());
        let right = c.clone().and(a.clone().and(b.clone()));
        assert_eq!(left.canonical_key(), right.canonical_key());
        // Same for disjunctions, including idempotent repeats.
        let or1 = a.clone().or(b.clone()).or(a.clone());
        let or2 = b.clone().or(a.clone());
        assert_eq!(or1.canonical_key(), or2.canonical_key());
        // Double negation cancels.
        assert_eq!(a.clone().not().not().canonical_key(), a.canonical_key());
        // IN lists are order- and duplicate-insensitive.
        let in1 = Predicate::is_in("name", ["AA", "JB", "AA"]);
        let in2 = Predicate::is_in("name", ["JB", "AA"]);
        assert_eq!(in1.canonical_key(), in2.canonical_key());
    }

    #[test]
    fn canonical_key_separates_distinct_predicates() {
        let keys = [
            Predicate::True.canonical_key(),
            Predicate::eq("name", "AA").canonical_key(),
            Predicate::eq("name", "JB").canonical_key(),
            // A string that *looks* like the rendered int must not collide
            // with the int, nor AND with OR over the same operands.
            Predicate::eq("name", "i1").canonical_key(),
            Predicate::eq("name", Value::Int(1)).canonical_key(),
            Predicate::eq("delay", 30.0).canonical_key(),
            Predicate::ge("delay", 30.0).canonical_key(),
            Predicate::le("delay", 30.0).canonical_key(),
            Predicate::between("delay", 30.0, 30.0).canonical_key(),
            Predicate::eq("name", "AA").not().canonical_key(),
            Predicate::eq("name", "AA")
                .and(Predicate::eq("name", "JB"))
                .canonical_key(),
            Predicate::eq("name", "AA")
                .or(Predicate::eq("name", "JB"))
                .canonical_key(),
        ];
        let mut unique = keys.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "keys must be distinct: {keys:?}");
    }

    #[test]
    fn canonical_key_equal_predicates_evaluate_identically() {
        // The cache-safety property: same key ⇒ same bitmap.
        let t = table();
        let idx = indexed(&t, &["name", "delay"]);
        let p1 = Predicate::eq("name", "AA").and(Predicate::ge("delay", 20.0));
        let p2 = Predicate::ge("delay", 20.0).and(Predicate::eq("name", "AA"));
        assert_eq!(p1.canonical_key(), p2.canonical_key());
        assert_eq!(
            p1.evaluate(&t, &idx).iter_ones().collect::<Vec<_>>(),
            p2.evaluate(&t, &idx).iter_ones().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "non-numeric")]
    fn range_on_string_panics() {
        let t = table();
        let _ = Predicate::ge("name", 1.0).matches_row(&t, 0);
    }
}
