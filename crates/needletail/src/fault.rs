//! Injectable fault points for the storage read path.
//!
//! Real deployments lose reads: a page goes bad, a shard times out, a
//! speculative prefetch is cancelled. The engine's sampling guarantees are
//! supposed to *degrade* under such faults — a group whose reads fail
//! shrinks to best-effort estimates, it never panics or wedges the
//! algorithm layer. [`FaultInjector`] makes that property testable: an
//! injector installed via
//! [`NeedleTail::set_fault_injector`](crate::NeedleTail::set_fault_injector)
//! is consulted on every sampled-row read, and rows it fails are dropped
//! from the delivered batch (charged to the
//! [`faulted_reads`](crate::metrics::MetricsSnapshot::faulted_reads)
//! counter) exactly as if the storage below had errored.
//!
//! # Determinism contract
//!
//! Fault decisions must be a pure function of `(site, row)` — **not** of
//! call order. The simulation harness replays each scheduled session
//! standalone and asserts byte-identical results; a stateful injector
//! (e.g. "fail every 100th read") would fire at different call indices
//! under different interleavings and break that replay. [`SeededFaults`]
//! hashes the row id against a seed, so the same rows fail no matter who
//! else is sampling, and RNG consumption is untouched (the draw happens
//! first; only the materialized value is withheld).

use std::fmt;

/// Which storage read a fault decision is being made for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Materializing a sampled row's measure value for a plain group
    /// handle ([`crate::GroupHandle`]).
    RowRead,
    /// Materializing a sampled row's measure value for a size-estimating
    /// handle ([`crate::SizedGroupHandle`]); the in-memory size probe
    /// itself never faults.
    SizedRowRead,
}

/// A pluggable fault decision for storage reads. See the
/// [module docs](self) for the determinism contract implementations must
/// uphold.
pub trait FaultInjector: fmt::Debug + Send + Sync {
    /// Whether reading `row` at `site` fails. Must be pure in
    /// `(site, row)`: the same arguments must always return the same
    /// answer, regardless of call order or thread.
    fn fails(&self, site: FaultSite, row: u64) -> bool;
}

/// Deterministic seeded injector: each `(site, row)` pair fails with
/// (approximate) probability `rate`, decided by hashing the row id against
/// the seed — stateless, so decisions are independent of sampling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededFaults {
    seed: u64,
    /// `rate` mapped onto the full `u64` range: `hash < threshold` fails.
    threshold: u64,
}

impl SeededFaults {
    /// An injector failing each distinct `(site, row)` read with
    /// probability `rate` (clamped to `[0, 1]`), keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            // Exact at the extremes, within one part in 2^53 elsewhere —
            // plenty for a chaos-testing failure rate.
            (rate * u64::MAX as f64) as u64
        };
        Self { seed, threshold }
    }

    /// SplitMix64 finalizer — a full-avalanche 64-bit mix.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

impl FaultInjector for SeededFaults {
    fn fails(&self, site: FaultSite, row: u64) -> bool {
        let site_salt = match site {
            FaultSite::RowRead => 0x9e37_79b9_7f4a_7c15_u64,
            FaultSite::SizedRowRead => 0xd1b5_4a32_d192_ed03_u64,
        };
        Self::mix(self.seed ^ site_salt ^ row.wrapping_mul(0xff51_afd7_ed55_8ccd)) < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_site_and_row() {
        let inj = SeededFaults::new(42, 0.3);
        for row in 0..200 {
            for site in [FaultSite::RowRead, FaultSite::SizedRowRead] {
                assert_eq!(inj.fails(site, row), inj.fails(site, row));
            }
        }
    }

    #[test]
    fn rate_is_roughly_honored() {
        let inj = SeededFaults::new(7, 0.25);
        let n = 100_000u64;
        let failed = (0..n).filter(|&r| inj.fails(FaultSite::RowRead, r)).count();
        let observed = failed as f64 / n as f64;
        assert!(
            (observed - 0.25).abs() < 0.02,
            "observed fault rate {observed}"
        );
    }

    #[test]
    fn extremes_are_exact() {
        let never = SeededFaults::new(1, 0.0);
        let always = SeededFaults::new(1, 1.0);
        for row in 0..1000 {
            assert!(!never.fails(FaultSite::RowRead, row));
            assert!(always.fails(FaultSite::RowRead, row));
        }
    }

    #[test]
    fn sites_fail_independently() {
        let inj = SeededFaults::new(3, 0.5);
        let differs = (0..1000)
            .any(|r| inj.fails(FaultSite::RowRead, r) != inj.fails(FaultSite::SizedRowRead, r));
        assert!(differs, "site salt should decorrelate the two fault sites");
    }

    #[test]
    fn rate_clamps() {
        let inj = SeededFaults::new(9, 7.5);
        assert!(inj.fails(FaultSite::RowRead, 123));
        let inj = SeededFaults::new(9, -1.0);
        assert!(!inj.fails(FaultSite::RowRead, 123));
    }
}
