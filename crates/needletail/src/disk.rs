//! A simulated block device: the paper's Direct-I/O disk as a data path.
//!
//! The experiments in §5 read 1 MB blocks with Direct I/O (no file-buffer
//! cache). [`SimulatedDisk`] reproduces that contract for *real* data
//! movement, not just counters: a table's measure column is serialized
//! into fixed-size pages, and every access — sequential scan or random
//! row fetch — goes through a single page-read primitive, which counts
//! distinct transfer events exactly the way a Direct-I/O device would
//! (one block per random fetch; `ceil(bytes/block)` for a scan). The
//! [`crate::io::DiskModel`] then converts the counts into seconds.
//!
//! Pages store `f64` values little-endian, 131 072 per 1 MB page — the
//! same 8-bytes-per-record figure the paper's 8 GB/10^9-row dataset
//! implies.

use crate::io::{CostBreakdown, DiskModel};
use std::sync::atomic::{AtomicU64, Ordering};

/// A read-only simulated block device holding one measure column.
#[derive(Debug)]
pub struct SimulatedDisk {
    /// Raw little-endian pages; the last page may be partially filled.
    pages: Vec<Vec<u8>>,
    values: u64,
    page_bytes: usize,
    sequential_pages: AtomicU64,
    random_pages: AtomicU64,
}

impl SimulatedDisk {
    /// Bytes per stored value.
    pub const VALUE_BYTES: usize = 8;

    /// Serializes `values` onto a device with `page_bytes`-sized pages
    /// (the paper's setting: 1 MB).
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a positive multiple of 8.
    #[must_use]
    pub fn new(values: &[f64], page_bytes: usize) -> Self {
        assert!(
            page_bytes >= Self::VALUE_BYTES && page_bytes.is_multiple_of(Self::VALUE_BYTES),
            "page size must be a positive multiple of 8"
        );
        let per_page = page_bytes / Self::VALUE_BYTES;
        let pages = values
            .chunks(per_page)
            .map(|chunk| {
                let mut page = Vec::with_capacity(chunk.len() * Self::VALUE_BYTES);
                for v in chunk {
                    page.extend_from_slice(&v.to_le_bytes());
                }
                page
            })
            .collect();
        Self {
            pages,
            values: values.len() as u64,
            page_bytes,
            sequential_pages: AtomicU64::new(0),
            random_pages: AtomicU64::new(0),
        }
    }

    /// Paper-default 1 MB pages.
    #[must_use]
    pub fn with_paper_pages(values: &[f64]) -> Self {
        Self::new(values, 1 << 20)
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.values
    }

    /// Whether the device is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values == 0
    }

    /// Number of pages on the device.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Reads the page holding `row`, charging one transfer of the given
    /// kind, and returns the raw page bytes.
    fn read_page(&self, page: usize, sequential: bool) -> &[u8] {
        if sequential {
            self.sequential_pages.fetch_add(1, Ordering::Relaxed);
        } else {
            self.random_pages.fetch_add(1, Ordering::Relaxed);
        }
        &self.pages[page]
    }

    /// Random access: fetches the value at `row` through a one-page
    /// Direct-I/O read (what the bitmap-index sample path does).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn fetch(&self, row: u64) -> f64 {
        assert!(row < self.values, "row {row} out of range");
        let per_page = (self.page_bytes / Self::VALUE_BYTES) as u64;
        let page = (row / per_page) as usize;
        let offset = ((row % per_page) as usize) * Self::VALUE_BYTES;
        let bytes = self.read_page(page, false);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[offset..offset + 8]);
        f64::from_le_bytes(buf)
    }

    /// Sequential scan: visits every value in storage order through
    /// page-sized reads, invoking `f` per value (what SCAN does).
    pub fn scan(&self, mut f: impl FnMut(f64)) {
        for page_idx in 0..self.pages.len() {
            let bytes = self.read_page(page_idx, true);
            for chunk in bytes.chunks_exact(8) {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(chunk);
                f(f64::from_le_bytes(buf));
            }
        }
    }

    /// Transfer counters: `(sequential_pages, random_pages)`.
    #[must_use]
    pub fn transfers(&self) -> (u64, u64) {
        (
            self.sequential_pages.load(Ordering::Relaxed),
            self.random_pages.load(Ordering::Relaxed),
        )
    }

    /// Resets the transfer counters.
    pub fn reset_transfers(&self) {
        self.sequential_pages.store(0, Ordering::Relaxed);
        self.random_pages.store(0, Ordering::Relaxed);
    }

    /// Prices the recorded transfers with a cost model: sequential pages
    /// at bandwidth, random pages at the per-sample random-read cost.
    #[must_use]
    pub fn cost(&self, model: &DiskModel) -> CostBreakdown {
        let (seq, rand) = self.transfers();
        CostBreakdown {
            io_seconds: seq as f64 * self.page_bytes as f64 / model.seq_bandwidth
                + rand as f64 * model.random_io_seconds_per_sample,
            cpu_seconds: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk(n: usize, page_bytes: usize) -> SimulatedDisk {
        let values: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        SimulatedDisk::new(&values, page_bytes)
    }

    #[test]
    fn fetch_roundtrips_values() {
        let d = disk(1000, 64); // 8 values per page
        for row in [0u64, 7, 8, 500, 999] {
            assert_eq!(d.fetch(row), row as f64 * 0.5);
        }
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(disk(16, 64).page_count(), 2);
        assert_eq!(disk(17, 64).page_count(), 3);
        assert_eq!(disk(0, 64).page_count(), 0);
        assert!(disk(0, 64).is_empty());
    }

    #[test]
    fn random_fetches_charge_one_page_each() {
        let d = disk(1000, 64);
        for row in 0..10 {
            let _ = d.fetch(row * 90);
        }
        let (seq, rand) = d.transfers();
        assert_eq!(seq, 0);
        assert_eq!(rand, 10, "each fetch is one Direct-I/O page read");
    }

    #[test]
    fn scan_charges_every_page_once() {
        let d = disk(1000, 64); // 125 pages
        let mut sum = 0.0;
        let mut count = 0u64;
        d.scan(|v| {
            sum += v;
            count += 1;
        });
        assert_eq!(count, 1000);
        assert!((sum - 0.5 * (999.0 * 1000.0) / 2.0).abs() < 1e-9);
        let (seq, rand) = d.transfers();
        assert_eq!(seq, 125);
        assert_eq!(rand, 0);
    }

    #[test]
    fn costs_price_transfers() {
        let d = disk(100_000, 1 << 20); // < 1 page of 1 MB
        d.scan(|_| {});
        let _ = d.fetch(5);
        let model = DiskModel::paper_default();
        let cost = d.cost(&model);
        let expected_seq = (1 << 20) as f64 / model.seq_bandwidth;
        let expected = expected_seq + model.random_io_seconds_per_sample;
        assert!((cost.io_seconds - expected).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counters() {
        let d = disk(100, 64);
        let _ = d.fetch(0);
        d.reset_transfers();
        assert_eq!(d.transfers(), (0, 0));
    }

    #[test]
    fn scan_vs_sampling_crossover_on_real_datapath() {
        // The paper's core economics on the actual byte-moving path: at
        // 10^6 values, fetching 10^4 random rows moves far less "disk
        // time" than scanning everything.
        let values: Vec<f64> = (0..1_000_000).map(|i| f64::from(i % 100)).collect();
        let d = SimulatedDisk::with_paper_pages(&values);
        let model = DiskModel::paper_default();
        d.scan(|_| {});
        let scan_cost = d.cost(&model).io_seconds;
        d.reset_transfers();
        for i in 0..10_000u64 {
            let _ = d.fetch((i * 97) % 1_000_000);
        }
        let sample_cost = d.cost(&model).io_seconds;
        assert!(
            scan_cost < sample_cost * 10.0,
            "scan wins when sampling 1%: {scan_cost} vs {sample_cost}"
        );
        d.reset_transfers();
        for i in 0..100u64 {
            let _ = d.fetch((i * 9973) % 1_000_000);
        }
        let tiny_cost = d.cost(&model).io_seconds;
        assert!(tiny_cost < scan_cost, "sampling 0.01% beats the scan");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fetch_out_of_range() {
        let d = disk(10, 64);
        let _ = d.fetch(10);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_bad_page_size() {
        let _ = SimulatedDisk::new(&[1.0], 10);
    }
}
