//! Relation schemas.

use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the schema.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl ColumnDef {
    /// Creates a column definition.
    #[must_use]
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if two columns share a name.
    #[must_use]
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|d| d.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// The column definitions in order.
    #[must_use]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column with the given name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The definition of the named column.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let s = Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index("delay"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("name").unwrap().data_type, DataType::Str);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_names() {
        let _ = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Float),
        ]);
    }

    #[test]
    fn display_types() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
        assert_eq!(DataType::Str.to_string(), "STR");
    }
}
