//! Random tuple sampling over an eligibility bitmap.
//!
//! The core retrieval primitive of NEEDLETAIL: given the bitmap of rows
//! matching a condition, return a *uniformly random* matching row id in
//! `O(log n)` via `select(random index)`.
//!
//! Two regimes are supported, matching §3.6:
//!
//! * **With replacement** — stateless: each draw is an independent uniform
//!   pick among the eligible rows.
//! * **Without replacement** — a *virtual Fisher–Yates shuffle*: the sampler
//!   tracks only the swaps it has performed (a hash map of displaced slots),
//!   so memory grows with the number of draws, not the group size, and every
//!   eligible row is produced exactly once over the sampler's lifetime.
//!
//! [`SizeEstimatingSampler`] additionally produces the unbiased group-size
//! estimate `z` needed by the unknown-group-size `SUM` algorithm
//! (Algorithm 5): along with a random group member `x`, it probes an
//! independent uniformly random *table position* and reports whether that
//! position belongs to the group — `E[z] = |S_i| / N`, the normalized group
//! size, and `x·z` stays in `[0, c]` exactly as §6.3.1 requires. The probe
//! is answered by the in-memory bitmap, so it costs no I/O.
//!
//! ## Batched draws
//!
//! Both regimes also come in batch form —
//! [`BitmapSampler::sample_batch_with_replacement`] and
//! [`BitmapSampler::sample_batch_without_replacement`] — which generate all
//! `n` random ranks first, resolve them through
//! [`Bitmap::select_many`]'s single monotone directory sweep (one
//! `O(b + log n)` pass instead of `b` independent `O(log n)` binary
//! searches), and then restore draw order. The batch paths consume the RNG
//! identically to `n` single draws, so for a fixed seed they return the
//! **same stream of rows** — batching is a pure throughput optimization
//! with no statistical or reproducibility cost.
//! [`SizeEstimatingSampler::sample_batch_with_size_estimate`] extends the
//! same contract to Algorithm 5's `(row, z)` pairs.
//!
//! ## The scratch arena
//!
//! Every sampler owns a [`BatchScratch`]: the sort keys, the sorted-rank
//! staging buffer, the `select_many` output, and the radix-sort ping-pong
//! buffer all live in reusable vectors, so after the first few batches the
//! batch path performs **zero heap allocation at steady state** (verified
//! by a counting-allocator test). Batches of [`RADIX_MIN_BATCH`] keys or
//! more are sorted with a stable LSD radix sort over the packed words
//! instead of comparison sorting; since packed keys are distinct, both
//! sorts produce the identical resolve order (property-tested).

use crate::bitmap::Bitmap;
use crate::u64map::SwapMap;
use rand::Rng;
use std::sync::Arc;

/// The eligible-row set a sampler draws from — the zero-copy layer behind
/// the engine's plan cache.
///
/// Two shapes:
///
/// * [`RowSet::Bitmap`] — a full bitmap behind an [`Arc`]: the group's own
///   index bitmap (shared pointer-for-pointer between every handle and
///   cache entry that needs it), a cached predicate bitmap, or a
///   materialized intersection.
/// * [`RowSet::Positions`] — the **intersection view**: the sorted row ids
///   of a *selective* `group ∧ predicate` intersection, built by galloping
///   over the smaller operand and membership-testing the larger
///   ([`Bitmap::intersect_positions`]) instead of materializing a
///   table-length bitmap. `select(k)` degenerates to `positions[k]` — O(1),
///   faster than any rank directory — and the memory cost scales with the
///   filtered group, not the table.
///
/// Both shapes describe the same abstract set of row ids, so a sampler is
/// oblivious to which it got: for a fixed seed the drawn row stream is
/// identical (the RNG consumes ranks in `0..count_ones()` either way and
/// `select` agrees by construction).
#[derive(Debug, Clone)]
pub enum RowSet {
    /// A whole (possibly shared) bitmap over the table's rows.
    Bitmap(Arc<Bitmap>),
    /// Sorted eligible row ids of a selective intersection, plus the
    /// universe (table row count) they index into.
    Positions {
        /// Sorted, de-duplicated row ids (shared between clones).
        positions: Arc<Vec<u64>>,
        /// Number of addressable rows (the table length).
        universe: u64,
    },
}

impl RowSet {
    /// Wraps an owned bitmap.
    #[must_use]
    pub fn from_bitmap(bitmap: Bitmap) -> Self {
        RowSet::Bitmap(Arc::new(bitmap))
    }

    /// Number of addressable positions (the table length).
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            RowSet::Bitmap(bm) => bm.len(),
            RowSet::Positions { universe, .. } => *universe,
        }
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of eligible rows.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        match self {
            RowSet::Bitmap(bm) => bm.count_ones(),
            RowSet::Positions { positions, .. } => positions.len() as u64,
        }
    }

    /// Whether row `pos` is eligible.
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        match self {
            RowSet::Bitmap(bm) => bm.get(pos),
            RowSet::Positions { positions, .. } => positions.binary_search(&pos).is_ok(),
        }
    }

    /// The `k`-th (0-based) eligible row, or `None` if out of range.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<u64> {
        match self {
            RowSet::Bitmap(bm) => bm.select(k),
            RowSet::Positions { positions, .. } => positions.get(k as usize).copied(),
        }
    }

    /// Resolves a **sorted** batch of ranks, appending each `k`-th eligible
    /// row to `out` in input order (the contract of
    /// [`Bitmap::select_many`]; the positions view resolves each rank by
    /// direct indexing).
    ///
    /// # Panics
    ///
    /// Panics if any rank is `>= count_ones()`.
    pub fn select_many(&self, sorted_ks: &[u64], out: &mut Vec<u64>) {
        match self {
            RowSet::Bitmap(bm) => bm.select_many(sorted_ks, out),
            RowSet::Positions { positions, .. } => {
                if let Some(&last) = sorted_ks.last() {
                    assert!(
                        last < positions.len() as u64,
                        "select_many rank out of range (count_ones {})",
                        positions.len()
                    );
                }
                out.extend(sorted_ks.iter().map(|&k| positions[k as usize]));
            }
        }
    }

    /// Iterator over the eligible row ids, ascending.
    pub fn iter_ones(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            RowSet::Bitmap(bm) => bm.iter_ones(),
            RowSet::Positions { positions, .. } => Box::new(positions.iter().copied()),
        }
    }

    /// Approximate heap bytes of this view's own storage (shared storage
    /// is counted once per underlying allocation, not per clone).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowSet::Bitmap(bm) => bm.heap_bytes(),
            RowSet::Positions { positions, .. } => positions.len() * 8,
        }
    }
}

/// Batches at or above this many keys sort with the LSD radix sort;
/// smaller batches use pattern-defeating quicksort, which wins while the
/// key array is cache-resident.
pub const RADIX_MIN_BATCH: usize = 4096;

/// Reusable buffers for batched rank resolution — one per sampler, so the
/// batch path allocates nothing once the buffers have grown to the batch
/// size. All buffers are cleared (not shrunk) between batches.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Draw-order ranks, packed in place to `rank << 20 | draw_index`.
    keys: Vec<u64>,
    /// Radix-sort ping-pong buffer.
    radix: Vec<u64>,
    /// Sorted ranks handed to [`Bitmap::select_many`].
    sorted: Vec<u64>,
    /// Positions returned by `select_many` (sorted-rank order).
    positions: Vec<u64>,
    /// Fallback sort pairs for oversized ranks/batches (rank ≥ 2^44 or
    /// batch ≥ 2^20); never used by realistic workloads.
    pairs: Vec<(u64, u64)>,
}

/// Uniform random sampler over the set bits of a bitmap (or any
/// [`RowSet`] view of one).
#[derive(Debug, Clone)]
pub struct BitmapSampler {
    bits: RowSet,
    eligible: u64,
    /// Virtual Fisher–Yates state: logical position -> displaced value.
    /// An open-addressed multiply-shift map ([`SwapMap`]): the default
    /// SipHash `HashMap` dominates without-replacement draw cost, and these
    /// keys are internal ranks, never untrusted. Populations below
    /// `u32::MAX` use 8-byte entries so long runs stay cache-resident.
    swaps: SwapMap,
    /// Draws made without replacement so far.
    drawn: u64,
    /// Reusable batch-resolution buffers (allocation-free steady state).
    scratch: BatchScratch,
}

impl BitmapSampler {
    /// Creates a sampler over the set bits of `bitmap`.
    #[must_use]
    pub fn new(bitmap: Bitmap) -> Self {
        Self::from_rows(RowSet::from_bitmap(bitmap))
    }

    /// Creates a sampler over a shared bitmap without copying it — the
    /// zero-copy path the engine's plan cache uses for unfiltered groups.
    #[must_use]
    pub fn shared(bitmap: Arc<Bitmap>) -> Self {
        Self::from_rows(RowSet::Bitmap(bitmap))
    }

    /// Creates a sampler over any [`RowSet`] (shared bitmap or
    /// intersection view). Sampler state (permutation, scratch) is always
    /// fresh; only the row set is shared.
    #[must_use]
    pub fn from_rows(bits: RowSet) -> Self {
        let eligible = bits.count_ones();
        Self {
            bits,
            eligible,
            swaps: SwapMap::for_population(eligible),
            drawn: 0,
            scratch: BatchScratch::default(),
        }
    }

    /// Number of eligible rows.
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.eligible
    }

    /// Rows not yet produced by [`Self::sample_without_replacement`].
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.eligible - self.drawn
    }

    /// The underlying eligible-row set.
    #[must_use]
    pub fn rows(&self) -> &RowSet {
        &self.bits
    }

    /// A uniformly random eligible row id (independent across calls).
    /// `None` if no row is eligible.
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        if self.eligible == 0 {
            return None;
        }
        let k = rng.gen_range(0..self.eligible);
        self.bits.select(k)
    }

    /// The next row of a uniformly random permutation of the eligible rows.
    /// `None` once every eligible row has been produced.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        if self.drawn == self.eligible {
            return None;
        }
        // Virtual Fisher–Yates over logical indices [drawn, eligible).
        let j = rng.gen_range(self.drawn..self.eligible);
        let chosen = self.logical(j);
        let displaced = self.logical(self.drawn);
        // Swap: slot j now holds what slot `drawn` held.
        self.swaps.insert(j, displaced);
        self.swaps.remove(self.drawn);
        self.drawn += 1;
        self.bits.select(chosen)
    }

    /// Draws `n` rows with replacement in one batch, appending them to
    /// `out` in draw order; returns the number appended (always `n` unless
    /// the bitmap is empty, in which case `0`).
    ///
    /// Generates all `n` ranks, resolves them through one sorted
    /// [`Bitmap::select_many`] sweep, and unsorts the results. For a fixed
    /// seed the appended rows are identical to `n` calls of
    /// [`Self::sample_with_replacement`].
    pub fn sample_batch_with_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) -> usize {
        if self.eligible == 0 || n == 0 {
            return 0;
        }
        self.scratch.keys.clear();
        for _ in 0..n {
            self.scratch.keys.push(rng.gen_range(0..self.eligible));
        }
        resolve_in_draw_order(&self.bits, &mut self.scratch, out);
        n
    }

    /// Draws up to `n` further rows of the without-replacement permutation
    /// in one batch, appending them to `out` in draw order; returns the
    /// number appended (`< n` once the population runs dry).
    ///
    /// The virtual Fisher–Yates state advances exactly as under repeated
    /// [`Self::sample_without_replacement`] calls and the RNG is consumed
    /// identically, so for a fixed seed the appended rows are the same
    /// stream — only the rank→position resolution is batched through
    /// [`Bitmap::select_many`].
    pub fn sample_batch_without_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) -> usize {
        let take = n.min((self.eligible - self.drawn) as usize);
        if take == 0 {
            return 0;
        }
        self.scratch.keys.clear();
        self.swaps.reserve(take);
        for _ in 0..take {
            let j = rng.gen_range(self.drawn..self.eligible);
            let chosen = self.logical(j);
            let displaced = self.logical(self.drawn);
            self.swaps.insert(j, displaced);
            self.swaps.remove(self.drawn);
            self.drawn += 1;
            self.scratch.keys.push(chosen);
        }
        resolve_in_draw_order(&self.bits, &mut self.scratch, out);
        take
    }

    /// Resets the without-replacement permutation (a fresh shuffle).
    pub fn reset(&mut self) {
        self.swaps.clear();
        self.drawn = 0;
    }

    /// Captures the without-replacement permutation state: the number of
    /// draws made so far plus every virtual Fisher–Yates swap entry,
    /// **sorted by logical slot** so the bytes a checkpoint derives from
    /// this are independent of the swap table's internal layout.
    ///
    /// Together with [`Self::restore_permutation`] this makes a sampler
    /// resumable: a restored sampler continues the exact row stream the
    /// saved one would have produced (given the same RNG stream). The
    /// with-replacement path is stateless and needs no capture.
    #[must_use]
    pub fn permutation_state(&self) -> (u64, Vec<(u64, u64)>) {
        let mut entries = Vec::with_capacity(self.swaps.len());
        self.swaps.for_each_entry(|k, v| entries.push((k, v)));
        entries.sort_unstable();
        (self.drawn, entries)
    }

    /// Restores the permutation captured by [`Self::permutation_state`].
    /// Only `get`/`insert`/`remove` semantics matter to future draws, so
    /// rebuilding the swap table by insertion (whatever its resulting
    /// layout) reproduces the saved sampler's row stream exactly. A
    /// `drawn` beyond the eligible count (corrupt input) is clamped rather
    /// than trusted.
    pub fn restore_permutation(&mut self, drawn: u64, entries: &[(u64, u64)]) {
        self.swaps.clear();
        self.swaps.reserve(entries.len());
        for &(k, v) in entries {
            self.swaps.insert(k, v);
        }
        self.drawn = drawn.min(self.eligible);
    }

    fn logical(&self, slot: u64) -> u64 {
        self.swaps.get(slot).unwrap_or(slot)
    }
}

/// Resolves the draw-order ranks staged in `scratch.keys` against `bits`
/// via one sorted `select_many` sweep, appending positions to `out` in the
/// original draw order. All intermediate state lives in `scratch`, so a
/// warm scratch makes this allocation-free (provided `out` has capacity).
///
/// When ranks and batch size fit (rank < 2^44, batch < 2^20 — any realistic
/// workload), rank and draw index are packed into a single `u64`
/// (`rank << 20 | index`) so the sort runs over plain words: markedly
/// faster than sorting `(u64, u32)` pairs. Batches of [`RADIX_MIN_BATCH`]
/// or more packed keys use the LSD radix sort. Oversized inputs fall back
/// to the pair sort.
fn resolve_in_draw_order(bits: &RowSet, scratch: &mut BatchScratch, out: &mut Vec<u64>) {
    const IDX_BITS: u32 = 20;
    let BatchScratch {
        keys,
        radix,
        sorted,
        positions,
        pairs,
    } = scratch;
    let n = keys.len();
    let max_rank = keys.iter().copied().max().unwrap_or(0);
    let base = out.len();
    if n < (1 << IDX_BITS) && max_rank < (1 << (64 - IDX_BITS)) {
        for (i, r) in keys.iter_mut().enumerate() {
            *r = (*r << IDX_BITS) | i as u64;
        }
        if n >= RADIX_MIN_BATCH {
            radix_sort_u64(keys, radix);
        } else {
            keys.sort_unstable();
        }
        sorted.clear();
        sorted.extend(keys.iter().map(|&p| p >> IDX_BITS));
        positions.clear();
        bits.select_many(sorted, positions);
        out.resize(base + n, 0);
        let idx_mask = (1u64 << IDX_BITS) - 1;
        for (&packed, &pos) in keys.iter().zip(positions.iter()) {
            out[base + (packed & idx_mask) as usize] = pos;
        }
    } else {
        pairs.clear();
        pairs.extend(keys.iter().copied().zip(0..));
        pairs.sort_unstable();
        sorted.clear();
        sorted.extend(pairs.iter().map(|&(r, _)| r));
        positions.clear();
        bits.select_many(sorted, positions);
        out.resize(base + n, 0);
        for (&(_, idx), &pos) in pairs.iter().zip(positions.iter()) {
            out[base + idx as usize] = pos;
        }
    }
}

/// Stable LSD radix sort over `u64` keys: 8-bit digits, low byte first,
/// skipping digit positions beyond the maximum key's width and positions
/// where every key shares the digit (the common case for packed
/// `rank << 20 | index` keys, whose top bytes are zero). `tmp` is the
/// ping-pong buffer; after every executed pass the buffers swap, so the
/// sorted run always ends in `keys`.
///
/// Stability makes the result identical to `sort_unstable` whenever keys
/// are distinct — which packed keys always are (the index bits differ).
pub(crate) fn radix_sort_u64(keys: &mut Vec<u64>, tmp: &mut Vec<u64>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let max = keys.iter().copied().max().unwrap_or(0);
    let passes = (64 - max.leading_zeros()).div_ceil(8).max(1) as usize;
    tmp.clear();
    tmp.resize(n, 0);
    for pass in 0..passes {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for &k in keys.iter() {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        // A constant digit cannot reorder anything: skip the scatter.
        if counts.contains(&n) {
            continue;
        }
        let mut running = 0usize;
        for c in &mut counts {
            let bucket = *c;
            *c = running;
            running += bucket;
        }
        for &k in keys.iter() {
            let d = ((k >> shift) & 0xFF) as usize;
            tmp[counts[d]] = k;
            counts[d] += 1;
        }
        std::mem::swap(keys, tmp);
    }
}

/// A sampler that pairs each group-member draw with an unbiased estimate of
/// the group's normalized size (Algorithm 5 support).
#[derive(Debug, Clone)]
pub struct SizeEstimatingSampler {
    inner: BitmapSampler,
    table_rows: u64,
    /// Reusable draw-order row buffer for the batch path.
    rows_buf: Vec<u64>,
}

impl SizeEstimatingSampler {
    /// Creates the sampler; `table_rows` is the total relation size `N`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap is longer than the stated table size.
    #[must_use]
    pub fn new(bitmap: Bitmap, table_rows: u64) -> Self {
        Self::from_rows(RowSet::from_bitmap(bitmap), table_rows)
    }

    /// Creates the sampler over a shared bitmap without copying it.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap is longer than the stated table size.
    #[must_use]
    pub fn shared(bitmap: Arc<Bitmap>, table_rows: u64) -> Self {
        Self::from_rows(RowSet::Bitmap(bitmap), table_rows)
    }

    /// Creates the sampler over any [`RowSet`].
    ///
    /// # Panics
    ///
    /// Panics if the row set's universe is longer than the stated table
    /// size.
    #[must_use]
    pub fn from_rows(bits: RowSet, table_rows: u64) -> Self {
        assert!(
            bits.len() <= table_rows,
            "bitmap length {} exceeds the relation size {table_rows}",
            bits.len()
        );
        Self {
            inner: BitmapSampler::from_rows(bits),
            table_rows,
            rows_buf: Vec::new(),
        }
    }

    /// Number of eligible rows (the true `n_i`; exposed for verification —
    /// the estimating path never consults it).
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.inner.eligible()
    }

    /// Draws `(row, z)`: a uniform random group member and an independent
    /// unbiased estimate `z ∈ {0, 1}` of the normalized group size
    /// `s_i = n_i / N`.
    pub fn sample_with_size_estimate<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(u64, f64)> {
        let row = self.inner.sample_with_replacement(rng)?;
        let probe = rng.gen_range(0..self.table_rows);
        let z = if probe < self.inner.rows().len() && self.inner.rows().get(probe) {
            1.0
        } else {
            0.0
        };
        Some((row, z))
    }

    /// Draws `n` `(row, z)` pairs in one batch, appending them to `out` in
    /// draw order; returns the number appended (always `n` unless the group
    /// is empty, in which case `0`).
    ///
    /// The member ranks resolve through one sorted [`Bitmap::select_many`]
    /// sweep while the size probes are answered inline by the in-memory
    /// bitmap (no I/O, exactly as the single-draw path). The RNG is
    /// consumed identically to `n` calls of
    /// [`Self::sample_with_size_estimate`] — rank then probe, per draw — so
    /// a fixed seed yields the same `(row, z)` stream, batched or not.
    pub fn sample_batch_with_size_estimate<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<(u64, f64)>,
    ) -> usize {
        if self.inner.eligible == 0 || n == 0 {
            return 0;
        }
        let base = out.len();
        let table_rows = self.table_rows;
        let BitmapSampler {
            bits,
            eligible,
            scratch,
            ..
        } = &mut self.inner;
        scratch.keys.clear();
        for _ in 0..n {
            scratch.keys.push(rng.gen_range(0..*eligible));
            let probe = rng.gen_range(0..table_rows);
            let z = if probe < bits.len() && bits.get(probe) {
                1.0
            } else {
                0.0
            };
            // Row is patched in after the batched rank resolution below.
            out.push((0, z));
        }
        self.rows_buf.clear();
        resolve_in_draw_order(bits, scratch, &mut self.rows_buf);
        for (slot, &row) in out[base..].iter_mut().zip(&self.rows_buf) {
            slot.0 = row;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bitmap(positions: &[u64], len: u64) -> Bitmap {
        Bitmap::from_sorted_positions(positions, len)
    }

    #[test]
    fn with_replacement_only_eligible_rows() {
        let positions = vec![2, 5, 7, 11];
        let s = BitmapSampler::new(bitmap(&positions, 16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let row = s.sample_with_replacement(&mut rng).unwrap();
            assert!(positions.contains(&row), "sampled ineligible row {row}");
        }
    }

    #[test]
    fn with_replacement_roughly_uniform() {
        let positions: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let s = BitmapSampler::new(bitmap(&positions, 30));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts
                .entry(s.sample_with_replacement(&mut rng).unwrap())
                .or_insert(0u32) += 1;
        }
        let expected = draws as f64 / positions.len() as f64;
        for &p in &positions {
            let c = f64::from(counts[&p]);
            assert!(
                (c - expected).abs() < 0.15 * expected,
                "count for {p} was {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn without_replacement_is_a_permutation() {
        let positions: Vec<u64> = vec![1, 4, 9, 16, 25, 36, 49];
        let mut s = BitmapSampler::new(bitmap(&positions, 64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        assert_eq!(s.remaining(), 0);
        seen.sort_unstable();
        assert_eq!(seen, positions, "must produce each eligible row once");
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn without_replacement_first_draw_uniform() {
        let positions: Vec<u64> = (0..8).collect();
        let mut counts = [0u32; 8];
        for seed in 0..4000 {
            let mut s = BitmapSampler::new(bitmap(&positions, 8));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let row = s.sample_without_replacement(&mut rng).unwrap();
            counts[row as usize] += 1;
        }
        let expected = 4000.0 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() < 0.25 * expected,
                "first-draw count for {i} was {c}"
            );
        }
    }

    #[test]
    fn reset_restores_full_population() {
        let positions: Vec<u64> = vec![0, 2, 4];
        let mut s = BitmapSampler::new(bitmap(&positions, 6));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = s.sample_without_replacement(&mut rng);
        let _ = s.sample_without_replacement(&mut rng);
        assert_eq!(s.remaining(), 1);
        s.reset();
        assert_eq!(s.remaining(), 3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        seen.sort_unstable();
        assert_eq!(seen, positions);
    }

    #[test]
    fn permutation_state_roundtrip_continues_the_stream() {
        let positions: Vec<u64> = (0..200).map(|i| i * 3 + 1).collect();
        let mut original = BitmapSampler::new(bitmap(&positions, 700));
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..60 {
            let _ = original.sample_without_replacement(&mut rng);
        }
        let (drawn, entries) = original.permutation_state();
        assert_eq!(drawn, 60);
        // Restore into a *fresh* sampler over the same rows and continue
        // with a clone of the RNG: streams must match draw for draw.
        let mut restored = BitmapSampler::new(bitmap(&positions, 700));
        restored.restore_permutation(drawn, &entries);
        let mut rng2 = rng.clone();
        for _ in 0..140 {
            assert_eq!(
                original.sample_without_replacement(&mut rng),
                restored.sample_without_replacement(&mut rng2),
            );
        }
        assert_eq!(original.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn permutation_state_entries_are_sorted() {
        let positions: Vec<u64> = (0..500).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 500));
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        for _ in 0..120 {
            let _ = s.sample_without_replacement(&mut rng);
        }
        let (_, entries) = s.permutation_state();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn restore_permutation_clamps_corrupt_drawn() {
        let mut s = BitmapSampler::new(bitmap(&[1, 2, 3], 8));
        s.restore_permutation(u64::MAX, &[]);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn empty_bitmap_yields_none() {
        let mut s = BitmapSampler::new(Bitmap::zeros(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(s.sample_with_replacement(&mut rng), None);
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn swap_memory_bounded_by_draws() {
        let positions: Vec<u64> = (0..10_000).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 10_000));
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = s.sample_without_replacement(&mut rng);
        }
        assert!(
            s.swaps.len() <= 100,
            "swap map grew past the number of draws: {}",
            s.swaps.len()
        );
    }

    #[test]
    fn size_estimate_is_unbiased() {
        // Group occupies 3000 of 10_000 rows: s_i = 0.3.
        let positions: Vec<u64> = (4000..7000).collect();
        let s = SizeEstimatingSampler::new(bitmap(&positions, 10_000), 10_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let draws = 30_000;
        let mut z_sum = 0.0;
        for _ in 0..draws {
            let (row, z) = s.sample_with_size_estimate(&mut rng).unwrap();
            assert!((4000..7000).contains(&row));
            z_sum += z;
        }
        let z_mean = z_sum / f64::from(draws);
        assert!(
            (z_mean - 0.3).abs() < 0.02,
            "E[z] should be ~0.3, got {z_mean}"
        );
    }

    #[test]
    fn size_estimate_empty_group() {
        let s = SizeEstimatingSampler::new(Bitmap::zeros(100), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(s.sample_with_size_estimate(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the relation size")]
    fn size_estimator_rejects_oversized_bitmap() {
        let _ = SizeEstimatingSampler::new(Bitmap::zeros(101), 100);
    }

    #[test]
    fn batch_with_replacement_matches_single_draw_stream() {
        let positions: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 4000));
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(40);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(40);
        let singles: Vec<u64> = (0..137)
            .map(|_| s.sample_with_replacement(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s.sample_batch_with_replacement(137, &mut rng_batch, &mut batched);
        assert_eq!(got, 137);
        assert_eq!(batched, singles, "batch must replay the single-draw stream");
    }

    #[test]
    fn batch_without_replacement_matches_single_draw_stream() {
        let positions: Vec<u64> = (0..300).map(|i| i * 11).collect();
        let mut s1 = BitmapSampler::new(bitmap(&positions, 3300));
        let mut s2 = s1.clone();
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(41);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(41);
        let singles: Vec<u64> = (0..97)
            .map(|_| s1.sample_without_replacement(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s2.sample_batch_without_replacement(97, &mut rng_batch, &mut batched);
        assert_eq!(got, 97);
        assert_eq!(batched, singles, "batch must replay the single-draw stream");
        assert_eq!(s1.remaining(), s2.remaining());
    }

    #[test]
    fn batch_without_replacement_truncates_at_exhaustion() {
        let positions: Vec<u64> = vec![1, 5, 9];
        let mut s = BitmapSampler::new(bitmap(&positions, 16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut out = Vec::new();
        let got = s.sample_batch_without_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 3);
        assert_eq!(s.remaining(), 0);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, positions);
        assert_eq!(s.sample_batch_without_replacement(4, &mut rng, &mut out), 0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn batch_on_empty_bitmap_appends_nothing() {
        let mut s = BitmapSampler::new(Bitmap::zeros(32));
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let mut out = Vec::new();
        assert_eq!(s.sample_batch_with_replacement(8, &mut rng, &mut out), 0);
        assert_eq!(s.sample_batch_without_replacement(8, &mut rng, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_interleaves_with_single_draws() {
        // Mixed single/batch usage continues one permutation.
        let positions: Vec<u64> = (0..64).map(|i| i * 2).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 128));
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut seen = Vec::new();
        seen.push(s.sample_without_replacement(&mut rng).unwrap());
        let mut out = Vec::new();
        s.sample_batch_without_replacement(30, &mut rng, &mut out);
        seen.extend_from_slice(&out);
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        seen.sort_unstable();
        assert_eq!(seen, positions, "mixed draws must still be a permutation");
    }

    #[test]
    fn radix_sized_batch_matches_single_draw_stream() {
        // A batch at RADIX_MIN_BATCH exercises the radix-sort resolve path
        // end to end and must still replay the single-draw stream.
        let positions: Vec<u64> = (0..30_000).map(|i| i * 3 + 1).collect();
        let s = BitmapSampler::new(bitmap(&positions, 100_000));
        let mut s2 = s.clone();
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(50);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(50);
        let singles: Vec<u64> = (0..RADIX_MIN_BATCH)
            .map(|_| s.sample_with_replacement(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s2.sample_batch_with_replacement(RADIX_MIN_BATCH, &mut rng_batch, &mut batched);
        assert_eq!(got, RADIX_MIN_BATCH);
        assert_eq!(batched, singles, "radix path must replay the stream");
    }

    #[test]
    fn size_estimate_batch_matches_single_draw_stream() {
        let positions: Vec<u64> = (2000..5000).collect();
        let s = SizeEstimatingSampler::new(bitmap(&positions, 10_000), 10_000);
        let mut s2 = s.clone();
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(60);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(60);
        let singles: Vec<(u64, f64)> = (0..257)
            .map(|_| s.sample_with_size_estimate(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s2.sample_batch_with_size_estimate(257, &mut rng_batch, &mut batched);
        assert_eq!(got, 257);
        assert_eq!(batched, singles, "size-estimate batch must replay stream");
    }

    #[test]
    fn size_estimate_batch_on_empty_group_appends_nothing() {
        let mut s = SizeEstimatingSampler::new(Bitmap::zeros(100), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let mut out = Vec::new();
        assert_eq!(s.sample_batch_with_size_estimate(8, &mut rng, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn rowset_views_agree_on_queries() {
        let positions: Vec<u64> = vec![2, 5, 7, 64, 65, 200, 999];
        let as_bitmap = RowSet::from_bitmap(bitmap(&positions, 1000));
        let as_positions = RowSet::Positions {
            positions: Arc::new(positions.clone()),
            universe: 1000,
        };
        for set in [&as_bitmap, &as_positions] {
            assert_eq!(set.len(), 1000);
            assert!(!set.is_empty());
            assert_eq!(set.count_ones(), positions.len() as u64);
            assert_eq!(set.iter_ones().collect::<Vec<_>>(), positions);
            for (k, &p) in positions.iter().enumerate() {
                assert!(set.get(p));
                assert_eq!(set.select(k as u64), Some(p));
            }
            assert!(!set.get(3));
            assert_eq!(set.select(positions.len() as u64), None);
            let ks: Vec<u64> = vec![0, 0, 2, 6];
            let mut out = Vec::new();
            set.select_many(&ks, &mut out);
            assert_eq!(out, vec![2, 2, 7, 999]);
        }
        assert!(as_positions.heap_bytes() < as_bitmap.heap_bytes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rowset_positions_select_many_rejects_oob_rank() {
        let set = RowSet::Positions {
            positions: Arc::new(vec![1, 2]),
            universe: 10,
        };
        let mut out = Vec::new();
        set.select_many(&[0, 2], &mut out);
    }

    #[test]
    fn positions_view_replays_bitmap_sampler_stream() {
        // A sampler over the intersection *view* must consume the RNG and
        // produce rows exactly as one over the equivalent bitmap — the
        // invariant that makes the engine's selectivity cutover invisible
        // to fixed-seed results.
        let positions: Vec<u64> = (0..400).map(|i| i * 5 + 2).collect();
        let mut over_bitmap = BitmapSampler::new(bitmap(&positions, 4000));
        let mut over_view = BitmapSampler::from_rows(RowSet::Positions {
            positions: Arc::new(positions.clone()),
            universe: 4000,
        });
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(70);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(70);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        over_bitmap.sample_batch_with_replacement(97, &mut rng_a, &mut out_a);
        over_view.sample_batch_with_replacement(97, &mut rng_b, &mut out_b);
        assert_eq!(out_a, out_b, "WR batches must match across views");
        for _ in 0..150 {
            assert_eq!(
                over_bitmap.sample_without_replacement(&mut rng_a),
                over_view.sample_without_replacement(&mut rng_b),
                "WOR singles must match across views"
            );
        }
    }

    #[test]
    fn batch_with_replacement_roughly_uniform() {
        let positions: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 30));
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let mut out = Vec::new();
        s.sample_batch_with_replacement(20_000, &mut rng, &mut out);
        let mut counts = std::collections::HashMap::new();
        for row in out {
            *counts.entry(row).or_insert(0u32) += 1;
        }
        let expected = 20_000.0 / positions.len() as f64;
        for &p in &positions {
            let c = f64::from(counts[&p]);
            assert!(
                (c - expected).abs() < 0.15 * expected,
                "count for {p} was {c}, expected ~{expected}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Without-replacement sampling is always a permutation of the
        /// eligible rows, for any bitmap and seed.
        #[test]
        fn permutation_property(
            positions in proptest::collection::btree_set(0u64..2000, 1..64),
            len_extra in 0u64..100,
            seed in 0u64..1000,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1 + len_extra;
            let mut s = BitmapSampler::new(Bitmap::from_sorted_positions(&positions, len));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = Vec::new();
            while let Some(row) = s.sample_without_replacement(&mut rng) {
                seen.push(row);
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, positions, "not a permutation: {:?}", seen);
        }

        /// Batched without-replacement draws over the full population are an
        /// exact permutation of the eligible rows, for any bitmap, seed, and
        /// batch size.
        #[test]
        fn batch_permutation_property(
            positions in proptest::collection::btree_set(0u64..2000, 1..64),
            len_extra in 0u64..100,
            seed in 0u64..1000,
            batch in 1usize..17,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1 + len_extra;
            let mut s = BitmapSampler::new(Bitmap::from_sorted_positions(&positions, len));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = Vec::new();
            loop {
                let got = s.sample_batch_without_replacement(batch, &mut rng, &mut seen);
                if got == 0 {
                    break;
                }
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, positions, "not a permutation: {:?}", seen);
        }

        /// Batched draws replay the single-draw stream exactly, in both
        /// regimes, for any bitmap/seed/batch split — so batching can never
        /// change an algorithm's output for a fixed seed.
        #[test]
        fn batch_equals_single_stream(
            positions in proptest::collection::btree_set(0u64..3000, 1..128),
            seed in 0u64..1000,
            n in 1usize..80,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1;
            let bm = Bitmap::from_sorted_positions(&positions, len);

            // With replacement.
            let mut s = BitmapSampler::new(bm.clone());
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
            let singles: Vec<u64> = (0..n)
                .map(|_| s.sample_with_replacement(&mut rng_a).unwrap())
                .collect();
            let mut batched = Vec::new();
            s.sample_batch_with_replacement(n, &mut rng_b, &mut batched);
            prop_assert_eq!(&batched, &singles);

            // Without replacement.
            let mut s1 = BitmapSampler::new(bm.clone());
            let mut s2 = BitmapSampler::new(bm);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
            let take = n.min(positions.len());
            let singles: Vec<u64> = (0..take)
                .map(|_| s1.sample_without_replacement(&mut rng_a).unwrap())
                .collect();
            let mut batched = Vec::new();
            let got = s2.sample_batch_without_replacement(n, &mut rng_b, &mut batched);
            prop_assert_eq!(got, take);
            prop_assert_eq!(&batched, &singles);
        }

        /// The LSD radix sort and the packed-u64 comparison sort order any
        /// distinct-key batch identically, so the two resolve paths can
        /// never disagree on draw order.
        #[test]
        fn radix_sort_matches_comparison_sort(
            ranks in proptest::collection::vec(0u64..(1 << 44), 1..600),
            seed in 0u64..1000,
        ) {
            // Pack exactly like resolve_in_draw_order: rank << 20 | index,
            // keys distinct by construction. Perturb with the seed so the
            // high bytes (and thus the pass-skipping logic) vary.
            let mut keys: Vec<u64> = ranks
                .iter()
                .enumerate()
                .map(|(i, &r)| (r.wrapping_add(seed) % (1 << 44)) << 20 | i as u64)
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            let mut tmp = Vec::new();
            radix_sort_u64(&mut keys, &mut tmp);
            prop_assert_eq!(keys, expected);
        }

        /// Batched size-estimating draws replay the single-draw (row, z)
        /// stream exactly, for any bitmap/relation-size/seed/batch.
        #[test]
        fn size_estimate_batch_equals_single_stream(
            positions in proptest::collection::btree_set(0u64..2000, 1..100),
            rows_extra in 0u64..500,
            seed in 0u64..1000,
            n in 1usize..60,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1;
            let bm = Bitmap::from_sorted_positions(&positions, len);
            let s = SizeEstimatingSampler::new(bm, len + rows_extra);
            let mut s2 = s.clone();
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
            let singles: Vec<(u64, f64)> = (0..n)
                .map(|_| s.sample_with_size_estimate(&mut rng_a).unwrap())
                .collect();
            let mut batched = Vec::new();
            let got = s2.sample_batch_with_size_estimate(n, &mut rng_b, &mut batched);
            prop_assert_eq!(got, n);
            prop_assert_eq!(&batched, &singles);
        }
    }
}
