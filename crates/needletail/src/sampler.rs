//! Random tuple sampling over an eligibility bitmap.
//!
//! The core retrieval primitive of NEEDLETAIL: given the bitmap of rows
//! matching a condition, return a *uniformly random* matching row id in
//! `O(log n)` via `select(random index)`.
//!
//! Two regimes are supported, matching §3.6:
//!
//! * **With replacement** — stateless: each draw is an independent uniform
//!   pick among the eligible rows.
//! * **Without replacement** — a *virtual Fisher–Yates shuffle*: the sampler
//!   tracks only the swaps it has performed (a hash map of displaced slots),
//!   so memory grows with the number of draws, not the group size, and every
//!   eligible row is produced exactly once over the sampler's lifetime.
//!
//! [`SizeEstimatingSampler`] additionally produces the unbiased group-size
//! estimate `z` needed by the unknown-group-size `SUM` algorithm
//! (Algorithm 5): along with a random group member `x`, it probes an
//! independent uniformly random *table position* and reports whether that
//! position belongs to the group — `E[z] = |S_i| / N`, the normalized group
//! size, and `x·z` stays in `[0, c]` exactly as §6.3.1 requires. The probe
//! is answered by the in-memory bitmap, so it costs no I/O.
//!
//! ## Batched draws
//!
//! Both regimes also come in batch form —
//! [`BitmapSampler::sample_batch_with_replacement`] and
//! [`BitmapSampler::sample_batch_without_replacement`] — which generate all
//! `n` random ranks first, resolve them through
//! [`Bitmap::select_many`]'s single monotone directory sweep (one
//! `O(b + log n)` pass instead of `b` independent `O(log n)` binary
//! searches), and then restore draw order. The batch paths consume the RNG
//! identically to `n` single draws, so for a fixed seed they return the
//! **same stream of rows** — batching is a pure throughput optimization
//! with no statistical or reproducibility cost.

use crate::bitmap::Bitmap;
use crate::u64map::SwapMap;
use rand::Rng;

/// Uniform random sampler over the set bits of a bitmap.
#[derive(Debug, Clone)]
pub struct BitmapSampler {
    bitmap: Bitmap,
    eligible: u64,
    /// Virtual Fisher–Yates state: logical position -> displaced value.
    /// An open-addressed multiply-shift map ([`SwapMap`]): the default
    /// SipHash `HashMap` dominates without-replacement draw cost, and these
    /// keys are internal ranks, never untrusted. Populations below
    /// `u32::MAX` use 8-byte entries so long runs stay cache-resident.
    swaps: SwapMap,
    /// Draws made without replacement so far.
    drawn: u64,
}

impl BitmapSampler {
    /// Creates a sampler over the set bits of `bitmap`.
    #[must_use]
    pub fn new(bitmap: Bitmap) -> Self {
        let eligible = bitmap.count_ones();
        Self {
            bitmap,
            eligible,
            swaps: SwapMap::for_population(eligible),
            drawn: 0,
        }
    }

    /// Number of eligible rows.
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.eligible
    }

    /// Rows not yet produced by [`Self::sample_without_replacement`].
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.eligible - self.drawn
    }

    /// The underlying bitmap.
    #[must_use]
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// A uniformly random eligible row id (independent across calls).
    /// `None` if no row is eligible.
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        if self.eligible == 0 {
            return None;
        }
        let k = rng.gen_range(0..self.eligible);
        self.bitmap.select(k)
    }

    /// The next row of a uniformly random permutation of the eligible rows.
    /// `None` once every eligible row has been produced.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        if self.drawn == self.eligible {
            return None;
        }
        // Virtual Fisher–Yates over logical indices [drawn, eligible).
        let j = rng.gen_range(self.drawn..self.eligible);
        let chosen = self.logical(j);
        let displaced = self.logical(self.drawn);
        // Swap: slot j now holds what slot `drawn` held.
        self.swaps.insert(j, displaced);
        self.swaps.remove(self.drawn);
        self.drawn += 1;
        self.bitmap.select(chosen)
    }

    /// Draws `n` rows with replacement in one batch, appending them to
    /// `out` in draw order; returns the number appended (always `n` unless
    /// the bitmap is empty, in which case `0`).
    ///
    /// Generates all `n` ranks, resolves them through one sorted
    /// [`Bitmap::select_many`] sweep, and unsorts the results. For a fixed
    /// seed the appended rows are identical to `n` calls of
    /// [`Self::sample_with_replacement`].
    pub fn sample_batch_with_replacement<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) -> usize {
        if self.eligible == 0 || n == 0 {
            return 0;
        }
        let ranks: Vec<u64> = (0..n).map(|_| rng.gen_range(0..self.eligible)).collect();
        resolve_in_draw_order(&self.bitmap, ranks, out);
        n
    }

    /// Draws up to `n` further rows of the without-replacement permutation
    /// in one batch, appending them to `out` in draw order; returns the
    /// number appended (`< n` once the population runs dry).
    ///
    /// The virtual Fisher–Yates state advances exactly as under repeated
    /// [`Self::sample_without_replacement`] calls and the RNG is consumed
    /// identically, so for a fixed seed the appended rows are the same
    /// stream — only the rank→position resolution is batched through
    /// [`Bitmap::select_many`].
    pub fn sample_batch_without_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) -> usize {
        let take = n.min((self.eligible - self.drawn) as usize);
        if take == 0 {
            return 0;
        }
        let mut ranks = Vec::with_capacity(take);
        self.swaps.reserve(take);
        for _ in 0..take {
            let j = rng.gen_range(self.drawn..self.eligible);
            let chosen = self.logical(j);
            let displaced = self.logical(self.drawn);
            self.swaps.insert(j, displaced);
            self.swaps.remove(self.drawn);
            self.drawn += 1;
            ranks.push(chosen);
        }
        resolve_in_draw_order(&self.bitmap, ranks, out);
        take
    }

    /// Resets the without-replacement permutation (a fresh shuffle).
    pub fn reset(&mut self) {
        self.swaps.clear();
        self.drawn = 0;
    }

    fn logical(&self, slot: u64) -> u64 {
        self.swaps.get(slot).unwrap_or(slot)
    }
}

/// Resolves `ranks` (in draw order) against `bitmap` via one sorted
/// `select_many` sweep, appending positions to `out` in the original draw
/// order.
///
/// When ranks and batch size fit (rank < 2^44, batch < 2^20 — any realistic
/// workload), rank and draw index are packed into a single `u64`
/// (`rank << 20 | index`) so the sort runs over plain words: markedly
/// faster than sorting `(u64, u32)` pairs. Oversized inputs fall back to
/// the pair sort.
fn resolve_in_draw_order(bitmap: &Bitmap, mut ranks: Vec<u64>, out: &mut Vec<u64>) {
    const IDX_BITS: u32 = 20;
    let n = ranks.len();
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    let base = out.len();
    if n < (1 << IDX_BITS) && max_rank < (1 << (64 - IDX_BITS)) {
        for (i, r) in ranks.iter_mut().enumerate() {
            *r = (*r << IDX_BITS) | i as u64;
        }
        ranks.sort_unstable();
        let sorted: Vec<u64> = ranks.iter().map(|&p| p >> IDX_BITS).collect();
        let mut positions = Vec::with_capacity(n);
        bitmap.select_many(&sorted, &mut positions);
        out.resize(base + n, 0);
        let idx_mask = (1u64 << IDX_BITS) - 1;
        for (&packed, &pos) in ranks.iter().zip(&positions) {
            out[base + (packed & idx_mask) as usize] = pos;
        }
    } else {
        let mut order: Vec<(u64, u64)> = ranks.into_iter().zip(0..).collect();
        order.sort_unstable();
        let sorted: Vec<u64> = order.iter().map(|&(r, _)| r).collect();
        let mut positions = Vec::with_capacity(n);
        bitmap.select_many(&sorted, &mut positions);
        out.resize(base + n, 0);
        for (&(_, idx), &pos) in order.iter().zip(&positions) {
            out[base + idx as usize] = pos;
        }
    }
}

/// A sampler that pairs each group-member draw with an unbiased estimate of
/// the group's normalized size (Algorithm 5 support).
#[derive(Debug, Clone)]
pub struct SizeEstimatingSampler {
    inner: BitmapSampler,
    table_rows: u64,
}

impl SizeEstimatingSampler {
    /// Creates the sampler; `table_rows` is the total relation size `N`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap is longer than the stated table size.
    #[must_use]
    pub fn new(bitmap: Bitmap, table_rows: u64) -> Self {
        assert!(
            bitmap.len() <= table_rows,
            "bitmap length {} exceeds the relation size {table_rows}",
            bitmap.len()
        );
        Self {
            inner: BitmapSampler::new(bitmap),
            table_rows,
        }
    }

    /// Number of eligible rows (the true `n_i`; exposed for verification —
    /// the estimating path never consults it).
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.inner.eligible()
    }

    /// Draws `(row, z)`: a uniform random group member and an independent
    /// unbiased estimate `z ∈ {0, 1}` of the normalized group size
    /// `s_i = n_i / N`.
    pub fn sample_with_size_estimate<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(u64, f64)> {
        let row = self.inner.sample_with_replacement(rng)?;
        let probe = rng.gen_range(0..self.table_rows);
        let z = if probe < self.inner.bitmap().len() && self.inner.bitmap().get(probe) {
            1.0
        } else {
            0.0
        };
        Some((row, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bitmap(positions: &[u64], len: u64) -> Bitmap {
        Bitmap::from_sorted_positions(positions, len)
    }

    #[test]
    fn with_replacement_only_eligible_rows() {
        let positions = vec![2, 5, 7, 11];
        let s = BitmapSampler::new(bitmap(&positions, 16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let row = s.sample_with_replacement(&mut rng).unwrap();
            assert!(positions.contains(&row), "sampled ineligible row {row}");
        }
    }

    #[test]
    fn with_replacement_roughly_uniform() {
        let positions: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let s = BitmapSampler::new(bitmap(&positions, 30));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts
                .entry(s.sample_with_replacement(&mut rng).unwrap())
                .or_insert(0u32) += 1;
        }
        let expected = draws as f64 / positions.len() as f64;
        for &p in &positions {
            let c = f64::from(counts[&p]);
            assert!(
                (c - expected).abs() < 0.15 * expected,
                "count for {p} was {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn without_replacement_is_a_permutation() {
        let positions: Vec<u64> = vec![1, 4, 9, 16, 25, 36, 49];
        let mut s = BitmapSampler::new(bitmap(&positions, 64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        assert_eq!(s.remaining(), 0);
        seen.sort_unstable();
        assert_eq!(seen, positions, "must produce each eligible row once");
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn without_replacement_first_draw_uniform() {
        let positions: Vec<u64> = (0..8).collect();
        let mut counts = [0u32; 8];
        for seed in 0..4000 {
            let mut s = BitmapSampler::new(bitmap(&positions, 8));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let row = s.sample_without_replacement(&mut rng).unwrap();
            counts[row as usize] += 1;
        }
        let expected = 4000.0 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() < 0.25 * expected,
                "first-draw count for {i} was {c}"
            );
        }
    }

    #[test]
    fn reset_restores_full_population() {
        let positions: Vec<u64> = vec![0, 2, 4];
        let mut s = BitmapSampler::new(bitmap(&positions, 6));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = s.sample_without_replacement(&mut rng);
        let _ = s.sample_without_replacement(&mut rng);
        assert_eq!(s.remaining(), 1);
        s.reset();
        assert_eq!(s.remaining(), 3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        seen.sort_unstable();
        assert_eq!(seen, positions);
    }

    #[test]
    fn empty_bitmap_yields_none() {
        let mut s = BitmapSampler::new(Bitmap::zeros(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(s.sample_with_replacement(&mut rng), None);
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn swap_memory_bounded_by_draws() {
        let positions: Vec<u64> = (0..10_000).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 10_000));
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = s.sample_without_replacement(&mut rng);
        }
        assert!(
            s.swaps.len() <= 100,
            "swap map grew past the number of draws: {}",
            s.swaps.len()
        );
    }

    #[test]
    fn size_estimate_is_unbiased() {
        // Group occupies 3000 of 10_000 rows: s_i = 0.3.
        let positions: Vec<u64> = (4000..7000).collect();
        let s = SizeEstimatingSampler::new(bitmap(&positions, 10_000), 10_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let draws = 30_000;
        let mut z_sum = 0.0;
        for _ in 0..draws {
            let (row, z) = s.sample_with_size_estimate(&mut rng).unwrap();
            assert!((4000..7000).contains(&row));
            z_sum += z;
        }
        let z_mean = z_sum / f64::from(draws);
        assert!(
            (z_mean - 0.3).abs() < 0.02,
            "E[z] should be ~0.3, got {z_mean}"
        );
    }

    #[test]
    fn size_estimate_empty_group() {
        let s = SizeEstimatingSampler::new(Bitmap::zeros(100), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(s.sample_with_size_estimate(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the relation size")]
    fn size_estimator_rejects_oversized_bitmap() {
        let _ = SizeEstimatingSampler::new(Bitmap::zeros(101), 100);
    }

    #[test]
    fn batch_with_replacement_matches_single_draw_stream() {
        let positions: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        let s = BitmapSampler::new(bitmap(&positions, 4000));
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(40);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(40);
        let singles: Vec<u64> = (0..137)
            .map(|_| s.sample_with_replacement(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s.sample_batch_with_replacement(137, &mut rng_batch, &mut batched);
        assert_eq!(got, 137);
        assert_eq!(batched, singles, "batch must replay the single-draw stream");
    }

    #[test]
    fn batch_without_replacement_matches_single_draw_stream() {
        let positions: Vec<u64> = (0..300).map(|i| i * 11).collect();
        let mut s1 = BitmapSampler::new(bitmap(&positions, 3300));
        let mut s2 = s1.clone();
        let mut rng_single = rand::rngs::StdRng::seed_from_u64(41);
        let mut rng_batch = rand::rngs::StdRng::seed_from_u64(41);
        let singles: Vec<u64> = (0..97)
            .map(|_| s1.sample_without_replacement(&mut rng_single).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = s2.sample_batch_without_replacement(97, &mut rng_batch, &mut batched);
        assert_eq!(got, 97);
        assert_eq!(batched, singles, "batch must replay the single-draw stream");
        assert_eq!(s1.remaining(), s2.remaining());
    }

    #[test]
    fn batch_without_replacement_truncates_at_exhaustion() {
        let positions: Vec<u64> = vec![1, 5, 9];
        let mut s = BitmapSampler::new(bitmap(&positions, 16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut out = Vec::new();
        let got = s.sample_batch_without_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 3);
        assert_eq!(s.remaining(), 0);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, positions);
        assert_eq!(s.sample_batch_without_replacement(4, &mut rng, &mut out), 0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn batch_on_empty_bitmap_appends_nothing() {
        let mut s = BitmapSampler::new(Bitmap::zeros(32));
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let mut out = Vec::new();
        assert_eq!(s.sample_batch_with_replacement(8, &mut rng, &mut out), 0);
        assert_eq!(s.sample_batch_without_replacement(8, &mut rng, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_interleaves_with_single_draws() {
        // Mixed single/batch usage continues one permutation.
        let positions: Vec<u64> = (0..64).map(|i| i * 2).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 128));
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut seen = Vec::new();
        seen.push(s.sample_without_replacement(&mut rng).unwrap());
        let mut out = Vec::new();
        s.sample_batch_without_replacement(30, &mut rng, &mut out);
        seen.extend_from_slice(&out);
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        seen.sort_unstable();
        assert_eq!(seen, positions, "mixed draws must still be a permutation");
    }

    #[test]
    fn batch_with_replacement_roughly_uniform() {
        let positions: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let s = BitmapSampler::new(bitmap(&positions, 30));
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let mut out = Vec::new();
        s.sample_batch_with_replacement(20_000, &mut rng, &mut out);
        let mut counts = std::collections::HashMap::new();
        for row in out {
            *counts.entry(row).or_insert(0u32) += 1;
        }
        let expected = 20_000.0 / positions.len() as f64;
        for &p in &positions {
            let c = f64::from(counts[&p]);
            assert!(
                (c - expected).abs() < 0.15 * expected,
                "count for {p} was {c}, expected ~{expected}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Without-replacement sampling is always a permutation of the
        /// eligible rows, for any bitmap and seed.
        #[test]
        fn permutation_property(
            positions in proptest::collection::btree_set(0u64..2000, 1..64),
            len_extra in 0u64..100,
            seed in 0u64..1000,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1 + len_extra;
            let mut s = BitmapSampler::new(Bitmap::from_sorted_positions(&positions, len));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = Vec::new();
            while let Some(row) = s.sample_without_replacement(&mut rng) {
                seen.push(row);
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, positions, "not a permutation: {:?}", seen);
        }

        /// Batched without-replacement draws over the full population are an
        /// exact permutation of the eligible rows, for any bitmap, seed, and
        /// batch size.
        #[test]
        fn batch_permutation_property(
            positions in proptest::collection::btree_set(0u64..2000, 1..64),
            len_extra in 0u64..100,
            seed in 0u64..1000,
            batch in 1usize..17,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1 + len_extra;
            let mut s = BitmapSampler::new(Bitmap::from_sorted_positions(&positions, len));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = Vec::new();
            loop {
                let got = s.sample_batch_without_replacement(batch, &mut rng, &mut seen);
                if got == 0 {
                    break;
                }
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, positions, "not a permutation: {:?}", seen);
        }

        /// Batched draws replay the single-draw stream exactly, in both
        /// regimes, for any bitmap/seed/batch split — so batching can never
        /// change an algorithm's output for a fixed seed.
        #[test]
        fn batch_equals_single_stream(
            positions in proptest::collection::btree_set(0u64..3000, 1..128),
            seed in 0u64..1000,
            n in 1usize..80,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1;
            let bm = Bitmap::from_sorted_positions(&positions, len);

            // With replacement.
            let s = BitmapSampler::new(bm.clone());
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
            let singles: Vec<u64> = (0..n)
                .map(|_| s.sample_with_replacement(&mut rng_a).unwrap())
                .collect();
            let mut batched = Vec::new();
            s.sample_batch_with_replacement(n, &mut rng_b, &mut batched);
            prop_assert_eq!(&batched, &singles);

            // Without replacement.
            let mut s1 = BitmapSampler::new(bm.clone());
            let mut s2 = BitmapSampler::new(bm);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
            let take = n.min(positions.len());
            let singles: Vec<u64> = (0..take)
                .map(|_| s1.sample_without_replacement(&mut rng_a).unwrap())
                .collect();
            let mut batched = Vec::new();
            let got = s2.sample_batch_without_replacement(n, &mut rng_b, &mut batched);
            prop_assert_eq!(got, take);
            prop_assert_eq!(&batched, &singles);
        }
    }
}
