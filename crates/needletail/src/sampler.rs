//! Random tuple sampling over an eligibility bitmap.
//!
//! The core retrieval primitive of NEEDLETAIL: given the bitmap of rows
//! matching a condition, return a *uniformly random* matching row id in
//! `O(log n)` via `select(random index)`.
//!
//! Two regimes are supported, matching §3.6:
//!
//! * **With replacement** — stateless: each draw is an independent uniform
//!   pick among the eligible rows.
//! * **Without replacement** — a *virtual Fisher–Yates shuffle*: the sampler
//!   tracks only the swaps it has performed (a hash map of displaced slots),
//!   so memory grows with the number of draws, not the group size, and every
//!   eligible row is produced exactly once over the sampler's lifetime.
//!
//! [`SizeEstimatingSampler`] additionally produces the unbiased group-size
//! estimate `z` needed by the unknown-group-size `SUM` algorithm
//! (Algorithm 5): along with a random group member `x`, it probes an
//! independent uniformly random *table position* and reports whether that
//! position belongs to the group — `E[z] = |S_i| / N`, the normalized group
//! size, and `x·z` stays in `[0, c]` exactly as §6.3.1 requires. The probe
//! is answered by the in-memory bitmap, so it costs no I/O.

use crate::bitmap::Bitmap;
use rand::Rng;
use std::collections::HashMap;

/// Uniform random sampler over the set bits of a bitmap.
#[derive(Debug, Clone)]
pub struct BitmapSampler {
    bitmap: Bitmap,
    eligible: u64,
    /// Virtual Fisher–Yates state: logical position -> displaced value.
    swaps: HashMap<u64, u64>,
    /// Draws made without replacement so far.
    drawn: u64,
}

impl BitmapSampler {
    /// Creates a sampler over the set bits of `bitmap`.
    #[must_use]
    pub fn new(bitmap: Bitmap) -> Self {
        let eligible = bitmap.count_ones();
        Self {
            bitmap,
            eligible,
            swaps: HashMap::new(),
            drawn: 0,
        }
    }

    /// Number of eligible rows.
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.eligible
    }

    /// Rows not yet produced by [`Self::sample_without_replacement`].
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.eligible - self.drawn
    }

    /// The underlying bitmap.
    #[must_use]
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// A uniformly random eligible row id (independent across calls).
    /// `None` if no row is eligible.
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        if self.eligible == 0 {
            return None;
        }
        let k = rng.gen_range(0..self.eligible);
        self.bitmap.select(k)
    }

    /// The next row of a uniformly random permutation of the eligible rows.
    /// `None` once every eligible row has been produced.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u64> {
        if self.drawn == self.eligible {
            return None;
        }
        // Virtual Fisher–Yates over logical indices [drawn, eligible).
        let j = rng.gen_range(self.drawn..self.eligible);
        let chosen = self.logical(j);
        let displaced = self.logical(self.drawn);
        // Swap: slot j now holds what slot `drawn` held.
        self.swaps.insert(j, displaced);
        self.swaps.remove(&self.drawn);
        self.drawn += 1;
        self.bitmap.select(chosen)
    }

    /// Resets the without-replacement permutation (a fresh shuffle).
    pub fn reset(&mut self) {
        self.swaps.clear();
        self.drawn = 0;
    }

    fn logical(&self, slot: u64) -> u64 {
        *self.swaps.get(&slot).unwrap_or(&slot)
    }
}

/// A sampler that pairs each group-member draw with an unbiased estimate of
/// the group's normalized size (Algorithm 5 support).
#[derive(Debug, Clone)]
pub struct SizeEstimatingSampler {
    inner: BitmapSampler,
    table_rows: u64,
}

impl SizeEstimatingSampler {
    /// Creates the sampler; `table_rows` is the total relation size `N`.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap is longer than the stated table size.
    #[must_use]
    pub fn new(bitmap: Bitmap, table_rows: u64) -> Self {
        assert!(
            bitmap.len() <= table_rows || bitmap.len() == table_rows,
            "bitmap cannot exceed the relation"
        );
        Self {
            inner: BitmapSampler::new(bitmap),
            table_rows,
        }
    }

    /// Number of eligible rows (the true `n_i`; exposed for verification —
    /// the estimating path never consults it).
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.inner.eligible()
    }

    /// Draws `(row, z)`: a uniform random group member and an independent
    /// unbiased estimate `z ∈ {0, 1}` of the normalized group size
    /// `s_i = n_i / N`.
    pub fn sample_with_size_estimate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(u64, f64)> {
        let row = self.inner.sample_with_replacement(rng)?;
        let probe = rng.gen_range(0..self.table_rows);
        let z = if probe < self.inner.bitmap().len() && self.inner.bitmap().get(probe) {
            1.0
        } else {
            0.0
        };
        Some((row, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bitmap(positions: &[u64], len: u64) -> Bitmap {
        Bitmap::from_sorted_positions(positions, len)
    }

    #[test]
    fn with_replacement_only_eligible_rows() {
        let positions = vec![2, 5, 7, 11];
        let s = BitmapSampler::new(bitmap(&positions, 16));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let row = s.sample_with_replacement(&mut rng).unwrap();
            assert!(positions.contains(&row), "sampled ineligible row {row}");
        }
    }

    #[test]
    fn with_replacement_roughly_uniform() {
        let positions: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let s = BitmapSampler::new(bitmap(&positions, 30));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts
                .entry(s.sample_with_replacement(&mut rng).unwrap())
                .or_insert(0u32) += 1;
        }
        let expected = draws as f64 / positions.len() as f64;
        for &p in &positions {
            let c = f64::from(counts[&p]);
            assert!(
                (c - expected).abs() < 0.15 * expected,
                "count for {p} was {c}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn without_replacement_is_a_permutation() {
        let positions: Vec<u64> = vec![1, 4, 9, 16, 25, 36, 49];
        let mut s = BitmapSampler::new(bitmap(&positions, 64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        assert_eq!(s.remaining(), 0);
        seen.sort_unstable();
        assert_eq!(seen, positions, "must produce each eligible row once");
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn without_replacement_first_draw_uniform() {
        let positions: Vec<u64> = (0..8).collect();
        let mut counts = [0u32; 8];
        for seed in 0..4000 {
            let mut s = BitmapSampler::new(bitmap(&positions, 8));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let row = s.sample_without_replacement(&mut rng).unwrap();
            counts[row as usize] += 1;
        }
        let expected = 4000.0 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() < 0.25 * expected,
                "first-draw count for {i} was {c}"
            );
        }
    }

    #[test]
    fn reset_restores_full_population() {
        let positions: Vec<u64> = vec![0, 2, 4];
        let mut s = BitmapSampler::new(bitmap(&positions, 6));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = s.sample_without_replacement(&mut rng);
        let _ = s.sample_without_replacement(&mut rng);
        assert_eq!(s.remaining(), 1);
        s.reset();
        assert_eq!(s.remaining(), 3);
        let mut seen = Vec::new();
        while let Some(row) = s.sample_without_replacement(&mut rng) {
            seen.push(row);
        }
        seen.sort_unstable();
        assert_eq!(seen, positions);
    }

    #[test]
    fn empty_bitmap_yields_none() {
        let mut s = BitmapSampler::new(Bitmap::zeros(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(s.sample_with_replacement(&mut rng), None);
        assert_eq!(s.sample_without_replacement(&mut rng), None);
    }

    #[test]
    fn swap_memory_bounded_by_draws() {
        let positions: Vec<u64> = (0..10_000).collect();
        let mut s = BitmapSampler::new(bitmap(&positions, 10_000));
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = s.sample_without_replacement(&mut rng);
        }
        assert!(
            s.swaps.len() <= 100,
            "swap map grew past the number of draws: {}",
            s.swaps.len()
        );
    }

    #[test]
    fn size_estimate_is_unbiased() {
        // Group occupies 3000 of 10_000 rows: s_i = 0.3.
        let positions: Vec<u64> = (4000..7000).collect();
        let s = SizeEstimatingSampler::new(bitmap(&positions, 10_000), 10_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let draws = 30_000;
        let mut z_sum = 0.0;
        for _ in 0..draws {
            let (row, z) = s.sample_with_size_estimate(&mut rng).unwrap();
            assert!((4000..7000).contains(&row));
            z_sum += z;
        }
        let z_mean = z_sum / f64::from(draws);
        assert!(
            (z_mean - 0.3).abs() < 0.02,
            "E[z] should be ~0.3, got {z_mean}"
        );
    }

    #[test]
    fn size_estimate_empty_group() {
        let s = SizeEstimatingSampler::new(Bitmap::zeros(100), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        assert_eq!(s.sample_with_size_estimate(&mut rng), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Without-replacement sampling is always a permutation of the
        /// eligible rows, for any bitmap and seed.
        #[test]
        fn permutation_property(
            positions in proptest::collection::btree_set(0u64..2000, 1..64),
            len_extra in 0u64..100,
            seed in 0u64..1000,
        ) {
            let positions: Vec<u64> = positions.into_iter().collect();
            let len = positions.last().unwrap() + 1 + len_extra;
            let mut s = BitmapSampler::new(Bitmap::from_sorted_positions(&positions, len));
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut seen = Vec::new();
            while let Some(row) = s.sample_without_replacement(&mut rng) {
                seen.push(row);
            }
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, positions, "not a permutation: {:?}", seen);
        }
    }
}
