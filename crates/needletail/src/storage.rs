//! Binary table persistence.
//!
//! A compact little-endian on-disk format so loaded relations survive
//! process restarts without re-ingesting CSV:
//!
//! ```text
//! magic "NTBL" | version u32 | arity u32 | row_count u64
//! per column: name_len u32 | name bytes | type u8
//! per column payload:
//!   Int/Float: row_count * 8 bytes
//!   Str:       dict_len u32 | (len u32 | bytes)* | row_count * 4 code bytes
//! trailer: fnv1a-64 checksum of everything before it
//! ```
//!
//! The reader validates magic, version, and checksum before constructing
//! the table, so truncated or corrupted files fail loudly instead of
//! producing silently wrong aggregates.

use crate::schema::{ColumnDef, DataType, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"NTBL";
const VERSION: u32 = 1;

/// Errors from the binary codec.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a table file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Checksum mismatch: the file is corrupt or truncated.
    Corrupt,
    /// Structurally invalid content (e.g. dictionary code out of range).
    Malformed(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::BadMagic => write!(f, "not a NEEDLETAIL table file"),
            StorageError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::Corrupt => write!(f, "checksum mismatch (corrupt or truncated file)"),
            StorageError::Malformed(what) => write!(f, "malformed table file: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// FNV-1a 64-bit rolling checksum.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Writer that checksums everything it emits.
struct CheckedWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> CheckedWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
}

/// Reader that checksums everything it consumes.
struct CheckedReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> CheckedReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }

    fn take(&mut self, buf: &mut [u8]) -> Result<(), StorageError> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }

    fn take_u32(&mut self) -> Result<u32, StorageError> {
        let mut b = [0u8; 4];
        self.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn take_u64(&mut self) -> Result<u64, StorageError> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

/// Serializes a table to any writer.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_table<W: Write>(table: &Table, writer: W) -> Result<(), StorageError> {
    let mut w = CheckedWriter::new(writer);
    w.put(MAGIC)?;
    w.put_u32(VERSION)?;
    let arity =
        u32::try_from(table.schema().arity()).map_err(|_| StorageError::Malformed("arity"))?;
    w.put_u32(arity)?;
    w.put_u64(table.row_count())?;
    for col in table.schema().columns() {
        let name_len =
            u32::try_from(col.name.len()).map_err(|_| StorageError::Malformed("column name"))?;
        w.put_u32(name_len)?;
        w.put(col.name.as_bytes())?;
        w.put(&[type_tag(col.data_type)])?;
    }
    for (c, col) in table.schema().columns().iter().enumerate() {
        match col.data_type {
            DataType::Int => {
                for row in 0..table.row_count() {
                    let Value::Int(v) = table.value(row, c) else {
                        unreachable!("schema says Int");
                    };
                    w.put(&v.to_le_bytes())?;
                }
            }
            DataType::Float => {
                for row in 0..table.row_count() {
                    w.put(&table.float_value(row, c).to_le_bytes())?;
                }
            }
            DataType::Str => {
                let dict = table.str_dict(c);
                let dict_len = u32::try_from(dict.len())
                    .map_err(|_| StorageError::Malformed("dictionary size"))?;
                w.put_u32(dict_len)?;
                for entry in dict {
                    let entry_len = u32::try_from(entry.len())
                        .map_err(|_| StorageError::Malformed("dictionary entry"))?;
                    w.put_u32(entry_len)?;
                    w.put(entry.as_bytes())?;
                }
                for row in 0..table.row_count() {
                    w.put_u32(table.str_code(row, c))?;
                }
            }
        }
    }
    let checksum = w.hash.0;
    w.inner.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

/// Deserializes a table from any reader, verifying the checksum.
///
/// # Errors
///
/// Returns a [`StorageError`] on I/O failure, format mismatch, or
/// corruption.
pub fn read_table<R: Read>(reader: R) -> Result<Table, StorageError> {
    let mut r = CheckedReader::new(reader);
    let mut magic = [0u8; 4];
    r.take(&mut magic)?;
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = r.take_u32()?;
    if version != VERSION {
        return Err(StorageError::BadVersion(version));
    }
    let arity = r.take_u32()? as usize;
    let row_count = r.take_u64()?;
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name_len = r.take_u32()? as usize;
        let mut name = vec![0u8; name_len];
        r.take(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| StorageError::Malformed("column name utf8"))?;
        let mut tag = [0u8; 1];
        r.take(&mut tag)?;
        columns.push(ColumnDef::new(name, tag_type(tag[0])?));
    }
    let schema = Schema::new(columns);

    // Column payloads arrive column-major; buffer then re-emit row-major
    // through the builder (simplest correct path; load is not a hot path).
    enum Payload {
        Int(Vec<i64>),
        Float(Vec<f64>),
        Str(Vec<String>),
    }
    let mut payloads = Vec::with_capacity(schema.arity());
    for col in schema.columns() {
        match col.data_type {
            DataType::Int => {
                let mut v = Vec::with_capacity(row_count as usize);
                for _ in 0..row_count {
                    let mut b = [0u8; 8];
                    r.take(&mut b)?;
                    v.push(i64::from_le_bytes(b));
                }
                payloads.push(Payload::Int(v));
            }
            DataType::Float => {
                let mut v = Vec::with_capacity(row_count as usize);
                for _ in 0..row_count {
                    let mut b = [0u8; 8];
                    r.take(&mut b)?;
                    let f = f64::from_le_bytes(b);
                    if f.is_nan() {
                        return Err(StorageError::Malformed("NaN float"));
                    }
                    v.push(f);
                }
                payloads.push(Payload::Float(v));
            }
            DataType::Str => {
                let dict_len = r.take_u32()? as usize;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    let len = r.take_u32()? as usize;
                    let mut bytes = vec![0u8; len];
                    r.take(&mut bytes)?;
                    dict.push(
                        String::from_utf8(bytes)
                            .map_err(|_| StorageError::Malformed("dict entry utf8"))?,
                    );
                }
                let mut v = Vec::with_capacity(row_count as usize);
                for _ in 0..row_count {
                    let code = r.take_u32()? as usize;
                    let entry = dict
                        .get(code)
                        .ok_or(StorageError::Malformed("dictionary code out of range"))?;
                    v.push(entry.clone());
                }
                payloads.push(Payload::Str(v));
            }
        }
    }
    let computed = r.hash.0;
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != computed {
        return Err(StorageError::Corrupt);
    }

    let mut builder = TableBuilder::new(schema);
    for row in 0..row_count as usize {
        let mut values = Vec::with_capacity(payloads.len());
        for payload in &payloads {
            values.push(match payload {
                Payload::Int(v) => Value::Int(v[row]),
                Payload::Float(v) => Value::Float(v[row]),
                Payload::Str(v) => Value::Str(v[row].clone()),
            });
        }
        builder.push_row(values);
    }
    Ok(builder.finish())
}

fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    }
}

fn tag_type(tag: u8) -> Result<DataType, StorageError> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        _ => Err(StorageError::Malformed("unknown type tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
            ColumnDef::new("year", DataType::Int),
        ]));
        for (n, d, y) in [
            ("AA", 30.5, 2008i64),
            ("JB", 15.0, 2008),
            ("AA", -3.25, 2007),
            ("ÜberAir", 1e9, 1999),
        ] {
            b.push_row(vec![n.into(), d.into(), Value::Int(y)]);
        }
        b.finish()
    }

    fn roundtrip(table: &Table) -> Vec<u8> {
        let mut buf = Vec::new();
        write_table(table, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample_table();
        let bytes = roundtrip(&t);
        let back = read_table(bytes.as_slice()).unwrap();
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.row_count(), t.row_count());
        for row in 0..t.row_count() {
            for c in 0..t.schema().arity() {
                assert_eq!(back.value(row, c), t.value(row, c), "cell ({row}, {c})");
            }
        }
        // Dictionary structure survives too.
        assert_eq!(back.str_dict(0), t.str_dict(0));
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = TableBuilder::new(Schema::new(vec![ColumnDef::new("x", DataType::Int)])).finish();
        let bytes = roundtrip(&t);
        let back = read_table(bytes.as_slice()).unwrap();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.schema().arity(), 1);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = roundtrip(&sample_table());
        bytes[0] = b'X';
        assert!(matches!(
            read_table(bytes.as_slice()),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = roundtrip(&sample_table());
        bytes[4] = 99;
        assert!(matches!(
            read_table(bytes.as_slice()),
            Err(StorageError::BadVersion(99))
        ));
    }

    #[test]
    fn bit_flip_detected() {
        let mut bytes = roundtrip(&sample_table());
        // Flip a payload byte (past the header).
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x40;
        let err = read_table(bytes.as_slice());
        assert!(
            matches!(err, Err(StorageError::Corrupt | StorageError::Malformed(_))),
            "corruption slipped through: {err:?}"
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = roundtrip(&sample_table());
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(
            read_table(cut),
            Err(StorageError::Io(_) | StorageError::Corrupt)
        ));
    }

    #[test]
    fn engine_works_on_reloaded_table() {
        use crate::engine::NeedleTail;
        use crate::predicate::Predicate;
        let bytes = roundtrip(&sample_table());
        let back = read_table(bytes.as_slice()).unwrap();
        let engine = NeedleTail::new(back, &["name"]).unwrap();
        let aggs = engine.scan("name", "delay", &Predicate::True).unwrap();
        let aa = aggs.iter().find(|a| a.group.to_string() == "AA").unwrap();
        assert_eq!(aa.count, 2);
        assert!((aa.mean().unwrap() - 13.625).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(StorageError::BadMagic.to_string().contains("NEEDLETAIL"));
        assert!(StorageError::Corrupt.to_string().contains("checksum"));
        assert!(StorageError::BadVersion(7).to_string().contains('7'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any table of random rows survives a write/read round trip
        /// bit-for-bit.
        #[test]
        fn roundtrip_arbitrary_tables(
            rows in proptest::collection::vec(
                (0usize..4, -1.0e12f64..1.0e12, proptest::num::i64::ANY),
                0..200,
            ),
        ) {
            let mut b = TableBuilder::new(Schema::new(vec![
                ColumnDef::new("g", DataType::Str),
                ColumnDef::new("x", DataType::Float),
                ColumnDef::new("n", DataType::Int),
            ]));
            for &(g, x, n) in &rows {
                b.push_row(vec![
                    Value::Str(format!("group-{g}")),
                    Value::Float(x),
                    Value::Int(n),
                ]);
            }
            let table = b.finish();
            let mut buf = Vec::new();
            write_table(&table, &mut buf).unwrap();
            let back = read_table(buf.as_slice()).unwrap();
            prop_assert_eq!(back.row_count(), table.row_count());
            for row in 0..table.row_count() {
                for c in 0..3 {
                    prop_assert_eq!(back.value(row, c), table.value(row, c));
                }
            }
        }

        /// Flipping any single payload byte is detected (checksum or
        /// structural validation) — never silently accepted with different
        /// content.
        #[test]
        fn any_single_bitflip_detected(flip_at in 12usize..500, bit in 0u8..8) {
            let mut b = TableBuilder::new(Schema::new(vec![
                ColumnDef::new("g", DataType::Str),
                ColumnDef::new("x", DataType::Float),
            ]));
            for i in 0..40 {
                b.push_row(vec![
                    Value::Str(format!("g{}", i % 3)),
                    Value::Float(f64::from(i)),
                ]);
            }
            let table = b.finish();
            let mut bytes = Vec::new();
            write_table(&table, &mut bytes).unwrap();
            let idx = flip_at % bytes.len();
            bytes[idx] ^= 1 << bit;
            match read_table(bytes.as_slice()) {
                Err(_) => {} // detected: good
                Ok(back) => {
                    // The flip hit the checksum trailer itself is impossible
                    // (then the checksum check fails); acceptance with
                    // identical content is also impossible since a bit
                    // changed upstream of the trailer... so any Ok here is
                    // a silent corruption.
                    let same = (0..table.row_count()).all(|r| {
                        (0..2).all(|c| back.value(r, c) == table.value(r, c))
                    });
                    prop_assert!(!same || idx >= bytes.len() - 8,
                        "silent corruption at byte {idx} bit {bit}");
                    prop_assert!(idx >= bytes.len() - 8 || !same);
                }
            }
        }
    }
}
