//! Composite (multi-attribute) bitmap indexes — §6.3.4's "joint index on
//! X and Z".
//!
//! For `GROUP BY X, Z` the engine can serve per-cell samplers straight
//! from one index over the attribute *pair*: each distinct `(x, z)`
//! combination maps to the bitmap of rows matching both. Equivalent to
//! intersecting two single-attribute bitmaps per probe, but built in one
//! pass and probed in one lookup.

use crate::bitmap::{Bitmap, DenseBitmap};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Totally ordered composite key (string form is sufficient because the
/// engine only builds composites over group-by attributes, which are
/// categorical; numeric group-by values order by their display form within
/// one column's entries of equal type).
type Key = Vec<String>;

/// A bitmap index over a tuple of columns. Per-cell bitmaps are held
/// behind [`Arc`] so plan-cache entries and samplers share them zero-copy
/// (see [`crate::index::BitmapIndex`]).
#[derive(Debug, Clone)]
pub struct CompositeIndex {
    columns: Vec<String>,
    len: u64,
    entries: BTreeMap<Key, (Vec<Value>, Arc<Bitmap>)>,
}

impl CompositeIndex {
    /// Builds the index over the given columns in one table pass.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or any column is missing.
    #[must_use]
    pub fn build(table: &Table, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                table
                    .schema()
                    .column_index(c)
                    // lint: allow(panic) — documented `# Panics` precondition
                    // of the joint-index builder, hit at build time with a
                    // caller-supplied column list, never while answering
                    .unwrap_or_else(|| panic!("no column named {c:?}"))
            })
            .collect();
        let len = table.row_count();
        let mut positions: BTreeMap<Key, (Vec<Value>, Vec<u64>)> = BTreeMap::new();
        for row in 0..len {
            let values: Vec<Value> = idxs.iter().map(|&c| table.value(row, c)).collect();
            let key: Key = values.iter().map(ToString::to_string).collect();
            positions
                .entry(key)
                .or_insert_with(|| (values, Vec::new()))
                .1
                .push(row);
        }
        let entries = positions
            .into_iter()
            .map(|(key, (values, rows))| {
                let bm = Bitmap::Dense(DenseBitmap::from_sorted_positions(&rows, len)).optimize();
                (key, (values, Arc::new(bm)))
            })
            .collect();
        Self {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            len,
            entries,
        }
    }

    /// The indexed column names.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows covered.
    #[must_use]
    pub fn row_count(&self) -> u64 {
        self.len
    }

    /// Number of distinct cells (present combinations only — absent
    /// combinations of the cross product take no space).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.entries.len()
    }

    /// The distinct cells, each as its value tuple, in key order.
    #[must_use]
    pub fn cells(&self) -> Vec<Vec<Value>> {
        self.entries.values().map(|(v, _)| v.clone()).collect()
    }

    /// The bitmap of rows matching the given value tuple exactly.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity differs from the index's.
    #[must_use]
    pub fn bitmap_for(&self, values: &[Value]) -> Option<&Bitmap> {
        self.shared_bitmap_for(values).map(Arc::as_ref)
    }

    /// The shared handle to a cell's bitmap — the zero-copy path samplers
    /// and plan-cache entries use.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity differs from the index's.
    #[must_use]
    pub fn shared_bitmap_for(&self, values: &[Value]) -> Option<&Arc<Bitmap>> {
        assert_eq!(values.len(), self.columns.len(), "tuple arity mismatch");
        let key: Key = values.iter().map(ToString::to_string).collect();
        self.entries.get(&key).map(|(_, bm)| bm)
    }

    /// Number of rows in a cell (0 if absent).
    #[must_use]
    pub fn cardinality_of(&self, values: &[Value]) -> u64 {
        self.bitmap_for(values).map_or(0, Bitmap::count_ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::BitmapIndex;
    use crate::schema::{ColumnDef, DataType, Schema};
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("origin", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        let rows = [
            ("AA", "BOS", 30.0),
            ("AA", "SFO", 20.0),
            ("JB", "BOS", 15.0),
            ("AA", "BOS", 40.0),
            ("JB", "SFO", 25.0),
            ("JB", "BOS", 10.0),
        ];
        for (n, o, d) in rows {
            b.push_row(vec![n.into(), o.into(), d.into()]);
        }
        b.finish()
    }

    #[test]
    fn cells_partition_rows() {
        let t = table();
        let idx = CompositeIndex::build(&t, &["name", "origin"]);
        assert_eq!(idx.cell_count(), 4, "AA/JB x BOS/SFO all present");
        let total: u64 = idx
            .cells()
            .iter()
            .map(|cell| idx.cardinality_of(cell))
            .sum();
        assert_eq!(total, t.row_count());
        assert_eq!(idx.cardinality_of(&["AA".into(), "BOS".into()]), 2);
        assert_eq!(
            idx.bitmap_for(&["AA".into(), "BOS".into()])
                .unwrap()
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn matches_intersection_of_single_indexes() {
        let t = table();
        let joint = CompositeIndex::build(&t, &["name", "origin"]);
        let by_name = BitmapIndex::build(&t, "name");
        let by_origin = BitmapIndex::build(&t, "origin");
        for cell in joint.cells() {
            let a = by_name.bitmap_for(&cell[0]).unwrap();
            let b = by_origin.bitmap_for(&cell[1]).unwrap();
            let expect: Vec<u64> = a.and(b).iter_ones().collect();
            let got: Vec<u64> = joint.bitmap_for(&cell).unwrap().iter_ones().collect();
            assert_eq!(got, expect, "cell {cell:?}");
        }
    }

    #[test]
    fn absent_cell_is_empty() {
        let t = table();
        let idx = CompositeIndex::build(&t, &["name", "origin"]);
        assert_eq!(idx.cardinality_of(&["ZZ".into(), "BOS".into()]), 0);
        assert!(idx.bitmap_for(&["ZZ".into(), "BOS".into()]).is_none());
    }

    #[test]
    fn single_column_degenerates_to_plain_index() {
        let t = table();
        let joint = CompositeIndex::build(&t, &["name"]);
        let plain = BitmapIndex::build(&t, "name");
        assert_eq!(joint.cell_count(), plain.distinct_count());
        for cell in joint.cells() {
            assert_eq!(joint.cardinality_of(&cell), plain.cardinality_of(&cell[0]));
        }
    }

    #[test]
    fn mixed_type_composite() {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("bucket", DataType::Int),
            ColumnDef::new("y", DataType::Float),
        ]));
        for (g, k, y) in [
            ("a", 1i64, 1.0),
            ("a", 2, 2.0),
            ("b", 1, 3.0),
            ("a", 1, 4.0),
        ] {
            b.push_row(vec![g.into(), Value::Int(k), y.into()]);
        }
        let idx = CompositeIndex::build(&b.finish(), &["g", "bucket"]);
        assert_eq!(idx.cell_count(), 3);
        assert_eq!(idx.cardinality_of(&["a".into(), Value::Int(1)]), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity_probe() {
        let idx = CompositeIndex::build(&table(), &["name", "origin"]);
        let _ = idx.bitmap_for(&["AA".into()]);
    }
}
