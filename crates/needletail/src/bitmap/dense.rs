//! Dense bitvector with a two-level superblock rank directory.
//!
//! Layout: bits are packed little-endian into `u64` words; every
//! [`WORDS_PER_SUPERBLOCK`] words a cumulative one-count is recorded, and an
//! upper directory summarizes every [`SUPERBLOCKS_PER_L2`]-th superblock
//! (the "hierarchical" organization §4 describes). `rank` reads one
//! directory entry plus at most a superblock of words. `select` binary
//! searches the small upper directory and then a 64-entry superblock
//! window, then resolves within one word by branch-free broadword
//! arithmetic ([`select_in_word`]).
//!
//! Batched queries use [`DenseBitmap::select_many`]: a sorted batch of
//! ranks is resolved in a single monotone pass whose cursor only moves
//! forward — `O(b + log n)` directory work for clustered batches versus
//! `b` independent `O(log n)` binary searches, with far better locality.

/// Words per rank-directory superblock (512 bits each).
const WORDS_PER_SUPERBLOCK: usize = 8;
/// Bits per superblock.
const BITS_PER_SUPERBLOCK: u64 = (WORDS_PER_SUPERBLOCK as u64) * 64;
/// Superblocks summarized per upper-directory block (32768 bits each).
const SUPERBLOCKS_PER_L2: usize = 64;

/// A dense bitvector over positions `0..len` with `O(1)` rank and
/// `O(log n)` select.
///
/// The rank directory is two-level (the hierarchical organization §4
/// describes): `super_ranks` records cumulative ones every 512 bits, and
/// `l2_ranks` summarizes every 64th superblock. Select queries binary
/// search the small upper directory (which stays cache-resident even for
/// multi-hundred-million-row bitmaps) and then only a 64-entry window of
/// the lower one — bounding the cache lines a cold select touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBitmap {
    len: u64,
    words: Vec<u64>,
    /// `super_ranks[s]` = number of ones in words `[0, s*WORDS_PER_SUPERBLOCK)`.
    super_ranks: Vec<u64>,
    /// `l2_ranks[b]` = number of ones before superblock `b*SUPERBLOCKS_PER_L2`
    /// (one extra entry = total).
    l2_ranks: Vec<u64>,
    count_ones: u64,
}

impl DenseBitmap {
    /// An all-zeros bitmap of the given length.
    #[must_use]
    pub fn zeros(len: u64) -> Self {
        let words = vec![0u64; Self::word_count(len)];
        Self::from_words(words, len)
    }

    /// An all-ones bitmap of the given length.
    #[must_use]
    pub fn ones(len: u64) -> Self {
        let n_words = Self::word_count(len);
        let mut words = vec![u64::MAX; n_words];
        Self::mask_tail(&mut words, len);
        Self::from_words(words, len)
    }

    /// Builds from strictly increasing set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or `>= len`.
    #[must_use]
    pub fn from_sorted_positions(positions: &[u64], len: u64) -> Self {
        let mut words = vec![0u64; Self::word_count(len)];
        let mut prev: Option<u64> = None;
        for &p in positions {
            assert!(p < len, "position {p} out of range (len {len})");
            if let Some(q) = prev {
                assert!(p > q, "positions must be strictly increasing");
            }
            words[(p / 64) as usize] |= 1u64 << (p % 64);
            prev = Some(p);
        }
        Self::from_words(words, len)
    }

    /// Builds from a boolean slice.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let len = bits.len() as u64;
        let mut words = vec![0u64; Self::word_count(len)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self::from_words(words, len)
    }

    /// Builds from raw words (tail bits beyond `len` are cleared) and
    /// computes the rank directory.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: u64) -> Self {
        let needed = Self::word_count(len);
        assert!(
            words.len() >= needed,
            "word vector too short for length {len}"
        );
        words.truncate(needed);
        Self::mask_tail(&mut words, len);
        let n_super = words.len().div_ceil(WORDS_PER_SUPERBLOCK);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut running = 0u64;
        for s in 0..=n_super {
            super_ranks.push(running);
            if s < n_super {
                let start = s * WORDS_PER_SUPERBLOCK;
                let end = (start + WORDS_PER_SUPERBLOCK).min(words.len());
                running += words[start..end]
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum::<u64>();
            }
        }
        let n_l2 = n_super.div_ceil(SUPERBLOCKS_PER_L2);
        let mut l2_ranks = Vec::with_capacity(n_l2 + 1);
        for b in 0..=n_l2 {
            let sb = (b * SUPERBLOCKS_PER_L2).min(n_super);
            l2_ranks.push(super_ranks[sb]);
        }
        Self {
            len,
            words,
            count_ones: running,
            super_ranks,
            l2_ranks,
        }
    }

    fn word_count(len: u64) -> usize {
        (len.div_ceil(64)) as usize
    }

    fn mask_tail(words: &mut [u64], len: u64) {
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of addressable positions.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether length is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.count_ones
    }

    /// Bit value at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "position {pos} out of range");
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Number of set bits strictly before `pos` (`pos` may equal `len`).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    #[must_use]
    pub fn rank(&self, pos: u64) -> u64 {
        assert!(pos <= self.len, "rank position {pos} out of range");
        let sb = (pos / BITS_PER_SUPERBLOCK) as usize;
        let mut r = self.super_ranks[sb];
        let word_start = sb * WORDS_PER_SUPERBLOCK;
        let word_end = (pos / 64) as usize;
        for w in &self.words[word_start..word_end] {
            r += u64::from(w.count_ones());
        }
        let tail = pos % 64;
        if tail != 0 {
            let w = self.words[word_end] & ((1u64 << tail) - 1);
            r += u64::from(w.count_ones());
        }
        r
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if out of range.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<u64> {
        if k >= self.count_ones {
            return None;
        }
        // Binary search the small upper directory, then only a 64-entry
        // window of the superblock directory.
        let lb = self.l2_ranks.partition_point(|&r| r <= k) - 1;
        let sb = self.superblock_in_l2(lb, k);
        let mut remaining = k - self.super_ranks[sb];
        let word_start = sb * WORDS_PER_SUPERBLOCK;
        let word_end = (word_start + WORDS_PER_SUPERBLOCK).min(self.words.len());
        for wi in word_start..word_end {
            let ones = u64::from(self.words[wi].count_ones());
            if remaining < ones {
                let bit = select_in_word(self.words[wi], remaining as u32);
                return Some((wi as u64) * 64 + u64::from(bit));
            }
            remaining -= ones;
        }
        unreachable!("rank directory inconsistent with words");
    }

    /// Last superblock within upper block `lb` whose cumulative rank is
    /// `<= k` (requires `l2_ranks[lb] <= k`).
    #[inline]
    fn superblock_in_l2(&self, lb: usize, k: u64) -> usize {
        let n_super = self.super_ranks.len() - 1;
        let sb_start = lb * SUPERBLOCKS_PER_L2;
        let sb_end = ((lb + 1) * SUPERBLOCKS_PER_L2).min(n_super);
        sb_start + self.super_ranks[sb_start + 1..=sb_end].partition_point(|&r| r <= k)
    }

    /// Resolves a **sorted** batch of ranks in one monotone pass over the
    /// rank directory, appending the position of each `k`-th set bit to
    /// `out` in input order.
    ///
    /// Where [`Self::select`] pays a full `O(log n)` directory binary
    /// search per rank, this walks the directory forward exactly once:
    /// consecutive ranks that land in the same superblock reuse the cursor,
    /// and larger gaps are crossed with a suffix binary search. For a batch
    /// of `b` sorted ranks the cost is `O(b + log n)` directory work when
    /// the ranks are clustered and never worse than `O(b · log n)` — with
    /// far better cache behaviour than `b` independent searches, since the
    /// word scan only ever moves forward.
    ///
    /// # Panics
    ///
    /// Panics if any rank is `>= count_ones()`. Debug builds additionally
    /// assert that `sorted_ks` is non-decreasing.
    pub fn select_many(&self, sorted_ks: &[u64], out: &mut Vec<u64>) {
        let Some(&last_k) = sorted_ks.last() else {
            return;
        };
        assert!(
            last_k < self.count_ones,
            "select_many rank out of range (count_ones {})",
            self.count_ones
        );
        out.reserve(sorted_ks.len());
        let mut sb = 0usize; // current superblock
        let mut wi = 0usize; // current word
        let mut before = 0u64; // ones strictly before words[wi]
        let mut wc = u64::from(self.words[0].count_ones());
        let mut prev_k = 0u64;
        for &k in sorted_ks {
            debug_assert!(k >= prev_k, "select_many ranks must be sorted");
            prev_k = k;
            // Cross whole superblocks when the target rank lies beyond the
            // current one: gallop the (cache-resident) upper directory
            // first if the target leaves the current upper block, then
            // search only a 64-entry superblock window. Nearby targets —
            // the common case for a sorted batch — cost a couple of
            // adjacent probes; distant ones touch the hot upper directory
            // instead of cold mid-array lines.
            if self.super_ranks[sb + 1] <= k {
                let mut lb = sb / SUPERBLOCKS_PER_L2;
                if self.l2_ranks[lb + 1] <= k {
                    lb = gallop_last_le(&self.l2_ranks, lb + 1, k);
                }
                sb = self.superblock_in_l2(lb, k).max(sb);
                wi = sb * WORDS_PER_SUPERBLOCK;
                before = self.super_ranks[sb];
                wc = u64::from(self.words[wi].count_ones());
            }
            // Then walk forward word by word within the superblock.
            while before + wc <= k {
                before += wc;
                wi += 1;
                wc = u64::from(self.words[wi].count_ones());
            }
            let bit = select_in_word(self.words[wi], (k - before) as u32);
            out.push((wi as u64) * 64 + u64::from(bit));
        }
    }

    /// Bitwise AND with an equal-length bitmap.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn and(&self, other: &DenseBitmap) -> DenseBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Self::from_words(words, self.len)
    }

    /// Appends the set-bit positions of `self AND other`, ascending,
    /// without materializing the intersection bitmap (or its rank
    /// directory): each word pair is ANDed in a register and its surviving
    /// bits decoded directly.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersect_positions(&self, other: &DenseBitmap, out: &mut Vec<u64>) {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        for (wi, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let word = a & b;
            if word == 0 {
                continue;
            }
            let base = (wi as u64) * 64;
            out.extend((BitIter { word }).map(|bit| base + u64::from(bit)));
        }
    }

    /// Bitwise OR with an equal-length bitmap.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn or(&self, other: &DenseBitmap) -> DenseBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Self::from_words(words, self.len)
    }

    /// Bitwise NOT within `0..len`.
    #[must_use]
    pub fn not(&self) -> DenseBitmap {
        let words = self.words.iter().map(|w| !w).collect();
        Self::from_words(words, self.len)
    }

    /// Iterator over set-bit positions, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi as u64) * 64;
            BitIter { word }.map(move |b| base + u64::from(b))
        })
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        (self.words.len() + self.super_ranks.len() + self.l2_ranks.len()) * 8
    }

    /// Heap bytes a dense bitmap of length `len` would occupy (used by
    /// [`super::Bitmap::optimize`] without materializing).
    #[must_use]
    pub fn projected_heap_bytes(len: u64) -> usize {
        let words = Self::word_count(len);
        let n_super = words.div_ceil(WORDS_PER_SUPERBLOCK);
        let l2 = n_super.div_ceil(SUPERBLOCKS_PER_L2) + 1;
        (words + n_super + 1 + l2) * 8
    }
}

/// Largest index `s >= lo` with `arr[s] <= k`, assuming `arr[lo] <= k`:
/// exponential (galloping) probe followed by a binary search of the
/// bracketed window. Cost is `O(log gap)` in the distance advanced, so a
/// monotone sweep over a sorted batch pays for directory distance actually
/// crossed rather than a full `O(log n)` search per rank.
pub(crate) fn gallop_last_le(arr: &[u64], lo: usize, k: u64) -> usize {
    debug_assert!(arr[lo] <= k);
    // Give up galloping past this stride: a distant target is then found by
    // one binary search of the remaining suffix instead of ~2·log(gap)
    // scattered probes (which would be worse than plain binary search).
    const MAX_STEP: usize = 64;
    let mut lo = lo;
    let mut step = 1usize;
    loop {
        let probe = lo + step;
        if probe >= arr.len() || arr[probe] > k {
            let hi = probe.min(arr.len());
            return lo + arr[lo + 1..hi].partition_point(|&r| r <= k);
        }
        lo = probe;
        if step >= MAX_STEP {
            return lo + arr[lo + 1..].partition_point(|&r| r <= k);
        }
        step <<= 1;
    }
}

/// `SELECT_IN_BYTE[b * 8 + r]` = position of the `r`-th set bit of byte
/// `b` (8 when the byte has fewer than `r + 1` set bits).
const SELECT_IN_BYTE: [u8; 2048] = build_select_in_byte();

const fn build_select_in_byte() -> [u8; 2048] {
    let mut table = [8u8; 2048];
    let mut b = 0usize;
    while b < 256 {
        let mut count = 0usize;
        let mut bit = 0usize;
        while bit < 8 {
            if (b >> bit) & 1 == 1 {
                table[b * 8 + count] = bit as u8;
                count += 1;
            }
            bit += 1;
        }
        b += 1;
    }
    table
}

/// Position (0..64) of the `r`-th set bit within `word`, by broadword
/// byte-parallel popcounts (Vigna's select-in-word) instead of a per-bit
/// clear-lowest loop: constant ~12 ops regardless of `r`.
fn select_in_word(word: u64, r: u32) -> u32 {
    debug_assert!(u64::from(word.count_ones()) > u64::from(r));
    const ONES: u64 = 0x0101_0101_0101_0101;
    const MSBS: u64 = 0x8080_8080_8080_8080;
    // SWAR popcount per byte.
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    // Byte i of byte_sums = ones in bytes 0..=i (cumulative, inclusive).
    let byte_sums = s.wrapping_mul(ONES);
    // MSB of byte i survives iff byte_sums_i <= r, so the popcount is the
    // index of the byte holding the r-th set bit.
    let r_step = u64::from(r) * ONES;
    let geq = ((r_step | MSBS) - byte_sums) & MSBS;
    let byte_idx = geq.count_ones();
    let place = byte_idx * 8;
    // Cumulative ones strictly before the target byte.
    let prefix = ((byte_sums << 8) >> place) & 0xFF;
    let rank_in_byte = u64::from(r) - prefix;
    let byte = ((word >> place) & 0xFF) as usize;
    place + u32::from(SELECT_IN_BYTE[byte * 8 + rank_in_byte as usize])
}

/// Iterator over set-bit offsets within a single word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_in_word_all_positions() {
        let word = 0b1011_0101u64;
        let positions = [0u32, 2, 4, 5, 7];
        for (r, &p) in positions.iter().enumerate() {
            assert_eq!(select_in_word(word, r as u32), p);
        }
    }

    #[test]
    fn empty_bitmap() {
        let bm = DenseBitmap::zeros(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.select(0), None);
        assert_eq!(bm.rank(0), 0);
    }

    #[test]
    fn ones_masks_tail() {
        let bm = DenseBitmap::ones(70);
        assert_eq!(bm.count_ones(), 70);
        assert_eq!(bm.rank(70), 70);
        assert_eq!(bm.select(69), Some(69));
        assert_eq!(bm.select(70), None);
    }

    #[test]
    fn rank_across_superblocks() {
        // Set one bit per 100 positions over 3000 bits (spans superblocks).
        let positions: Vec<u64> = (0..30).map(|i| i * 100).collect();
        let bm = DenseBitmap::from_sorted_positions(&positions, 3000);
        for p in 0..=3000u64 {
            let expected = positions.iter().filter(|&&q| q < p).count() as u64;
            assert_eq!(bm.rank(p), expected, "rank({p})");
        }
    }

    #[test]
    fn select_brute_force_agreement() {
        let positions: Vec<u64> = vec![0, 1, 63, 64, 127, 128, 511, 512, 513, 1023, 2040];
        let bm = DenseBitmap::from_sorted_positions(&positions, 2048);
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(bm.select(k as u64), Some(p));
        }
        assert_eq!(bm.select(positions.len() as u64), None);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        let bm = DenseBitmap::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bm.get(i as u64), b);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_positions() {
        let _ = DenseBitmap::from_sorted_positions(&[5, 5], 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oob_position() {
        let _ = DenseBitmap::from_sorted_positions(&[10], 10);
    }

    #[test]
    fn not_respects_length() {
        let bm = DenseBitmap::from_sorted_positions(&[0, 5], 10);
        let inv = bm.not();
        assert_eq!(inv.count_ones(), 8);
        assert_eq!(inv.len(), 10);
        // Tail bits (10..64) must not leak into the count.
        assert_eq!(inv.rank(10), 8);
    }

    #[test]
    fn select_in_word_matches_naive_scan() {
        // Exhaustive over structured words plus a pseudo-random sweep.
        let mut words: Vec<u64> = vec![1, u64::MAX, 0x8000_0000_0000_0000, 0xAAAA_AAAA_AAAA_AAAA];
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            words.push(x);
        }
        for &w in &words {
            let naive: Vec<u32> = (0..64).filter(|b| (w >> b) & 1 == 1).collect();
            for (r, &expect) in naive.iter().enumerate() {
                assert_eq!(select_in_word(w, r as u32), expect, "word {w:#x} rank {r}");
            }
        }
    }

    #[test]
    fn select_many_matches_repeated_select() {
        // Clustered + sparse ones across several superblocks.
        let mut positions: Vec<u64> = (100..400).collect();
        positions.extend((0..40).map(|i| 1000 + i * 97));
        let bm = DenseBitmap::from_sorted_positions(&positions, 8192);
        let n = bm.count_ones();
        // All ranks at once.
        let ks: Vec<u64> = (0..n).collect();
        let mut out = Vec::new();
        bm.select_many(&ks, &mut out);
        assert_eq!(out, positions);
        // A sparse subset with repeats.
        let ks = vec![0, 0, 5, 17, 17, 100, n - 1];
        let mut out = Vec::new();
        bm.select_many(&ks, &mut out);
        let expect: Vec<u64> = ks.iter().map(|&k| bm.select(k).unwrap()).collect();
        assert_eq!(out, expect);
        // Empty batch.
        let mut out = Vec::new();
        bm.select_many(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_many_rejects_oob_rank() {
        let bm = DenseBitmap::from_sorted_positions(&[3, 9], 16);
        let mut out = Vec::new();
        bm.select_many(&[0, 2], &mut out);
    }

    #[test]
    fn iter_ones_matches_positions() {
        let positions: Vec<u64> = vec![3, 64, 65, 100, 511, 700];
        let bm = DenseBitmap::from_sorted_positions(&positions, 701);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), positions);
    }
}
