//! Dense bitvector with a superblock rank directory.
//!
//! Layout: bits are packed little-endian into `u64` words; every
//! [`WORDS_PER_SUPERBLOCK`] words a cumulative one-count is recorded. `rank`
//! reads one directory entry plus at most a superblock of words; `select`
//! binary-searches the directory (logarithmic in the number of records — the
//! "hierarchical" organization §4 describes) and then scans within one
//! superblock.

/// Words per rank-directory superblock (512 bits each).
const WORDS_PER_SUPERBLOCK: usize = 8;
/// Bits per superblock.
const BITS_PER_SUPERBLOCK: u64 = (WORDS_PER_SUPERBLOCK as u64) * 64;

/// A dense bitvector over positions `0..len` with `O(1)` rank and
/// `O(log n)` select.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBitmap {
    len: u64,
    words: Vec<u64>,
    /// `super_ranks[s]` = number of ones in words `[0, s*WORDS_PER_SUPERBLOCK)`.
    super_ranks: Vec<u64>,
    count_ones: u64,
}

impl DenseBitmap {
    /// An all-zeros bitmap of the given length.
    #[must_use]
    pub fn zeros(len: u64) -> Self {
        let words = vec![0u64; Self::word_count(len)];
        Self::from_words(words, len)
    }

    /// An all-ones bitmap of the given length.
    #[must_use]
    pub fn ones(len: u64) -> Self {
        let n_words = Self::word_count(len);
        let mut words = vec![u64::MAX; n_words];
        Self::mask_tail(&mut words, len);
        Self::from_words(words, len)
    }

    /// Builds from strictly increasing set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or `>= len`.
    #[must_use]
    pub fn from_sorted_positions(positions: &[u64], len: u64) -> Self {
        let mut words = vec![0u64; Self::word_count(len)];
        let mut prev: Option<u64> = None;
        for &p in positions {
            assert!(p < len, "position {p} out of range (len {len})");
            if let Some(q) = prev {
                assert!(p > q, "positions must be strictly increasing");
            }
            words[(p / 64) as usize] |= 1u64 << (p % 64);
            prev = Some(p);
        }
        Self::from_words(words, len)
    }

    /// Builds from a boolean slice.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let len = bits.len() as u64;
        let mut words = vec![0u64; Self::word_count(len)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self::from_words(words, len)
    }

    /// Builds from raw words (tail bits beyond `len` are cleared) and
    /// computes the rank directory.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: u64) -> Self {
        let needed = Self::word_count(len);
        assert!(
            words.len() >= needed,
            "word vector too short for length {len}"
        );
        words.truncate(needed);
        Self::mask_tail(&mut words, len);
        let n_super = words.len().div_ceil(WORDS_PER_SUPERBLOCK);
        let mut super_ranks = Vec::with_capacity(n_super + 1);
        let mut running = 0u64;
        for s in 0..=n_super {
            super_ranks.push(running);
            if s < n_super {
                let start = s * WORDS_PER_SUPERBLOCK;
                let end = (start + WORDS_PER_SUPERBLOCK).min(words.len());
                running += words[start..end]
                    .iter()
                    .map(|w| u64::from(w.count_ones()))
                    .sum::<u64>();
            }
        }
        Self {
            len,
            words,
            count_ones: running,
            super_ranks,
        }
    }

    fn word_count(len: u64) -> usize {
        (len.div_ceil(64)) as usize
    }

    fn mask_tail(words: &mut [u64], len: u64) {
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of addressable positions.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether length is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.count_ones
    }

    /// Bit value at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "position {pos} out of range");
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Number of set bits strictly before `pos` (`pos` may equal `len`).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    #[must_use]
    pub fn rank(&self, pos: u64) -> u64 {
        assert!(pos <= self.len, "rank position {pos} out of range");
        let sb = (pos / BITS_PER_SUPERBLOCK) as usize;
        let mut r = self.super_ranks[sb];
        let word_start = sb * WORDS_PER_SUPERBLOCK;
        let word_end = (pos / 64) as usize;
        for w in &self.words[word_start..word_end] {
            r += u64::from(w.count_ones());
        }
        let tail = pos % 64;
        if tail != 0 {
            let w = self.words[word_end] & ((1u64 << tail) - 1);
            r += u64::from(w.count_ones());
        }
        r
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if out of range.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<u64> {
        if k >= self.count_ones {
            return None;
        }
        // Binary search the superblock directory for the last superblock
        // whose cumulative rank is <= k.
        let sb = self.super_ranks.partition_point(|&r| r <= k) - 1;
        let mut remaining = k - self.super_ranks[sb];
        let word_start = sb * WORDS_PER_SUPERBLOCK;
        let word_end = (word_start + WORDS_PER_SUPERBLOCK).min(self.words.len());
        for wi in word_start..word_end {
            let ones = u64::from(self.words[wi].count_ones());
            if remaining < ones {
                let bit = select_in_word(self.words[wi], remaining as u32);
                return Some((wi as u64) * 64 + u64::from(bit));
            }
            remaining -= ones;
        }
        unreachable!("rank directory inconsistent with words");
    }

    /// Bitwise AND with an equal-length bitmap.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn and(&self, other: &DenseBitmap) -> DenseBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Self::from_words(words, self.len)
    }

    /// Bitwise OR with an equal-length bitmap.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn or(&self, other: &DenseBitmap) -> DenseBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Self::from_words(words, self.len)
    }

    /// Bitwise NOT within `0..len`.
    #[must_use]
    pub fn not(&self) -> DenseBitmap {
        let words = self.words.iter().map(|w| !w).collect();
        Self::from_words(words, self.len)
    }

    /// Iterator over set-bit positions, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi as u64) * 64;
            BitIter { word }.map(move |b| base + u64::from(b))
        })
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8 + self.super_ranks.len() * 8
    }

    /// Heap bytes a dense bitmap of length `len` would occupy (used by
    /// [`super::Bitmap::optimize`] without materializing).
    #[must_use]
    pub fn projected_heap_bytes(len: u64) -> usize {
        let words = Self::word_count(len);
        let supers = words.div_ceil(WORDS_PER_SUPERBLOCK) + 1;
        words * 8 + supers * 8
    }
}

/// Position (0..64) of the `r`-th set bit within `word`.
fn select_in_word(mut word: u64, mut r: u32) -> u32 {
    debug_assert!(u64::from(word.count_ones()) > u64::from(r));
    loop {
        let tz = word.trailing_zeros();
        if r == 0 {
            return tz;
        }
        word &= word - 1; // clear lowest set bit
        r -= 1;
    }
}

/// Iterator over set-bit offsets within a single word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_in_word_all_positions() {
        let word = 0b1011_0101u64;
        let positions = [0u32, 2, 4, 5, 7];
        for (r, &p) in positions.iter().enumerate() {
            assert_eq!(select_in_word(word, r as u32), p);
        }
    }

    #[test]
    fn empty_bitmap() {
        let bm = DenseBitmap::zeros(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.select(0), None);
        assert_eq!(bm.rank(0), 0);
    }

    #[test]
    fn ones_masks_tail() {
        let bm = DenseBitmap::ones(70);
        assert_eq!(bm.count_ones(), 70);
        assert_eq!(bm.rank(70), 70);
        assert_eq!(bm.select(69), Some(69));
        assert_eq!(bm.select(70), None);
    }

    #[test]
    fn rank_across_superblocks() {
        // Set one bit per 100 positions over 3000 bits (spans superblocks).
        let positions: Vec<u64> = (0..30).map(|i| i * 100).collect();
        let bm = DenseBitmap::from_sorted_positions(&positions, 3000);
        for p in 0..=3000u64 {
            let expected = positions.iter().filter(|&&q| q < p).count() as u64;
            assert_eq!(bm.rank(p), expected, "rank({p})");
        }
    }

    #[test]
    fn select_brute_force_agreement() {
        let positions: Vec<u64> = vec![0, 1, 63, 64, 127, 128, 511, 512, 513, 1023, 2040];
        let bm = DenseBitmap::from_sorted_positions(&positions, 2048);
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(bm.select(k as u64), Some(p));
        }
        assert_eq!(bm.select(positions.len() as u64), None);
    }

    #[test]
    fn from_bools_roundtrip() {
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        let bm = DenseBitmap::from_bools(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bm.get(i as u64), b);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_positions() {
        let _ = DenseBitmap::from_sorted_positions(&[5, 5], 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oob_position() {
        let _ = DenseBitmap::from_sorted_positions(&[10], 10);
    }

    #[test]
    fn not_respects_length() {
        let bm = DenseBitmap::from_sorted_positions(&[0, 5], 10);
        let inv = bm.not();
        assert_eq!(inv.count_ones(), 8);
        assert_eq!(inv.len(), 10);
        // Tail bits (10..64) must not leak into the count.
        assert_eq!(inv.rank(10), 8);
    }

    #[test]
    fn iter_ones_matches_positions() {
        let positions: Vec<u64> = vec![3, 64, 65, 100, 511, 700];
        let bm = DenseBitmap::from_sorted_positions(&positions, 701);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), positions);
    }
}
