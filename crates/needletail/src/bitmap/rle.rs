//! Run-length-encoded bitmaps with native boolean algebra.
//!
//! A bitmap is stored as maximal runs `(bit, len)`. Group-by attributes
//! produce strongly clustered bitmaps (e.g. data loaded airline-by-airline),
//! for which RLE is orders of magnitude smaller than a dense bitvector —
//! this is the compression §4 leans on to keep every per-value bitmap in
//! memory. Cumulative position/one-count prefix arrays give `O(log #runs)`
//! `rank`, `select`, and `get`.

use super::DenseBitmap;

/// One maximal run of identical bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    bit: bool,
    len: u64,
}

/// A run-length-encoded bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitmap {
    len: u64,
    runs: Vec<Run>,
    /// `starts[i]` = position of the first bit of run `i`; one extra entry = len.
    starts: Vec<u64>,
    /// `ones_before[i]` = number of ones strictly before run `i`; extra entry = total.
    ones_before: Vec<u64>,
}

impl RleBitmap {
    /// An all-zeros bitmap.
    #[must_use]
    pub fn zeros(len: u64) -> Self {
        Self::from_runs(
            if len == 0 {
                vec![]
            } else {
                vec![Run { bit: false, len }]
            },
            len,
        )
    }

    /// An all-ones bitmap.
    #[must_use]
    pub fn ones(len: u64) -> Self {
        Self::from_runs(
            if len == 0 {
                vec![]
            } else {
                vec![Run { bit: true, len }]
            },
            len,
        )
    }

    /// Builds from `(bit, run_length)` pairs; adjacent equal bits are merged
    /// and zero-length runs dropped.
    fn from_runs(raw: Vec<Run>, len: u64) -> Self {
        let mut runs: Vec<Run> = Vec::with_capacity(raw.len());
        for r in raw {
            if r.len == 0 {
                continue;
            }
            match runs.last_mut() {
                Some(last) if last.bit == r.bit => last.len += r.len,
                _ => runs.push(r),
            }
        }
        let mut starts = Vec::with_capacity(runs.len() + 1);
        let mut ones_before = Vec::with_capacity(runs.len() + 1);
        let mut pos = 0u64;
        let mut ones = 0u64;
        for r in &runs {
            starts.push(pos);
            ones_before.push(ones);
            pos += r.len;
            if r.bit {
                ones += r.len;
            }
        }
        starts.push(pos);
        ones_before.push(ones);
        assert_eq!(pos, len, "run lengths must sum to the bitmap length");
        Self {
            len,
            runs,
            starts,
            ones_before,
        }
    }

    /// Converts from a dense bitmap.
    #[must_use]
    pub fn from_dense(dense: &DenseBitmap) -> Self {
        let len = dense.len();
        let mut raw = Vec::new();
        let mut current: Option<Run> = None;
        let mut next_pos = 0u64;
        for one in dense.iter_ones() {
            if one > next_pos {
                flush(&mut raw, &mut current, false, one - next_pos);
            }
            flush(&mut raw, &mut current, true, 1);
            next_pos = one + 1;
        }
        if next_pos < len {
            flush(&mut raw, &mut current, false, len - next_pos);
        }
        if let Some(run) = current {
            raw.push(run);
        }
        return Self::from_runs(raw, len);

        fn flush(raw: &mut Vec<Run>, current: &mut Option<Run>, bit: bool, n: u64) {
            match current {
                Some(run) if run.bit == bit => run.len += n,
                Some(run) => {
                    raw.push(*run);
                    *current = Some(Run { bit, len: n });
                }
                None => *current = Some(Run { bit, len: n }),
            }
        }
    }

    /// Materializes a dense copy.
    #[must_use]
    pub fn to_dense(&self) -> DenseBitmap {
        let positions: Vec<u64> = self.iter_ones().collect();
        DenseBitmap::from_sorted_positions(&positions, self.len)
    }

    /// Number of addressable positions.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether length is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs in the encoding.
    #[must_use]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        *self.ones_before.last().unwrap_or(&0)
    }

    /// Index of the run containing position `pos`.
    fn run_of(&self, pos: u64) -> usize {
        debug_assert!(pos < self.len);
        self.starts.partition_point(|&s| s <= pos) - 1
    }

    /// Bit value at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "position {pos} out of range");
        self.runs[self.run_of(pos)].bit
    }

    /// Number of set bits strictly before `pos` (`pos` may equal `len`).
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    #[must_use]
    pub fn rank(&self, pos: u64) -> u64 {
        assert!(pos <= self.len, "rank position {pos} out of range");
        if pos == self.len {
            return self.count_ones();
        }
        let ri = self.run_of(pos);
        let within = pos - self.starts[ri];
        self.ones_before[ri] + if self.runs[ri].bit { within } else { 0 }
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if out of range.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<u64> {
        if k >= self.count_ones() {
            return None;
        }
        let ri = self.ones_before.partition_point(|&o| o <= k) - 1;
        debug_assert!(self.runs[ri].bit);
        Some(self.starts[ri] + (k - self.ones_before[ri]))
    }

    /// Resolves a **sorted** batch of ranks in one monotone pass over the
    /// run directory, appending positions to `out` in input order.
    ///
    /// The run cursor only moves forward: consecutive ranks inside the same
    /// run cost `O(1)` each, and larger gaps are crossed with a suffix
    /// binary search over the cumulative one-counts — `O(b + log #runs)`
    /// for clustered batches versus `b` independent `O(log #runs)`
    /// searches through [`Self::select`].
    ///
    /// # Panics
    ///
    /// Panics if any rank is `>= count_ones()`. Debug builds additionally
    /// assert that `sorted_ks` is non-decreasing.
    pub fn select_many(&self, sorted_ks: &[u64], out: &mut Vec<u64>) {
        let Some(&last_k) = sorted_ks.last() else {
            return;
        };
        assert!(
            last_k < self.count_ones(),
            "select_many rank out of range (count_ones {})",
            self.count_ones()
        );
        out.reserve(sorted_ks.len());
        let mut ri = 0usize;
        let mut prev_k = 0u64;
        for &k in sorted_ks {
            debug_assert!(k >= prev_k, "select_many ranks must be sorted");
            prev_k = k;
            if self.ones_before[ri + 1] <= k {
                // Gallop to the last run whose cumulative count is <= k
                // (skipping zero-run plateaus in the same jump).
                ri = super::dense::gallop_last_le(&self.ones_before, ri + 1, k);
            }
            debug_assert!(self.runs[ri].bit);
            out.push(self.starts[ri] + (k - self.ones_before[ri]));
        }
    }

    /// Bitwise AND (run-merge; output stays RLE).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn and(&self, other: &RleBitmap) -> RleBitmap {
        self.zip_with(other, |a, b| a && b)
    }

    /// Bitwise OR (run-merge; output stays RLE).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn or(&self, other: &RleBitmap) -> RleBitmap {
        self.zip_with(other, |a, b| a || b)
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self) -> RleBitmap {
        let raw = self
            .runs
            .iter()
            .map(|r| Run {
                bit: !r.bit,
                len: r.len,
            })
            .collect();
        Self::from_runs(raw, self.len)
    }

    /// Generic run-merge combine.
    fn zip_with(&self, other: &RleBitmap, op: impl Fn(bool, bool) -> bool) -> RleBitmap {
        assert_eq!(self.len, other.len, "bitmap lengths must match");
        let mut raw = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (mut ri, mut rj) = (0u64, 0u64); // consumed within current runs
        while i < self.runs.len() && j < other.runs.len() {
            let left = self.runs[i].len - ri;
            let right = other.runs[j].len - rj;
            let step = left.min(right);
            raw.push(Run {
                bit: op(self.runs[i].bit, other.runs[j].bit),
                len: step,
            });
            ri += step;
            rj += step;
            if ri == self.runs[i].len {
                i += 1;
                ri = 0;
            }
            if rj == other.runs[j].len {
                j += 1;
                rj = 0;
            }
        }
        Self::from_runs(raw, self.len)
    }

    /// Iterator over set-bit positions, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs
            .iter()
            .zip(&self.starts)
            .filter(|(r, _)| r.bit)
            .flat_map(|(r, &start)| start..start + r.len)
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<Run>()
            + (self.starts.len() + self.ones_before.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_positions(pos: &[u64], len: u64) -> RleBitmap {
        RleBitmap::from_dense(&DenseBitmap::from_sorted_positions(pos, len))
    }

    #[test]
    fn zeros_ones() {
        let z = RleBitmap::zeros(100);
        let o = RleBitmap::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.run_count(), 1);
        assert_eq!(o.run_count(), 1);
        assert_eq!(z.select(0), None);
        assert_eq!(o.select(99), Some(99));
    }

    #[test]
    fn empty() {
        let e = RleBitmap::zeros(0);
        assert!(e.is_empty());
        assert_eq!(e.run_count(), 0);
        assert_eq!(e.rank(0), 0);
    }

    #[test]
    fn clustered_runs_compress() {
        // 10_000 bits, ones in [2000, 5000): 3 runs.
        let pos: Vec<u64> = (2000..5000).collect();
        let bm = from_positions(&pos, 10_000);
        assert_eq!(bm.run_count(), 3);
        assert_eq!(bm.count_ones(), 3000);
        assert!(bm.heap_bytes() < 200);
        assert_eq!(bm.select(0), Some(2000));
        assert_eq!(bm.select(2999), Some(4999));
        assert_eq!(bm.rank(2000), 0);
        assert_eq!(bm.rank(3500), 1500);
        assert_eq!(bm.rank(10_000), 3000);
        assert!(bm.get(2500));
        assert!(!bm.get(1999));
    }

    #[test]
    fn rank_select_inverse() {
        let pos = vec![0, 1, 2, 50, 51, 99];
        let bm = from_positions(&pos, 100);
        for (k, &p) in pos.iter().enumerate() {
            assert_eq!(bm.select(k as u64), Some(p));
            assert_eq!(bm.rank(p), k as u64);
        }
    }

    #[test]
    fn and_or_not_small() {
        let a = from_positions(&[0, 1, 2, 7, 8], 10);
        let b = from_positions(&[2, 3, 7], 10);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![2, 7]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 7, 8]
        );
        assert_eq!(a.not().iter_ones().collect::<Vec<_>>(), vec![3, 4, 5, 6, 9]);
    }

    #[test]
    fn zip_merges_adjacent_runs() {
        let a = from_positions(&[0, 1], 4); // runs: 11 00
        let b = from_positions(&[2, 3], 4); // runs: 00 11
        let or = a.or(&b);
        assert_eq!(or.run_count(), 1, "adjacent equal output runs must merge");
        assert_eq!(or.count_ones(), 4);
    }

    #[test]
    fn roundtrip_dense() {
        let pos = vec![5, 6, 7, 64, 65, 200];
        let dense = DenseBitmap::from_sorted_positions(&pos, 256);
        let rle = RleBitmap::from_dense(&dense);
        let back = rle.to_dense();
        assert_eq!(back.iter_ones().collect::<Vec<_>>(), pos);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        let bm = RleBitmap::zeros(10);
        let _ = bm.get(10);
    }

    #[test]
    fn select_many_matches_repeated_select() {
        // Multiple runs with zero-run plateaus between them.
        let mut pos: Vec<u64> = (200..500).collect();
        pos.extend(2000..2010);
        pos.extend(9000..9500);
        let bm = from_positions(&pos, 10_000);
        let n = bm.count_ones();
        let ks: Vec<u64> = (0..n).collect();
        let mut out = Vec::new();
        bm.select_many(&ks, &mut out);
        assert_eq!(out, pos);
        let ks = vec![0, 0, 299, 300, 309, 310, n - 1];
        let mut out = Vec::new();
        bm.select_many(&ks, &mut out);
        let expect: Vec<u64> = ks.iter().map(|&k| bm.select(k).unwrap()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_many_rejects_oob_rank() {
        let bm = from_positions(&[1, 2], 8);
        let mut out = Vec::new();
        bm.select_many(&[2], &mut out);
    }
}
