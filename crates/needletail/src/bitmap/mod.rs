//! Compressed, rank/select-capable bitmaps — NEEDLETAIL's index primitive.
//!
//! Two physical representations share the logical [`Bitmap`] interface:
//!
//! * [`DenseBitmap`] — a plain `u64`-word bitvector augmented with a
//!   superblock rank directory, giving `O(1)` rank and `O(log n)` select.
//!   This is the "hierarchically organized" bitmap of §4: finding the `j`-th
//!   matching tuple costs a binary search over superblocks (logarithmic in
//!   the number of records) plus a bounded word scan.
//! * [`RleBitmap`] — run-length encoding with full boolean algebra
//!   (AND/OR/NOT performed directly on runs) and `O(log #runs)` select via
//!   cumulative one-counts. Dramatically smaller for the clustered or sparse
//!   bitmaps that group-by attributes typically produce.
//!
//! [`Bitmap`] picks whichever representation is smaller when sealing a
//! freshly built index ([`Bitmap::optimize`]).

mod dense;
mod rle;

pub use dense::DenseBitmap;
pub use rle::RleBitmap;

/// A logical bitmap over tuple positions `0..len`, in either physical
/// representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bitmap {
    /// Dense bitvector with a rank directory.
    Dense(DenseBitmap),
    /// Run-length-encoded representation.
    Rle(RleBitmap),
}

impl Bitmap {
    /// An all-zeros bitmap of the given length.
    #[must_use]
    pub fn zeros(len: u64) -> Self {
        Bitmap::Rle(RleBitmap::zeros(len))
    }

    /// An all-ones bitmap of the given length.
    #[must_use]
    pub fn ones(len: u64) -> Self {
        Bitmap::Rle(RleBitmap::ones(len))
    }

    /// Builds a bitmap from the sorted, de-duplicated positions of set bits.
    ///
    /// # Panics
    ///
    /// Panics if positions are not strictly increasing or exceed `len`.
    #[must_use]
    pub fn from_sorted_positions(positions: &[u64], len: u64) -> Self {
        Bitmap::Dense(DenseBitmap::from_sorted_positions(positions, len))
    }

    /// Number of addressable positions.
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            Bitmap::Dense(d) => d.len(),
            Bitmap::Rle(r) => r.len(),
        }
    }

    /// Whether the bitmap has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        match self {
            Bitmap::Dense(d) => d.count_ones(),
            Bitmap::Rle(r) => r.count_ones(),
        }
    }

    /// Value of the bit at `pos`.
    #[must_use]
    pub fn get(&self, pos: u64) -> bool {
        match self {
            Bitmap::Dense(d) => d.get(pos),
            Bitmap::Rle(r) => r.get(pos),
        }
    }

    /// Number of set bits strictly before `pos`.
    #[must_use]
    pub fn rank(&self, pos: u64) -> u64 {
        match self {
            Bitmap::Dense(d) => d.rank(pos),
            Bitmap::Rle(r) => r.rank(pos),
        }
    }

    /// Position of the `k`-th set bit (0-based). `None` if `k >= count_ones`.
    #[must_use]
    pub fn select(&self, k: u64) -> Option<u64> {
        match self {
            Bitmap::Dense(d) => d.select(k),
            Bitmap::Rle(r) => r.select(k),
        }
    }

    /// Resolves a **sorted** batch of ranks in one monotone pass,
    /// appending the position of each `k`-th set bit to `out` in input
    /// order. See [`DenseBitmap::select_many`] / [`RleBitmap::select_many`]
    /// for the per-representation cost model; both replace `b` independent
    /// directory binary searches with a single forward sweep.
    ///
    /// # Panics
    ///
    /// Panics if any rank is `>= count_ones()`.
    pub fn select_many(&self, sorted_ks: &[u64], out: &mut Vec<u64>) {
        match self {
            Bitmap::Dense(d) => d.select_many(sorted_ks, out),
            Bitmap::Rle(r) => r.select_many(sorted_ks, out),
        }
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len(), other.len(), "bitmap lengths must match");
        match (self, other) {
            (Bitmap::Rle(a), Bitmap::Rle(b)) => Bitmap::Rle(a.and(b)),
            _ => Bitmap::Dense(self.to_dense().and(&other.to_dense())),
        }
    }

    /// Appends the set-bit positions of `self AND other`, ascending,
    /// without materializing the intersection bitmap or its rank
    /// directory. Dense pairs AND word pairs in registers and decode the
    /// survivors; mixed/RLE pairs gallop over the sparser operand's set
    /// bits and membership-test the other — the cost scales with
    /// `min(|self|, |other|)`, not the table length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersect_positions(&self, other: &Bitmap, out: &mut Vec<u64>) {
        assert_eq!(self.len(), other.len(), "bitmap lengths must match");
        match (self, other) {
            (Bitmap::Dense(a), Bitmap::Dense(b)) => a.intersect_positions(b, out),
            _ => {
                let (sparse, tested) = if self.count_ones() <= other.count_ones() {
                    (self, other)
                } else {
                    (other, self)
                };
                out.extend(sparse.iter_ones().filter(|&p| tested.get(p)));
            }
        }
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len(), other.len(), "bitmap lengths must match");
        match (self, other) {
            (Bitmap::Rle(a), Bitmap::Rle(b)) => Bitmap::Rle(a.or(b)),
            _ => Bitmap::Dense(self.to_dense().or(&other.to_dense())),
        }
    }

    /// Bitwise NOT (within `0..len`).
    #[must_use]
    pub fn not(&self) -> Bitmap {
        match self {
            Bitmap::Dense(d) => Bitmap::Dense(d.not()),
            Bitmap::Rle(r) => Bitmap::Rle(r.not()),
        }
    }

    /// Iterator over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            Bitmap::Dense(d) => Box::new(d.iter_ones()),
            Bitmap::Rle(r) => Box::new(r.iter_ones()),
        }
    }

    /// Materializes a dense copy.
    #[must_use]
    pub fn to_dense(&self) -> DenseBitmap {
        match self {
            Bitmap::Dense(d) => d.clone(),
            Bitmap::Rle(r) => r.to_dense(),
        }
    }

    /// Materializes an RLE copy.
    #[must_use]
    pub fn to_rle(&self) -> RleBitmap {
        match self {
            Bitmap::Dense(d) => RleBitmap::from_dense(d),
            Bitmap::Rle(r) => r.clone(),
        }
    }

    /// Approximate heap footprint in bytes of the current representation.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            Bitmap::Dense(d) => d.heap_bytes(),
            Bitmap::Rle(r) => r.heap_bytes(),
        }
    }

    /// Re-encodes into whichever representation is smaller (ties keep the
    /// current one). Index sealing calls this per distinct value.
    #[must_use]
    pub fn optimize(self) -> Bitmap {
        let rle = self.to_rle();
        let dense_bytes = DenseBitmap::projected_heap_bytes(self.len());
        if rle.heap_bytes() < dense_bytes {
            Bitmap::Rle(rle)
        } else {
            match self {
                d @ Bitmap::Dense(_) => d,
                Bitmap::Rle(r) => Bitmap::Dense(r.to_dense()),
            }
        }
    }
}

impl From<DenseBitmap> for Bitmap {
    fn from(d: DenseBitmap) -> Self {
        Bitmap::Dense(d)
    }
}

impl From<RleBitmap> for Bitmap {
    fn from(r: RleBitmap) -> Self {
        Bitmap::Rle(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_positions() -> Vec<u64> {
        vec![0, 3, 4, 63, 64, 65, 200, 511, 512, 999]
    }

    fn both_reps(positions: &[u64], len: u64) -> [Bitmap; 2] {
        let dense = Bitmap::from_sorted_positions(positions, len);
        let rle = Bitmap::Rle(dense.to_rle());
        [dense, rle]
    }

    #[test]
    fn representations_agree_on_queries() {
        let pos = sample_positions();
        for bm in both_reps(&pos, 1000) {
            assert_eq!(bm.len(), 1000);
            assert_eq!(bm.count_ones(), pos.len() as u64);
            for (k, &p) in pos.iter().enumerate() {
                assert!(bm.get(p), "bit {p} should be set");
                assert_eq!(bm.select(k as u64), Some(p));
                assert_eq!(bm.rank(p), k as u64);
            }
            assert_eq!(bm.select(pos.len() as u64), None);
            assert!(!bm.get(1));
            assert_eq!(bm.iter_ones().collect::<Vec<_>>(), pos);
        }
    }

    #[test]
    fn boolean_algebra_matches_naive() {
        let a_pos = vec![1, 2, 3, 10, 50, 63, 64, 99];
        let b_pos = vec![2, 3, 7, 50, 65, 98, 99];
        let len = 100;
        for a in both_reps(&a_pos, len) {
            for b in both_reps(&b_pos, len) {
                let and = a.and(&b);
                let or = a.or(&b);
                let not_a = a.not();
                for p in 0..len {
                    let (ba, bb) = (a_pos.contains(&p), b_pos.contains(&p));
                    assert_eq!(and.get(p), ba && bb, "and at {p}");
                    assert_eq!(or.get(p), ba || bb, "or at {p}");
                    assert_eq!(not_a.get(p), !ba, "not at {p}");
                }
            }
        }
    }

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(77);
        let o = Bitmap::ones(77);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 77);
        assert_eq!(z.select(0), None);
        assert_eq!(o.select(76), Some(76));
        assert_eq!(o.select(77), None);
        assert_eq!(z.not().count_ones(), 77);
    }

    #[test]
    fn optimize_prefers_rle_for_sparse() {
        let bm = Bitmap::from_sorted_positions(&[5, 100_000], 1_000_000);
        let opt = bm.optimize();
        assert!(matches!(opt, Bitmap::Rle(_)), "sparse bitmap should go RLE");
        assert_eq!(opt.count_ones(), 2);
    }

    #[test]
    fn optimize_prefers_dense_for_noise() {
        // Alternating bits: worst case for RLE.
        let positions: Vec<u64> = (0..4096).step_by(2).collect();
        let bm = Bitmap::from_sorted_positions(&positions, 4096);
        let opt = bm.optimize();
        assert!(
            matches!(opt, Bitmap::Dense(_)),
            "noisy bitmap should stay dense"
        );
        assert_eq!(opt.count_ones(), 2048);
    }

    #[test]
    #[should_panic(expected = "lengths")]
    fn and_rejects_length_mismatch() {
        let a = Bitmap::zeros(10);
        let b = Bitmap::zeros(11);
        let _ = a.and(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    prop_compose! {
        fn arb_positions(max_len: u64)
            (len in 1..max_len)
            (positions in proptest::collection::btree_set(0..len, 0..128), len in Just(len))
            -> (Vec<u64>, u64)
        {
            (positions.into_iter().collect(), len)
        }
    }

    proptest! {
        #[test]
        fn rank_select_roundtrip((pos, len) in arb_positions(5000)) {
            let bm = Bitmap::from_sorted_positions(&pos, len);
            for rep in [bm.clone(), Bitmap::Rle(bm.to_rle())] {
                for (k, &p) in pos.iter().enumerate() {
                    prop_assert_eq!(rep.select(k as u64), Some(p));
                    prop_assert_eq!(rep.rank(p), k as u64);
                    prop_assert_eq!(rep.rank(p + 1), k as u64 + 1);
                }
            }
        }

        #[test]
        fn algebra_agrees_across_representations(
            (a_pos, len) in arb_positions(2000),
            seed in 0u64..1000,
        ) {
            // Derive a second position set deterministically from the seed.
            let b_pos: Vec<u64> = a_pos
                .iter()
                .map(|p| (p + seed) % len)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let a_d = Bitmap::from_sorted_positions(&a_pos, len);
            let b_d = Bitmap::from_sorted_positions(&b_pos, len);
            let a_r = Bitmap::Rle(a_d.to_rle());
            let b_r = Bitmap::Rle(b_d.to_rle());
            let dd = a_d.and(&b_d);
            let rr = a_r.and(&b_r);
            prop_assert_eq!(
                dd.iter_ones().collect::<Vec<_>>(),
                rr.iter_ones().collect::<Vec<_>>()
            );
            let dd = a_d.or(&b_d);
            let rr = a_r.or(&b_r);
            prop_assert_eq!(
                dd.iter_ones().collect::<Vec<_>>(),
                rr.iter_ones().collect::<Vec<_>>()
            );
        }

        #[test]
        fn select_many_agrees_with_select((pos, len) in arb_positions(5000), seed in 0u64..1000) {
            let bm = Bitmap::from_sorted_positions(&pos, len);
            let n = bm.count_ones();
            if n > 0 {
                // A deterministic pseudo-random sorted batch with repeats.
                let mut ks: Vec<u64> = (0..48)
                    .map(|i| (seed.wrapping_mul(i * 2 + 1).wrapping_add(i * i)) % n)
                    .collect();
                ks.sort_unstable();
                for rep in [bm.clone(), Bitmap::Rle(bm.to_rle())] {
                    let mut out = Vec::new();
                    rep.select_many(&ks, &mut out);
                    let expect: Vec<u64> = ks.iter().map(|&k| rep.select(k).unwrap()).collect();
                    prop_assert_eq!(&out, &expect);
                }
            }
        }

        #[test]
        fn intersection_agrees_with_materialized_and(
            (a_pos, len) in arb_positions(2000),
            seed in 0u64..1000,
        ) {
            // Derive a second position set deterministically from the seed.
            let b_pos: Vec<u64> = a_pos
                .iter()
                .map(|p| (p + seed) % len)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let a_d = Bitmap::from_sorted_positions(&a_pos, len);
            let b_d = Bitmap::from_sorted_positions(&b_pos, len);
            // Every representation pairing must agree with the
            // materialized AND on the intersection positions.
            for a in [a_d.clone(), Bitmap::Rle(a_d.to_rle())] {
                for b in [b_d.clone(), Bitmap::Rle(b_d.to_rle())] {
                    let and = a.and(&b);
                    let mut out = Vec::new();
                    a.intersect_positions(&b, &mut out);
                    prop_assert_eq!(out.len() as u64, and.count_ones());
                    prop_assert_eq!(out, and.iter_ones().collect::<Vec<_>>());
                }
            }
        }

        #[test]
        fn not_is_involution((pos, len) in arb_positions(2000)) {
            let bm = Bitmap::from_sorted_positions(&pos, len);
            let back = bm.not().not();
            prop_assert_eq!(
                bm.iter_ones().collect::<Vec<_>>(),
                back.iter_ones().collect::<Vec<_>>()
            );
            prop_assert_eq!(bm.not().count_ones(), len - pos.len() as u64);
        }

        #[test]
        fn optimize_preserves_content((pos, len) in arb_positions(3000)) {
            let bm = Bitmap::from_sorted_positions(&pos, len);
            let opt = bm.clone().optimize();
            prop_assert_eq!(opt.len(), bm.len());
            prop_assert_eq!(
                opt.iter_ones().collect::<Vec<_>>(),
                bm.iter_ones().collect::<Vec<_>>()
            );
        }
    }
}
