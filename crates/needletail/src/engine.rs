//! The NEEDLETAIL engine façade.
//!
//! [`NeedleTail`] owns a loaded [`Table`], builds bitmap indexes over the
//! requested attributes, and hands out per-group [`GroupHandle`]s: samplers
//! that return uniformly random measure values from one group (optionally
//! intersected with an ad-hoc predicate), with every retrieval counted in
//! the shared [`Metrics`]. This is the sampling engine the query-processing
//! algorithms of `rapidviz-core` plug into — §2.2's "use the index to get an
//! additional sample of Y at random from any group S_i".

use crate::bitmap::Bitmap;
use crate::cache::LruCache;
use crate::composite::CompositeIndex;
use crate::fault::{FaultInjector, FaultSite};
use crate::index::BitmapIndex;
use crate::metrics::Metrics;
use crate::predicate::Predicate;
use crate::sampler::{BitmapSampler, RowSet, SizeEstimatingSampler};
use crate::scan::{scan_group_aggregates, GroupAggregate};
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The named column does not exist.
    NoSuchColumn(String),
    /// The named column is not indexed and the operation needs an index.
    NotIndexed(String),
    /// The measure column is not numeric.
    NotNumeric(String),
    /// The requested combination of query options is not supported (e.g.
    /// an algorithm override on an aggregate with a dedicated algorithm).
    Unsupported(String),
    /// The query specification itself is malformed — a required clause is
    /// missing (no measure, no group-by). Distinct from
    /// [`EngineError::NoSuchColumn`]: no column was named at all, so no
    /// sentinel "column name" is fabricated for the message.
    InvalidQuery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchColumn(c) => write!(f, "no column named {c:?}"),
            EngineError::NotIndexed(c) => write!(f, "column {c:?} is not indexed"),
            EngineError::NotNumeric(c) => write!(f, "column {c:?} is not numeric"),
            EngineError::Unsupported(what) => write!(f, "unsupported query: {what}"),
            EngineError::InvalidQuery(what) => write!(f, "invalid query: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Entries kept in the predicate-bitmap LRU. Dashboards reuse a handful
/// of filters; 64 canonical predicates is far past any realistic fan-out
/// while bounding worst-case growth to ~64 table-length bitmaps.
const PREDICATE_CACHE_CAPACITY: usize = 64;

/// Entries kept in the plan LRU (one per distinct `(group-by, predicate)`
/// pair). Plans mostly *share* bitmaps with the indexes and the predicate
/// cache, so entries are cheap; selective-intersection views are the only
/// storage a plan owns outright.
const PLAN_CACHE_CAPACITY: usize = 64;

/// Distinct multi-attribute group-by column sets whose composite indexes
/// are retained.
const COMPOSITE_CACHE_CAPACITY: usize = 8;

/// Capacities (entry counts) for the three planning-cache LRUs. The
/// defaults match the committed constants and suit a dashboard workload;
/// a serving deployment whose filter diversity outruns them (watch the
/// miss counters in [`crate::metrics::MetricsSnapshot`]) can raise them
/// via [`NeedleTailBuilder::cache_capacities`] without a rebuild of
/// anything else. Values are clamped to at least one entry at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCapacities {
    /// Predicate-bitmap LRU entries (each up to one table-length bitmap).
    pub predicate: usize,
    /// Group-plan LRU entries (one per distinct group-by/predicate pair).
    pub plan: usize,
    /// Composite-index LRU entries (one per multi-attribute column set).
    pub composite: usize,
}

impl Default for CacheCapacities {
    fn default() -> Self {
        Self {
            predicate: PREDICATE_CACHE_CAPACITY,
            plan: PLAN_CACHE_CAPACITY,
            composite: COMPOSITE_CACHE_CAPACITY,
        }
    }
}

impl CacheCapacities {
    /// The capacities actually applied: every cache holds at least one
    /// entry (the LRU itself rejects zero, and a zero-entry plan cache
    /// would silently re-plan every query).
    #[must_use]
    pub fn clamped(self) -> Self {
        Self {
            predicate: self.predicate.max(1),
            plan: self.plan.max(1),
            composite: self.composite.max(1),
        }
    }
}

/// Deferred construction of a [`NeedleTail`] engine, for callers that
/// want non-default planning-cache capacities. Created by
/// [`NeedleTail::builder`]; [`NeedleTailBuilder::build`] performs the
/// same index builds and validation as [`NeedleTail::new`].
#[derive(Debug)]
pub struct NeedleTailBuilder {
    table: Table,
    indexed_columns: Vec<String>,
    capacities: CacheCapacities,
}

impl NeedleTailBuilder {
    /// Columns to build bitmap indexes over (replaces any earlier list).
    #[must_use]
    pub fn indexed_columns(mut self, columns: &[&str]) -> Self {
        self.indexed_columns = columns.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Overrides the planning-cache LRU capacities (clamped to ≥ 1 per
    /// cache). Defaults are [`CacheCapacities::default`].
    #[must_use]
    pub fn cache_capacities(mut self, capacities: CacheCapacities) -> Self {
        self.capacities = capacities;
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchColumn`] if an index target is missing.
    pub fn build(self) -> Result<NeedleTail, EngineError> {
        let refs: Vec<&str> = self.indexed_columns.iter().map(String::as_str).collect();
        NeedleTail::with_capacities(self.table, &refs, self.capacities)
    }
}

/// Selectivity cutover for filtered group plans: when the smaller operand
/// of `group ∧ predicate` has at most `table_rows / 64` ones, the plan
/// stores the intersection as a sorted-position **view**
/// ([`RowSet::Positions`], built by galloping the smaller operand and
/// membership-testing the larger) instead of materializing a table-length
/// bitmap. At 64 bits of universe per eligible row the view's `u64`
/// positions can never occupy more memory than the dense bitmap it
/// replaces, its construction touches `O(min(|group|, |predicate|))` rows
/// rather than `O(table)` words, and `select(k)` becomes a direct index —
/// below the cutover the view wins on every axis, above it the fused
/// word-AND materialization does.
const VIEW_CUTOVER_DENSITY: u64 = 64;

/// Cache key for one planned group-by: the group columns plus the
/// predicate's canonical form ([`Predicate::canonical_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Single-attribute index path vs composite-cell path. The two label
    /// groups differently (composite cells join values with `|`) even over
    /// one column, so they must not share entries.
    multi: bool,
    group_cols: Vec<String>,
    predicate: String,
}

/// A ready-to-serve plan: per-group labels and eligible-row sets, in index
/// order, with predicate-emptied groups already dropped. Cheap to clone
/// out of the cache — every [`RowSet`] is shared storage.
#[derive(Debug)]
struct CachedPlan {
    groups: Vec<(Value, RowSet)>,
}

/// Locks a cache mutex, recovering from poisoning: the caches hold only
/// rebuildable derived data, so a peer that panicked mid-insert cannot
/// leave them logically corrupt — at worst an entry is missing and gets
/// rebuilt.
fn lock<T>(cache: &Mutex<T>) -> MutexGuard<'_, T> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The sampling engine: a table plus its bitmap indexes.
///
/// ```
/// use rapidviz_needletail::{NeedleTail, Predicate, read_csv, CsvOptions};
/// use rand::SeedableRng;
///
/// let csv = "name,delay\nAA,30\nJB,10\nAA,50\nJB,20\n";
/// let table = read_csv(csv, &CsvOptions::default()).unwrap();
/// let engine = NeedleTail::new(table, &["name"]).unwrap();
///
/// // Exact aggregates via the SCAN path...
/// let aggs = engine.scan("name", "delay", &Predicate::True).unwrap();
/// assert_eq!(aggs[0].mean(), Some(40.0)); // AA
///
/// // ...or random per-group samples via the bitmap indexes.
/// let handles = engine.group_handles("name", "delay", &Predicate::True).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = handles[0].sample_with_replacement(&mut rng).unwrap();
/// assert!(x == 30.0 || x == 50.0);
/// ```
///
/// # Planning caches
///
/// The engine's table is immutable for its lifetime, so every planning
/// artifact is cacheable forever with **no invalidation story beyond the
/// engine's own drop** — the same contract as the per-column maxima behind
/// [`NeedleTail::column_max`]. Three interior caches (all behind their own
/// locks; the engine stays shareable by `&`) make repeat-query planning
/// near-O(1):
///
/// * **Predicate bitmaps**, keyed by [`Predicate::canonical_key`] — the
///   canonical form flattens and sorts `AND`/`OR` chains, so every
///   spelling of a dashboard's shared filter hits one entry. A bare
///   indexed equality bypasses the cache entirely (the index entry *is*
///   the answer, shared zero-copy).
/// * **Group plans**, keyed by `(group columns, canonical predicate)` —
///   the labels and per-group eligible-row sets
///   ([`NeedleTail::group_handles`] / [`NeedleTail::group_handles_multi`]).
///   A warm hit hands back shared [`RowSet`]s: no predicate evaluation, no
///   per-group intersection, no table-sized copies — fresh sampler state
///   over shared rows.
/// * **Composite indexes**, keyed by the group-by column list (the §6.3.4
///   joint indexes, formerly rebuilt on every multi-attribute query).
///
/// Filtered plans choose between a fused word-AND materialization and a
/// sorted-position intersection view per group by selectivity: below one
/// eligible row per 64 rows of table (`VIEW_CUTOVER_DENSITY`) the view is
/// smaller *and* faster to build and select from; above it the fused
/// word-AND wins. Both views expose identical row sets, and
/// cached plans share the very sets the cold plan built, so **fixed-seed
/// results are byte-identical cold or warm** — regression-tested in
/// `tests/plan_cache.rs`.
///
/// All caches are LRU-bounded; [`NeedleTail::clear_plan_caches`] drops
/// them (memory pressure, tests) at no correctness cost.
#[derive(Debug)]
pub struct NeedleTail {
    table: Arc<Table>,
    indexes: HashMap<String, BitmapIndex>,
    metrics: Arc<Metrics>,
    /// Per-column observed maxima (schema order; `None` for string columns
    /// and empty tables), each computed lazily on its first
    /// [`NeedleTail::column_max`] request and cached for the engine's
    /// lifetime — bound inference during query planning amortizes to O(1)
    /// instead of a full table scan per query, and columns never queried
    /// (or queries that always supply an explicit bound) cost nothing.
    column_maxima: Vec<std::sync::OnceLock<Option<f64>>>,
    /// Evaluated predicate bitmaps by canonical key (see the
    /// [planning-caches](#planning-caches) docs).
    predicate_bitmaps: Mutex<LruCache<String, Arc<Bitmap>>>,
    /// Ready group plans by `(group-by, canonical predicate)`.
    plans: Mutex<LruCache<PlanKey, Arc<CachedPlan>>>,
    /// Composite (multi-attribute) indexes by column list.
    composites: Mutex<LruCache<Vec<String>, Arc<CompositeIndex>>>,
    /// The all-rows bitmap [`NeedleTail::predicate_bitmap`] returns for
    /// [`Predicate::True`], built once per engine (it never earns an LRU
    /// slot — its key never varies).
    all_rows: std::sync::OnceLock<Arc<Bitmap>>,
    /// Fault injector consulted on every sampled-row read (see
    /// [`crate::fault`]). Captured by handles at build time, so installing
    /// or clearing an injector affects only handles built afterwards.
    faults: Option<Arc<dyn FaultInjector>>,
    /// The (clamped) planning-cache capacities this engine was built
    /// with, echoed by [`NeedleTail::cache_capacities`].
    capacities: CacheCapacities,
}

impl NeedleTail {
    /// Loads a table and builds bitmap indexes over `indexed_columns`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchColumn`] if an index target is missing.
    pub fn new(table: Table, indexed_columns: &[&str]) -> Result<Self, EngineError> {
        Self::with_capacities(table, indexed_columns, CacheCapacities::default())
    }

    /// Starts a [`NeedleTailBuilder`] over `table` for non-default
    /// construction (custom planning-cache capacities).
    #[must_use]
    pub fn builder(table: Table) -> NeedleTailBuilder {
        NeedleTailBuilder {
            table,
            indexed_columns: Vec::new(),
            capacities: CacheCapacities::default(),
        }
    }

    /// [`NeedleTail::new`] with explicit planning-cache capacities
    /// (clamped to ≥ 1 per cache).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchColumn`] if an index target is missing.
    pub fn with_capacities(
        table: Table,
        indexed_columns: &[&str],
        capacities: CacheCapacities,
    ) -> Result<Self, EngineError> {
        for col in indexed_columns {
            if table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn((*col).to_owned()));
            }
        }
        let indexes = indexed_columns
            .iter()
            .map(|c| ((*c).to_owned(), BitmapIndex::build(&table, c)))
            .collect();
        let column_maxima = (0..table.schema().columns().len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let capacities = capacities.clamped();
        Ok(Self {
            table: Arc::new(table),
            indexes,
            metrics: Arc::new(Metrics::new()),
            column_maxima,
            predicate_bitmaps: Mutex::new(LruCache::new(capacities.predicate)),
            plans: Mutex::new(LruCache::new(capacities.plan)),
            composites: Mutex::new(LruCache::new(capacities.composite)),
            all_rows: std::sync::OnceLock::new(),
            faults: None,
            capacities,
        })
    }

    /// The planning-cache capacities this engine was built with (already
    /// clamped).
    #[must_use]
    pub fn cache_capacities(&self) -> CacheCapacities {
        self.capacities
    }

    /// Installs a fault injector consulted on every sampled-row read from
    /// handles built **after** this call (handles capture the injector at
    /// build time). Rows the injector fails are dropped from the delivered
    /// draws — single draws return `None`, batches come up short — and
    /// charged to
    /// [`faulted_reads`](crate::metrics::MetricsSnapshot::faulted_reads);
    /// the algorithm layer sees an early-exhausted group and degrades to
    /// best-effort estimates. See [`crate::fault`] for the determinism
    /// contract.
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.faults = Some(injector);
    }

    /// Removes any installed fault injector (handles built afterwards read
    /// fault-free).
    pub fn clear_fault_injector(&mut self) {
        self.faults = None;
    }

    /// The observed maximum of a numeric column (`None` for string
    /// columns, unknown columns, and empty tables). The first request for
    /// a column pays one sequential scan; the result is cached in the
    /// engine for every later call, so bound inference during query
    /// planning amortizes to O(1) instead of a full table scan per query.
    #[must_use]
    pub fn column_max(&self, column: &str) -> Option<f64> {
        let idx = self.table.schema().column_index(column)?;
        *self.column_maxima[idx].get_or_init(|| {
            let rows = self.table.row_count();
            if self.table.schema().columns()[idx].data_type == DataType::Str || rows == 0 {
                return None;
            }
            Some(
                (0..rows)
                    .map(|row| self.table.float_value(row, idx))
                    .fold(f64::NEG_INFINITY, f64::max),
            )
        })
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The shared metrics sink.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The index over `column`, if built.
    #[must_use]
    pub fn index(&self, column: &str) -> Option<&BitmapIndex> {
        self.indexes.get(column)
    }

    /// All indexes, for predicate evaluation.
    #[must_use]
    pub fn indexes(&self) -> &HashMap<String, BitmapIndex> {
        &self.indexes
    }

    /// Evaluates `predicate` to a shared eligibility bitmap, serving
    /// repeats (under any evaluation-equivalent spelling — see
    /// [`Predicate::canonical_key`]) from the engine's predicate-bitmap
    /// LRU. A bare equality atom on an indexed column short-circuits to
    /// the index's own bitmap, zero-copy and without touching the cache.
    ///
    /// # Panics
    ///
    /// Panics if the predicate references a missing column.
    #[must_use]
    pub fn predicate_bitmap(&self, predicate: &Predicate) -> Arc<Bitmap> {
        if matches!(predicate, Predicate::True) {
            return Arc::clone(
                self.all_rows
                    .get_or_init(|| Arc::new(Bitmap::ones(self.table.row_count()))),
            );
        }
        if let Predicate::Eq(col, value) = predicate {
            if let Some(shared) = self
                .indexes
                .get(col)
                .and_then(|index| index.shared_bitmap_for(value))
            {
                return Arc::clone(shared);
            }
        }
        let key = predicate.canonical_key();
        if let Some(hit) = lock(&self.predicate_bitmaps).get(&key) {
            self.metrics.add_predicate_cache_lookup(true);
            return Arc::clone(hit);
        }
        self.metrics.add_predicate_cache_lookup(false);
        // Evaluate outside the lock: concurrent misses on the same key
        // duplicate work harmlessly instead of serializing every planner
        // behind one evaluation.
        let bitmap = Arc::new(predicate.evaluate(&self.table, &self.indexes));
        lock(&self.predicate_bitmaps).insert(key, Arc::clone(&bitmap));
        bitmap
    }

    /// Drops every planning cache (predicate bitmaps, group plans,
    /// composite indexes). Purely a memory-pressure/benchmarking valve:
    /// the caches are repopulated on demand and carry no correctness
    /// state, since the underlying table is immutable.
    pub fn clear_plan_caches(&self) {
        lock(&self.predicate_bitmaps).clear();
        lock(&self.plans).clear();
        lock(&self.composites).clear();
    }

    /// The plan for `key`, served from the plan cache or built via
    /// `build` and cached.
    fn plan_for(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<Vec<(Value, RowSet)>, EngineError>,
    ) -> Result<Arc<CachedPlan>, EngineError> {
        if let Some(hit) = lock(&self.plans).get(&key) {
            self.metrics.add_plan_cache_lookup(true);
            return Ok(Arc::clone(hit));
        }
        self.metrics.add_plan_cache_lookup(false);
        let plan = Arc::new(CachedPlan { groups: build()? });
        lock(&self.plans).insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// `base ∧ predicate` as a [`RowSet`], `None` when the intersection is
    /// empty (the group contributes no aggregate — SQL `GROUP BY` over
    /// filtered rows). No predicate shares `base` zero-copy; filtered
    /// groups pick view vs materialization by [`VIEW_CUTOVER_DENSITY`].
    fn intersect_rows(&self, base: &Arc<Bitmap>, pred: Option<&Arc<Bitmap>>) -> Option<RowSet> {
        let Some(pred) = pred else {
            if base.count_ones() == 0 {
                return None;
            }
            return Some(RowSet::Bitmap(Arc::clone(base)));
        };
        let table_rows = self.table.row_count();
        let smaller = base.count_ones().min(pred.count_ones());
        if smaller.saturating_mul(VIEW_CUTOVER_DENSITY) <= table_rows {
            let mut positions = Vec::new();
            base.intersect_positions(pred, &mut positions);
            if positions.is_empty() {
                return None;
            }
            Some(RowSet::Positions {
                positions: Arc::new(positions),
                universe: table_rows,
            })
        } else {
            let bitmap = base.and(pred);
            if bitmap.count_ones() == 0 {
                return None;
            }
            Some(RowSet::Bitmap(Arc::new(bitmap)))
        }
    }

    /// Validates that `agg_col` exists and is numeric, returning its
    /// schema position.
    fn numeric_column(&self, agg_col: &str) -> Result<usize, EngineError> {
        let agg_idx = self
            .table
            .schema()
            .column_index(agg_col)
            .ok_or_else(|| EngineError::NoSuchColumn(agg_col.to_owned()))?;
        if self.table.schema().columns()[agg_idx].data_type == DataType::Str {
            return Err(EngineError::NotNumeric(agg_col.to_owned()));
        }
        Ok(agg_idx)
    }

    /// Materializes fresh handles over a (possibly cached) plan: shared
    /// row sets, fresh per-handle sampler state.
    fn handles_from_plan(&self, plan: &CachedPlan, agg_idx: usize) -> Vec<GroupHandle> {
        plan.groups
            .iter()
            .map(|(label, rows)| GroupHandle {
                label: label.clone(),
                agg_idx,
                table: Arc::clone(&self.table),
                sampler: BitmapSampler::from_rows(rows.clone()),
                metrics: Arc::clone(&self.metrics),
                faults: self.faults.clone(),
                rows_buf: Vec::new(),
            })
            .collect()
    }

    /// Builds one [`GroupHandle`] per distinct value of `group_col`
    /// (in index order), sampling `agg_col`, restricted to rows satisfying
    /// `predicate`.
    ///
    /// Groups emptied by the predicate are dropped — they contribute no
    /// aggregate, mirroring SQL `GROUP BY` semantics over filtered rows.
    ///
    /// Plans are served from the engine's caches (see the
    /// [planning-caches](NeedleTail#planning-caches) docs): repeat queries
    /// skip predicate evaluation and per-group intersection entirely, and
    /// unfiltered queries share the index's own bitmaps zero-copy. Handles
    /// from a cached plan draw **byte-identical** fixed-seed sample
    /// streams to cold-planned ones.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed or missing, or if
    /// `agg_col` is missing or non-numeric.
    pub fn group_handles(
        &self,
        group_col: &str,
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupHandle>, EngineError> {
        let agg_idx = self.numeric_column(agg_col)?;
        let key = PlanKey {
            multi: false,
            group_cols: vec![group_col.to_owned()],
            predicate: predicate.canonical_key(),
        };
        let plan = self.plan_for(key, || {
            let index = self
                .indexes
                .get(group_col)
                .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
            let pred_bitmap = match predicate {
                Predicate::True => None,
                p => Some(self.predicate_bitmap(p)),
            };
            let mut groups = Vec::with_capacity(index.distinct_count());
            for value in index.values() {
                let base = index
                    .shared_bitmap_for(&value)
                    // lint: allow(panic) — values() enumerates exactly the keys
                    // shared_bitmap_for reads; a miss is index corruption, and
                    // skipping it would silently drop a group from the answer
                    .expect("index lists only present values");
                if let Some(rows) = self.intersect_rows(base, pred_bitmap.as_ref()) {
                    groups.push((value, rows));
                }
            }
            Ok(groups)
        })?;
        Ok(self.handles_from_plan(&plan, agg_idx))
    }

    /// Builds one [`GroupHandle`] per cell of a multi-attribute group-by
    /// (§6.3.4), via a joint [`crate::composite::CompositeIndex`] over
    /// `group_cols`. Cell labels join the attribute values with `|`.
    ///
    /// The joint index is built once per column list and retained; cell
    /// plans go through the same plan cache and selectivity cutover as the
    /// single-attribute path, with the same byte-identical warm-plan
    /// guarantee.
    ///
    /// # Errors
    ///
    /// Returns an error if any column is missing or `agg_col` is
    /// non-numeric.
    pub fn group_handles_multi(
        &self,
        group_cols: &[&str],
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupHandle>, EngineError> {
        for col in group_cols {
            if self.table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn((*col).to_owned()));
            }
        }
        let agg_idx = self.numeric_column(agg_col)?;
        let owned_cols: Vec<String> = group_cols.iter().map(|c| (*c).to_owned()).collect();
        let key = PlanKey {
            multi: true,
            group_cols: owned_cols.clone(),
            predicate: predicate.canonical_key(),
        };
        let plan = self.plan_for(key, || {
            let joint = self.composite_index(&owned_cols, group_cols);
            let pred_bitmap = match predicate {
                Predicate::True => None,
                p => Some(self.predicate_bitmap(p)),
            };
            let mut groups = Vec::with_capacity(joint.cell_count());
            for cell in joint.cells() {
                let base = joint
                    .shared_bitmap_for(&cell)
                    // lint: allow(panic) — cells() enumerates exactly the keys
                    // shared_bitmap_for reads; a miss is index corruption, and
                    // skipping it would silently drop a cell from the answer
                    .expect("cell listed by index");
                if let Some(rows) = self.intersect_rows(base, pred_bitmap.as_ref()) {
                    let label = cell
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("|");
                    groups.push((Value::Str(label), rows));
                }
            }
            Ok(groups)
        })?;
        Ok(self.handles_from_plan(&plan, agg_idx))
    }

    /// The composite index over `cols`, built on first use and served from
    /// the engine's composite cache afterwards.
    fn composite_index(&self, cols: &[String], raw_cols: &[&str]) -> Arc<CompositeIndex> {
        if let Some(hit) = lock(&self.composites).get(&cols.to_vec()) {
            self.metrics.add_composite_cache_lookup(true);
            return Arc::clone(hit);
        }
        self.metrics.add_composite_cache_lookup(false);
        // Built outside the lock: concurrent first builds duplicate work
        // harmlessly rather than blocking every planner.
        let built = Arc::new(CompositeIndex::build(&self.table, raw_cols));
        lock(&self.composites).insert(cols.to_vec(), Arc::clone(&built));
        built
    }

    /// Builds one [`SizedGroupHandle`] per distinct value of `group_col`
    /// (in index order), sampling `agg_col` paired with unbiased
    /// normalized-size estimates — the engine-side source for the
    /// unknown-group-size `SUM`/`COUNT` algorithms (Algorithm 5). Size
    /// probes are answered by the in-memory bitmaps, so only the member
    /// draw costs a retrieval.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed or missing, or if
    /// `agg_col` is missing or non-numeric.
    pub fn sized_group_handles(
        &self,
        group_col: &str,
        agg_col: &str,
    ) -> Result<Vec<SizedGroupHandle>, EngineError> {
        let index = self
            .indexes
            .get(group_col)
            .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
        let agg_idx = self
            .table
            .schema()
            .column_index(agg_col)
            .ok_or_else(|| EngineError::NoSuchColumn(agg_col.to_owned()))?;
        if self.table.schema().columns()[agg_idx].data_type == DataType::Str {
            return Err(EngineError::NotNumeric(agg_col.to_owned()));
        }
        let mut handles = Vec::with_capacity(index.distinct_count());
        for value in index.values() {
            let bitmap = Arc::clone(
                index
                    .shared_bitmap_for(&value)
                    // lint: allow(panic) — values() enumerates exactly the keys
                    // shared_bitmap_for reads; a miss is index corruption, and
                    // skipping it would silently drop a group from the answer
                    .expect("index lists only present values"),
            );
            handles.push(SizedGroupHandle {
                label: value,
                agg_idx,
                table: Arc::clone(&self.table),
                sampler: SizeEstimatingSampler::shared(bitmap, self.table.row_count()),
                metrics: Arc::clone(&self.metrics),
                faults: self.faults.clone(),
                pairs_buf: Vec::new(),
            });
        }
        Ok(handles)
    }

    /// Builds a [`SizeEstimatingSampler`] for one group (Algorithm 5
    /// support: unknown-group-size `SUM`).
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed.
    pub fn size_estimating_sampler(
        &self,
        group_col: &str,
        group_value: &Value,
    ) -> Result<SizeEstimatingSampler, EngineError> {
        let index = self
            .indexes
            .get(group_col)
            .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
        Ok(match index.shared_bitmap_for(group_value) {
            Some(bitmap) => {
                SizeEstimatingSampler::shared(Arc::clone(bitmap), self.table.row_count())
            }
            None => SizeEstimatingSampler::new(
                Bitmap::zeros(self.table.row_count()),
                self.table.row_count(),
            ),
        })
    }

    /// Full sequential scan computing exact per-group aggregates, charging
    /// one scanned row per record to the metrics (the SCAN baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if either column is missing.
    pub fn scan(
        &self,
        group_col: &str,
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupAggregate>, EngineError> {
        for col in [group_col, agg_col] {
            if self.table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn(col.to_owned()));
            }
        }
        self.metrics.add_rows_scanned(self.table.row_count());
        Ok(scan_group_aggregates(
            &self.table,
            group_col,
            agg_col,
            predicate,
        ))
    }
}

/// A per-group random sampler handed out by the engine.
#[derive(Debug, Clone)]
pub struct GroupHandle {
    label: Value,
    agg_idx: usize,
    table: Arc<Table>,
    sampler: BitmapSampler,
    metrics: Arc<Metrics>,
    /// Fault injector captured from the engine at build time (see
    /// [`crate::fault`]); `None` means reads never fail.
    faults: Option<Arc<dyn FaultInjector>>,
    /// Reusable row-id buffer for the batch paths: together with the
    /// sampler's internal scratch arena this keeps batched draws free of
    /// per-batch heap allocation at steady state.
    rows_buf: Vec<u64>,
}

impl GroupHandle {
    /// The group-by value this handle samples from.
    #[must_use]
    pub fn label(&self) -> &Value {
        &self.label
    }

    /// Number of rows in the group (from the bitmap — no I/O).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.sampler.eligible()
    }

    /// Whether the group is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether an installed fault injector fails `row`, charging the
    /// dropped read. The draw itself already happened — RNG consumption is
    /// identical with and without faults, which is what keeps faulted runs
    /// replayable.
    fn read_faults(&self, row: u64) -> bool {
        let faulted = self
            .faults
            .as_ref()
            .is_some_and(|f| f.fails(FaultSite::RowRead, row));
        if faulted {
            self.metrics.add_faulted_reads(1);
        }
        faulted
    }

    /// Draws a uniformly random measure value with replacement. `None` for
    /// an empty group, or when an installed fault injector fails the
    /// sampled row's read.
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        let row = self.sampler.sample_with_replacement(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        if self.read_faults(row) {
            return None;
        }
        Some(self.table.float_value(row, self.agg_idx))
    }

    /// Draws the next measure value of a random permutation of the group
    /// (sampling without replacement); `None` once exhausted, or when an
    /// installed fault injector fails the sampled row's read.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let row = self.sampler.sample_without_replacement(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        if self.read_faults(row) {
            return None;
        }
        Some(self.table.float_value(row, self.agg_idx))
    }

    /// Draws `n` measure values with replacement in one batch, appending
    /// them to `out` in draw order; returns the number appended. The
    /// metrics sink is charged **one retrieval per sample** (a batch of
    /// `n` counts as `n` random samples, not 1), so cost accounting is
    /// identical to `n` single draws.
    pub fn sample_batch_with_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) -> usize {
        let mut rows = std::mem::take(&mut self.rows_buf);
        rows.clear();
        self.sampler
            .sample_batch_with_replacement(n, rng, &mut rows);
        let delivered = self.record_batch(&rows, out);
        self.rows_buf = rows;
        delivered
    }

    /// Draws up to `n` further values of the without-replacement
    /// permutation in one batch, appending them to `out` in draw order;
    /// returns the number appended (`< n` once the group is exhausted).
    /// Metrics are charged one retrieval per sample actually drawn.
    pub fn sample_batch_without_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) -> usize {
        let mut rows = std::mem::take(&mut self.rows_buf);
        rows.clear();
        self.sampler
            .sample_batch_without_replacement(n, rng, &mut rows);
        let delivered = self.record_batch(&rows, out);
        self.rows_buf = rows;
        delivered
    }

    /// Charges metrics for and materializes a batch of sampled rows,
    /// returning how many values were actually delivered — fewer than
    /// `rows.len()` when a fault injector drops reads.
    fn record_batch(&self, rows: &[u64], out: &mut Vec<f64>) -> usize {
        if rows.is_empty() {
            return 0;
        }
        self.metrics.add_random_samples(rows.len() as u64);
        self.metrics.add_index_probes(rows.len() as u64);
        match &self.faults {
            None => {
                out.extend(
                    rows.iter()
                        .map(|&r| self.table.float_value(r, self.agg_idx)),
                );
                rows.len()
            }
            Some(injector) => {
                let mut delivered = 0usize;
                for &row in rows {
                    if injector.fails(FaultSite::RowRead, row) {
                        self.metrics.add_faulted_reads(1);
                    } else {
                        out.push(self.table.float_value(row, self.agg_idx));
                        delivered += 1;
                    }
                }
                delivered
            }
        }
    }

    /// Restarts the without-replacement permutation (a fresh shuffle).
    pub fn reset_permutation(&mut self) {
        self.sampler.reset();
    }

    /// Captures the handle's without-replacement permutation state (see
    /// [`BitmapSampler::permutation_state`]) — the session-checkpoint hook.
    #[must_use]
    pub fn permutation_state(&self) -> (u64, Vec<(u64, u64)>) {
        self.sampler.permutation_state()
    }

    /// Restores permutation state captured by
    /// [`Self::permutation_state`], typically on a freshly planned handle
    /// during session resume.
    pub fn restore_permutation(&mut self, drawn: u64, entries: &[(u64, u64)]) {
        self.sampler.restore_permutation(drawn, entries);
    }

    /// Exact group mean (reads every member; test/verification aid).
    #[must_use]
    pub fn exact_mean(&self) -> Option<f64> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .sampler
            .rows()
            .iter_ones()
            .map(|row| self.table.float_value(row, self.agg_idx))
            .sum();
        Some(sum / n as f64)
    }
}

/// A per-group sampler pairing each measure-value draw with an unbiased
/// normalized group-size estimate `z` — the engine-side handle for the
/// unknown-group-size `SUM`/`COUNT` algorithms (Algorithm 5). Handed out by
/// [`NeedleTail::sized_group_handles`].
#[derive(Debug, Clone)]
pub struct SizedGroupHandle {
    label: Value,
    agg_idx: usize,
    table: Arc<Table>,
    sampler: SizeEstimatingSampler,
    metrics: Arc<Metrics>,
    /// Fault injector captured from the engine at build time (see
    /// [`crate::fault`]); `None` means reads never fail.
    faults: Option<Arc<dyn FaultInjector>>,
    /// Reusable `(row, z)` buffer for the batch path.
    pairs_buf: Vec<(u64, f64)>,
}

impl SizedGroupHandle {
    /// The group-by value this handle samples from.
    #[must_use]
    pub fn label(&self) -> &Value {
        &self.label
    }

    /// True group size from the bitmap (verification only — the estimating
    /// path never consults it).
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.sampler.eligible()
    }

    /// Draws `(x, z)`: a uniform random measure value and an independent
    /// `{0, 1}` estimate of the group's fraction of the relation. One
    /// retrieval is charged per draw; the size probe is answered by the
    /// in-memory bitmap for free.
    pub fn sample_with_size<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(f64, f64)> {
        let (row, z) = self.sampler.sample_with_size_estimate(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.fails(FaultSite::SizedRowRead, row))
        {
            self.metrics.add_faulted_reads(1);
            return None;
        }
        Some((self.table.float_value(row, self.agg_idx), z))
    }

    /// Draws `n` `(x, z)` pairs in one batch, appending them to `out` in
    /// draw order; returns the number appended (`0` for an empty group).
    /// The member ranks resolve through one sorted `select_many` sweep and
    /// the RNG is consumed identically to `n` single draws; metrics are
    /// charged one retrieval per sample, exactly as the single-draw path.
    pub fn sample_batch_with_size<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<(f64, f64)>,
    ) -> usize {
        let mut pairs = std::mem::take(&mut self.pairs_buf);
        pairs.clear();
        let got = self
            .sampler
            .sample_batch_with_size_estimate(n, rng, &mut pairs);
        let mut delivered = 0usize;
        if got > 0 {
            self.metrics.add_random_samples(got as u64);
            self.metrics.add_index_probes(got as u64);
            for &(row, z) in &pairs {
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.fails(FaultSite::SizedRowRead, row))
                {
                    self.metrics.add_faulted_reads(1);
                } else {
                    out.push((self.table.float_value(row, self.agg_idx), z));
                    delivered += 1;
                }
            }
        }
        self.pairs_buf = pairs;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::TableBuilder;
    use rand::SeedableRng;

    fn flights() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        // AA: mean 20 over 4 rows; JB: mean 50 over 2 rows; UA: mean 85.
        for (n, d) in [
            ("AA", 10.0),
            ("AA", 20.0),
            ("JB", 40.0),
            ("AA", 30.0),
            ("UA", 85.0),
            ("JB", 60.0),
            ("AA", 20.0),
        ] {
            b.push_row(vec![n.into(), d.into()]);
        }
        b.finish()
    }

    #[test]
    fn default_cache_capacities_are_pinned() {
        // The committed defaults are part of the serving contract:
        // changing them must be a deliberate decision, not a side effect.
        let defaults = CacheCapacities::default();
        assert_eq!(
            (defaults.predicate, defaults.plan, defaults.composite),
            (64, 64, 8)
        );
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        assert_eq!(engine.cache_capacities(), defaults);
    }

    #[test]
    fn builder_overrides_capacities_and_clamps_zero() {
        let engine = NeedleTail::builder(flights())
            .indexed_columns(&["name"])
            .cache_capacities(CacheCapacities {
                predicate: 3,
                plan: 0,
                composite: 5,
            })
            .build()
            .unwrap();
        let caps = engine.cache_capacities();
        assert_eq!((caps.predicate, caps.plan, caps.composite), (3, 1, 5));
        // The resized engine still plans and answers.
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        assert_eq!(handles.len(), 3);
    }

    #[test]
    fn builder_rejects_missing_index_column() {
        let err = NeedleTail::builder(flights())
            .indexed_columns(&["nope"])
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::NoSuchColumn("nope".to_owned()));
    }

    #[test]
    fn group_handles_cover_distinct_values() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        assert_eq!(handles.len(), 3);
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA", "JB", "UA"]);
        assert_eq!(handles[0].len(), 4);
        assert_eq!(handles[1].len(), 2);
        assert_eq!(handles[2].len(), 1);
    }

    #[test]
    fn exact_means_match_scan() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let scan = engine.scan("name", "delay", &Predicate::True).unwrap();
        for (h, s) in handles.iter().zip(&scan) {
            assert_eq!(h.label(), &s.group);
            assert!((h.exact_mean().unwrap() - s.mean().unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn without_replacement_mean_converges_exactly() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let aa = &mut handles[0];
        let mut sum = 0.0;
        let mut count = 0u32;
        while let Some(v) = aa.sample_without_replacement(&mut rng) {
            sum += v;
            count += 1;
        }
        assert_eq!(count, 4, "exhausts the group exactly");
        assert!((sum / 4.0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_restricts_groups() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::ge("delay", 30.0))
            .unwrap();
        // AA keeps 1 row (30), JB keeps both, UA keeps its row.
        assert_eq!(handles.len(), 3);
        assert_eq!(handles[0].len(), 1);
        assert!((handles[0].exact_mean().unwrap() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_can_drop_groups() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::ge("delay", 50.0))
            .unwrap();
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["JB", "UA"], "AA has no qualifying rows");
    }

    #[test]
    fn metrics_count_samples_and_scans() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let _ = handles[0].sample_with_replacement(&mut rng);
        }
        let _ = engine.scan("name", "delay", &Predicate::True).unwrap();
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.random_samples, 10);
        assert_eq!(snap.rows_scanned, 7);
    }

    #[test]
    fn metrics_count_batched_samples_per_sample_not_per_batch() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        // One batch of 10 with replacement must count as 10 retrievals.
        let got = handles[0].sample_batch_with_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 10);
        assert_eq!(engine.metrics().snapshot().random_samples, 10);
        // A truncated without-replacement batch counts only what was drawn:
        // group AA has 4 rows, so requesting 10 yields 4.
        engine.metrics().reset();
        out.clear();
        let got = handles[0].sample_batch_without_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 4);
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.random_samples, 4);
        assert_eq!(snap.index_probes, 4);
    }

    #[test]
    fn batched_handle_draws_match_single_draw_stream() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut h1 = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut h2 = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(77);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(77);
        let singles: Vec<f64> = (0..4)
            .map(|_| h1[0].sample_without_replacement(&mut rng1).unwrap())
            .collect();
        let mut batched = Vec::new();
        h2[0].sample_batch_without_replacement(4, &mut rng2, &mut batched);
        assert_eq!(batched, singles);
    }

    #[test]
    fn errors() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        assert_eq!(
            engine
                .group_handles("delay", "delay", &Predicate::True)
                .err(),
            Some(EngineError::NotIndexed("delay".into()))
        );
        assert_eq!(
            engine.group_handles("name", "nope", &Predicate::True).err(),
            Some(EngineError::NoSuchColumn("nope".into()))
        );
        assert_eq!(
            engine.group_handles("name", "name", &Predicate::True).err(),
            Some(EngineError::NotNumeric("name".into()))
        );
        assert!(NeedleTail::new(flights(), &["nope"]).is_err());
    }

    #[test]
    fn column_maxima_computed_once_and_cached() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        // Numeric column: the lazily computed max matches the scanned max,
        // and repeated requests serve the cached value.
        assert_eq!(engine.column_max("delay"), Some(85.0));
        assert_eq!(engine.column_max("delay"), Some(85.0));
        // String and unknown columns report no maximum.
        assert_eq!(engine.column_max("name"), None);
        assert_eq!(engine.column_max("nope"), None);
        // Empty tables have no observed maximum either.
        let empty = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]))
        .finish();
        let engine = NeedleTail::new(empty, &["name"]).unwrap();
        assert_eq!(engine.column_max("delay"), None);
    }

    /// A larger skewed table for the cache/cutover tests: 4096 rows, four
    /// airlines with very different sizes, a numeric year column to filter
    /// on. "UA" is rare enough that `UA ∧ anything` takes the
    /// intersection-view path; "AA" is dense enough to materialize.
    fn skewed() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("year", DataType::Int),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for i in 0..4096u32 {
            let name = match i % 64 {
                0 => "UA",
                1..=7 => "JB",
                _ => "AA",
            };
            let year = 2000 + i64::from(i % 4);
            let delay = f64::from(i % 97);
            b.push_row(vec![name.into(), Value::Int(year), delay.into()]);
        }
        b.finish()
    }

    /// Oracle: per-group filtered means via the row-level predicate path
    /// (scan order is first-encounter, so key by label).
    fn scan_means(
        engine: &NeedleTail,
        predicate: &Predicate,
    ) -> std::collections::BTreeMap<String, f64> {
        engine
            .scan("name", "delay", predicate)
            .unwrap()
            .iter()
            .filter_map(|g| g.mean().map(|m| (g.group.to_string(), m)))
            .collect()
    }

    #[test]
    fn filtered_handles_match_scan_across_cutover() {
        // Both sides of the selectivity cutover (view for rare UA, fused
        // materialization for dense AA) must agree exactly with the SCAN
        // oracle on membership and means.
        let engine = NeedleTail::new(skewed(), &["name", "year"]).unwrap();
        for predicate in [
            Predicate::eq("year", Value::Int(2001)),
            Predicate::ge("delay", 90.0),
            Predicate::eq("year", Value::Int(2000)).and(Predicate::le("delay", 10.0)),
        ] {
            let handles = engine.group_handles("name", "delay", &predicate).unwrap();
            let expect = scan_means(&engine, &predicate);
            assert_eq!(handles.len(), expect.len(), "under {predicate:?}");
            for h in &handles {
                let mean = expect[&h.label().to_string()];
                assert!(
                    (h.exact_mean().unwrap() - mean).abs() < 1e-9,
                    "group {} under {predicate:?}",
                    h.label()
                );
            }
        }
    }

    #[test]
    fn cached_plans_replay_cold_draws_exactly() {
        // The first call plans cold; the second hits the plan cache. Both
        // handle sets must produce byte-identical fixed-seed draw streams.
        let engine = NeedleTail::new(skewed(), &["name", "year"]).unwrap();
        let predicate = Predicate::eq("year", Value::Int(2002)).and(Predicate::ge("delay", 3.0));
        let mut cold = engine.group_handles("name", "delay", &predicate).unwrap();
        let mut warm = engine.group_handles("name", "delay", &predicate).unwrap();
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter_mut().zip(warm.iter_mut()) {
            assert_eq!(c.label(), w.label());
            assert_eq!(c.len(), w.len());
            let mut rng_c = rand::rngs::StdRng::seed_from_u64(99);
            let mut rng_w = rand::rngs::StdRng::seed_from_u64(99);
            let mut out_c = Vec::new();
            let mut out_w = Vec::new();
            c.sample_batch_with_replacement(64, &mut rng_c, &mut out_c);
            w.sample_batch_with_replacement(64, &mut rng_w, &mut out_w);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_c), bits(&out_w), "draws must be bit-identical");
        }
        // And a cache clear changes nothing observable either.
        engine.clear_plan_caches();
        let recold = engine.group_handles("name", "delay", &predicate).unwrap();
        assert_eq!(recold.len(), cold.len());
        for (c, r) in cold.iter().zip(&recold) {
            assert_eq!(c.label(), r.label());
            assert_eq!(c.len(), r.len());
        }
    }

    #[test]
    fn predicate_bitmap_cache_shares_equivalent_spellings() {
        let engine = NeedleTail::new(skewed(), &["name", "year"]).unwrap();
        let a = Predicate::eq("year", Value::Int(2001)).and(Predicate::ge("delay", 10.0));
        let b = Predicate::ge("delay", 10.0).and(Predicate::eq("year", Value::Int(2001)));
        let bm_a = engine.predicate_bitmap(&a);
        let bm_b = engine.predicate_bitmap(&b);
        assert!(
            Arc::ptr_eq(&bm_a, &bm_b),
            "equivalent spellings must share one cached bitmap"
        );
        // A bare indexed equality is served from the index itself.
        let eq = Predicate::eq("name", "AA");
        let bm_eq = engine.predicate_bitmap(&eq);
        let shared = engine
            .index("name")
            .unwrap()
            .shared_bitmap_for(&"AA".into())
            .unwrap();
        assert!(Arc::ptr_eq(&bm_eq, shared), "Eq must be zero-copy");
        assert_eq!(
            bm_a.iter_ones().collect::<Vec<_>>(),
            a.evaluate(engine.table(), engine.indexes())
                .iter_ones()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unfiltered_handles_share_index_bitmaps_zero_copy() {
        let engine = NeedleTail::new(skewed(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let index = engine.index("name").unwrap();
        for h in &handles {
            let shared = index.shared_bitmap_for(h.label()).unwrap();
            match h.sampler.rows() {
                crate::sampler::RowSet::Bitmap(bm) => {
                    assert!(
                        Arc::ptr_eq(bm, shared),
                        "True-predicate handles must alias the index bitmap"
                    );
                }
                other => panic!("expected shared bitmap, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_group_by_handles() {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("origin", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for (n, o, d) in [
            ("AA", "BOS", 10.0),
            ("AA", "SFO", 20.0),
            ("JB", "BOS", 30.0),
            ("AA", "BOS", 50.0),
        ] {
            b.push_row(vec![n.into(), o.into(), d.into()]);
        }
        let engine = NeedleTail::new(b.finish(), &["name"]).unwrap();
        let handles = engine
            .group_handles_multi(&["name", "origin"], "delay", &Predicate::True)
            .unwrap();
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA|BOS", "AA|SFO", "JB|BOS"]);
        assert_eq!(handles[0].len(), 2);
        assert!((handles[0].exact_mean().unwrap() - 30.0).abs() < 1e-12);
        // Predicate narrows cells and can drop them.
        let filtered = engine
            .group_handles_multi(&["name", "origin"], "delay", &Predicate::ge("delay", 25.0))
            .unwrap();
        let labels: Vec<String> = filtered.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA|BOS", "JB|BOS"]);
    }

    #[test]
    fn multi_group_by_nontrivial_predicates_and_cached_reuse() {
        // Joint cells under a conjunction of an equality and a range,
        // checked cell by cell against the row-level predicate oracle —
        // including cells the filter empties entirely.
        let engine = NeedleTail::new(skewed(), &["name", "year"]).unwrap();
        let predicate = Predicate::eq("year", Value::Int(2000)).and(Predicate::ge("delay", 60.0));
        let cold = engine
            .group_handles_multi(&["name", "year"], "delay", &predicate)
            .unwrap();
        // Oracle: every (name, year) pair with its qualifying rows.
        let table = engine.table();
        let mut expect: std::collections::BTreeMap<String, Vec<u64>> =
            std::collections::BTreeMap::new();
        for row in 0..table.row_count() {
            if predicate.matches_row(table, row) {
                let label = format!("{}|{}", table.value(row, 0), table.value(row, 1));
                expect.entry(label).or_default().push(row);
            }
        }
        // Cells with no qualifying rows (every 2001-2003 cell, and any
        // name whose 2000 rows all have delay < 60) are dropped.
        assert_eq!(cold.len(), expect.len());
        assert!(
            cold.len() < 12,
            "the filter must empty the off-year cells (got {})",
            cold.len()
        );
        for h in &cold {
            let rows = &expect[&h.label().to_string()];
            assert_eq!(h.len(), rows.len() as u64, "cell {}", h.label());
            let mean: f64 =
                rows.iter().map(|&r| table.float_value(r, 2)).sum::<f64>() / rows.len() as f64;
            assert!((h.exact_mean().unwrap() - mean).abs() < 1e-9);
        }
        // Cached reuse: the second identical call (plan-cache hit, joint
        // index reused) replays cold fixed-seed draws bit for bit.
        let mut warm = engine
            .group_handles_multi(&["name", "year"], "delay", &predicate)
            .unwrap();
        let mut cold = cold;
        for (c, w) in cold.iter_mut().zip(warm.iter_mut()) {
            assert_eq!(c.label(), w.label());
            let mut rng_c = rand::rngs::StdRng::seed_from_u64(7);
            let mut rng_w = rand::rngs::StdRng::seed_from_u64(7);
            let mut out_c = Vec::new();
            let mut out_w = Vec::new();
            c.sample_batch_without_replacement(16, &mut rng_c, &mut out_c);
            w.sample_batch_without_replacement(16, &mut rng_w, &mut out_w);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_c), bits(&out_w));
        }
        // A predicate that empties *every* cell yields no handles.
        let none = engine
            .group_handles_multi(&["name", "year"], "delay", &Predicate::ge("delay", 1e9))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn sized_group_handles_batch_matches_single_stream() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let h1 = engine.sized_group_handles("name", "delay").unwrap();
        let mut h2 = engine.sized_group_handles("name", "delay").unwrap();
        assert_eq!(h1.len(), 3);
        assert_eq!(h1[0].label().to_string(), "AA");
        assert_eq!(h1[0].eligible(), 4);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(21);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(21);
        let singles: Vec<(f64, f64)> = (0..50)
            .map(|_| h1[0].sample_with_size(&mut rng1).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = h2[0].sample_batch_with_size(50, &mut rng2, &mut batched);
        assert_eq!(got, 50);
        assert_eq!(batched, singles, "sized batch must replay single stream");
        // Every drawn value belongs to group AA.
        assert!(batched
            .iter()
            .all(|&(x, _)| [10.0, 20.0, 30.0].contains(&x)));
        // Metrics: one retrieval per sample, single and batched alike.
        assert_eq!(engine.metrics().snapshot().random_samples, 100);
    }

    #[test]
    fn sized_group_handles_errors() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        assert_eq!(
            engine.sized_group_handles("delay", "delay").err(),
            Some(EngineError::NotIndexed("delay".into()))
        );
        assert_eq!(
            engine.sized_group_handles("name", "nope").err(),
            Some(EngineError::NoSuchColumn("nope".into()))
        );
        assert_eq!(
            engine.sized_group_handles("name", "name").err(),
            Some(EngineError::NotNumeric("name".into()))
        );
    }

    #[test]
    fn size_estimating_sampler_sees_true_fraction() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let s = engine
            .size_estimating_sampler("name", &"AA".into())
            .unwrap();
        assert_eq!(s.eligible(), 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut z_sum = 0.0;
        let draws = 20_000;
        for _ in 0..draws {
            let (_, z) = s.sample_with_size_estimate(&mut rng).unwrap();
            z_sum += z;
        }
        let frac = z_sum / f64::from(draws);
        assert!((frac - 4.0 / 7.0).abs() < 0.02, "fraction {frac}");
    }
}
