//! The NEEDLETAIL engine façade.
//!
//! [`NeedleTail`] owns a loaded [`Table`], builds bitmap indexes over the
//! requested attributes, and hands out per-group [`GroupHandle`]s: samplers
//! that return uniformly random measure values from one group (optionally
//! intersected with an ad-hoc predicate), with every retrieval counted in
//! the shared [`Metrics`]. This is the sampling engine the query-processing
//! algorithms of `rapidviz-core` plug into — §2.2's "use the index to get an
//! additional sample of Y at random from any group S_i".

use crate::bitmap::Bitmap;
use crate::index::BitmapIndex;
use crate::metrics::Metrics;
use crate::predicate::Predicate;
use crate::sampler::{BitmapSampler, SizeEstimatingSampler};
use crate::scan::{scan_group_aggregates, GroupAggregate};
use crate::schema::DataType;
use crate::table::Table;
use crate::value::Value;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The named column does not exist.
    NoSuchColumn(String),
    /// The named column is not indexed and the operation needs an index.
    NotIndexed(String),
    /// The measure column is not numeric.
    NotNumeric(String),
    /// The requested combination of query options is not supported (e.g.
    /// an algorithm override on an aggregate with a dedicated algorithm).
    Unsupported(String),
    /// The query specification itself is malformed — a required clause is
    /// missing (no measure, no group-by). Distinct from
    /// [`EngineError::NoSuchColumn`]: no column was named at all, so no
    /// sentinel "column name" is fabricated for the message.
    InvalidQuery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchColumn(c) => write!(f, "no column named {c:?}"),
            EngineError::NotIndexed(c) => write!(f, "column {c:?} is not indexed"),
            EngineError::NotNumeric(c) => write!(f, "column {c:?} is not numeric"),
            EngineError::Unsupported(what) => write!(f, "unsupported query: {what}"),
            EngineError::InvalidQuery(what) => write!(f, "invalid query: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The sampling engine: a table plus its bitmap indexes.
///
/// ```
/// use rapidviz_needletail::{NeedleTail, Predicate, read_csv, CsvOptions};
/// use rand::SeedableRng;
///
/// let csv = "name,delay\nAA,30\nJB,10\nAA,50\nJB,20\n";
/// let table = read_csv(csv, &CsvOptions::default()).unwrap();
/// let engine = NeedleTail::new(table, &["name"]).unwrap();
///
/// // Exact aggregates via the SCAN path...
/// let aggs = engine.scan("name", "delay", &Predicate::True).unwrap();
/// assert_eq!(aggs[0].mean(), Some(40.0)); // AA
///
/// // ...or random per-group samples via the bitmap indexes.
/// let handles = engine.group_handles("name", "delay", &Predicate::True).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = handles[0].sample_with_replacement(&mut rng).unwrap();
/// assert!(x == 30.0 || x == 50.0);
/// ```
#[derive(Debug)]
pub struct NeedleTail {
    table: Arc<Table>,
    indexes: HashMap<String, BitmapIndex>,
    metrics: Arc<Metrics>,
    /// Per-column observed maxima (schema order; `None` for string columns
    /// and empty tables), each computed lazily on its first
    /// [`NeedleTail::column_max`] request and cached for the engine's
    /// lifetime — bound inference during query planning amortizes to O(1)
    /// instead of a full table scan per query, and columns never queried
    /// (or queries that always supply an explicit bound) cost nothing.
    column_maxima: Vec<std::sync::OnceLock<Option<f64>>>,
}

impl NeedleTail {
    /// Loads a table and builds bitmap indexes over `indexed_columns`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchColumn`] if an index target is missing.
    pub fn new(table: Table, indexed_columns: &[&str]) -> Result<Self, EngineError> {
        for col in indexed_columns {
            if table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn((*col).to_owned()));
            }
        }
        let indexes = indexed_columns
            .iter()
            .map(|c| ((*c).to_owned(), BitmapIndex::build(&table, c)))
            .collect();
        let column_maxima = (0..table.schema().columns().len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        Ok(Self {
            table: Arc::new(table),
            indexes,
            metrics: Arc::new(Metrics::new()),
            column_maxima,
        })
    }

    /// The observed maximum of a numeric column (`None` for string
    /// columns, unknown columns, and empty tables). The first request for
    /// a column pays one sequential scan; the result is cached in the
    /// engine for every later call, so bound inference during query
    /// planning amortizes to O(1) instead of a full table scan per query.
    #[must_use]
    pub fn column_max(&self, column: &str) -> Option<f64> {
        let idx = self.table.schema().column_index(column)?;
        *self.column_maxima[idx].get_or_init(|| {
            let rows = self.table.row_count();
            if self.table.schema().columns()[idx].data_type == DataType::Str || rows == 0 {
                return None;
            }
            Some(
                (0..rows)
                    .map(|row| self.table.float_value(row, idx))
                    .fold(f64::NEG_INFINITY, f64::max),
            )
        })
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The shared metrics sink.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The index over `column`, if built.
    #[must_use]
    pub fn index(&self, column: &str) -> Option<&BitmapIndex> {
        self.indexes.get(column)
    }

    /// All indexes, for predicate evaluation.
    #[must_use]
    pub fn indexes(&self) -> &HashMap<String, BitmapIndex> {
        &self.indexes
    }

    /// Builds one [`GroupHandle`] per distinct value of `group_col`
    /// (in index order), sampling `agg_col`, restricted to rows satisfying
    /// `predicate`.
    ///
    /// Groups emptied by the predicate are dropped — they contribute no
    /// aggregate, mirroring SQL `GROUP BY` semantics over filtered rows.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed or missing, or if
    /// `agg_col` is missing or non-numeric.
    pub fn group_handles(
        &self,
        group_col: &str,
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupHandle>, EngineError> {
        let index = self
            .indexes
            .get(group_col)
            .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
        let agg_idx = self
            .table
            .schema()
            .column_index(agg_col)
            .ok_or_else(|| EngineError::NoSuchColumn(agg_col.to_owned()))?;
        if self.table.schema().columns()[agg_idx].data_type == DataType::Str {
            return Err(EngineError::NotNumeric(agg_col.to_owned()));
        }
        let pred_bitmap = match predicate {
            Predicate::True => None,
            p => Some(p.evaluate(&self.table, &self.indexes)),
        };
        let mut handles = Vec::with_capacity(index.distinct_count());
        for value in index.values() {
            let base = index
                .bitmap_for(&value)
                .expect("index lists only present values");
            let bitmap = match &pred_bitmap {
                None => base.clone(),
                Some(p) => base.and(p),
            };
            if bitmap.count_ones() == 0 {
                continue;
            }
            handles.push(GroupHandle {
                label: value,
                agg_idx,
                table: Arc::clone(&self.table),
                sampler: BitmapSampler::new(bitmap),
                metrics: Arc::clone(&self.metrics),
                rows_buf: Vec::new(),
            });
        }
        Ok(handles)
    }

    /// Builds one [`GroupHandle`] per cell of a multi-attribute group-by
    /// (§6.3.4), via a joint [`crate::composite::CompositeIndex`] over
    /// `group_cols`. Cell labels join the attribute values with `|`.
    ///
    /// # Errors
    ///
    /// Returns an error if any column is missing or `agg_col` is
    /// non-numeric.
    pub fn group_handles_multi(
        &self,
        group_cols: &[&str],
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupHandle>, EngineError> {
        for col in group_cols {
            if self.table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn((*col).to_owned()));
            }
        }
        let agg_idx = self
            .table
            .schema()
            .column_index(agg_col)
            .ok_or_else(|| EngineError::NoSuchColumn(agg_col.to_owned()))?;
        if self.table.schema().columns()[agg_idx].data_type == DataType::Str {
            return Err(EngineError::NotNumeric(agg_col.to_owned()));
        }
        let joint = crate::composite::CompositeIndex::build(&self.table, group_cols);
        let pred_bitmap = match predicate {
            Predicate::True => None,
            p => Some(p.evaluate(&self.table, &self.indexes)),
        };
        let mut handles = Vec::with_capacity(joint.cell_count());
        for cell in joint.cells() {
            let base = joint.bitmap_for(&cell).expect("cell listed by index");
            let bitmap = match &pred_bitmap {
                None => base.clone(),
                Some(p) => base.and(p),
            };
            if bitmap.count_ones() == 0 {
                continue;
            }
            let label = cell
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("|");
            handles.push(GroupHandle {
                label: Value::Str(label),
                agg_idx,
                table: Arc::clone(&self.table),
                sampler: BitmapSampler::new(bitmap),
                metrics: Arc::clone(&self.metrics),
                rows_buf: Vec::new(),
            });
        }
        Ok(handles)
    }

    /// Builds one [`SizedGroupHandle`] per distinct value of `group_col`
    /// (in index order), sampling `agg_col` paired with unbiased
    /// normalized-size estimates — the engine-side source for the
    /// unknown-group-size `SUM`/`COUNT` algorithms (Algorithm 5). Size
    /// probes are answered by the in-memory bitmaps, so only the member
    /// draw costs a retrieval.
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed or missing, or if
    /// `agg_col` is missing or non-numeric.
    pub fn sized_group_handles(
        &self,
        group_col: &str,
        agg_col: &str,
    ) -> Result<Vec<SizedGroupHandle>, EngineError> {
        let index = self
            .indexes
            .get(group_col)
            .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
        let agg_idx = self
            .table
            .schema()
            .column_index(agg_col)
            .ok_or_else(|| EngineError::NoSuchColumn(agg_col.to_owned()))?;
        if self.table.schema().columns()[agg_idx].data_type == DataType::Str {
            return Err(EngineError::NotNumeric(agg_col.to_owned()));
        }
        let mut handles = Vec::with_capacity(index.distinct_count());
        for value in index.values() {
            let bitmap = index
                .bitmap_for(&value)
                .expect("index lists only present values")
                .clone();
            handles.push(SizedGroupHandle {
                label: value,
                agg_idx,
                table: Arc::clone(&self.table),
                sampler: SizeEstimatingSampler::new(bitmap, self.table.row_count()),
                metrics: Arc::clone(&self.metrics),
                pairs_buf: Vec::new(),
            });
        }
        Ok(handles)
    }

    /// Builds a [`SizeEstimatingSampler`] for one group (Algorithm 5
    /// support: unknown-group-size `SUM`).
    ///
    /// # Errors
    ///
    /// Returns an error if `group_col` is unindexed.
    pub fn size_estimating_sampler(
        &self,
        group_col: &str,
        group_value: &Value,
    ) -> Result<SizeEstimatingSampler, EngineError> {
        let index = self
            .indexes
            .get(group_col)
            .ok_or_else(|| EngineError::NotIndexed(group_col.to_owned()))?;
        let bitmap = index
            .bitmap_for(group_value)
            .cloned()
            .unwrap_or_else(|| Bitmap::zeros(self.table.row_count()));
        Ok(SizeEstimatingSampler::new(bitmap, self.table.row_count()))
    }

    /// Full sequential scan computing exact per-group aggregates, charging
    /// one scanned row per record to the metrics (the SCAN baseline).
    ///
    /// # Errors
    ///
    /// Returns an error if either column is missing.
    pub fn scan(
        &self,
        group_col: &str,
        agg_col: &str,
        predicate: &Predicate,
    ) -> Result<Vec<GroupAggregate>, EngineError> {
        for col in [group_col, agg_col] {
            if self.table.schema().column_index(col).is_none() {
                return Err(EngineError::NoSuchColumn(col.to_owned()));
            }
        }
        self.metrics.add_rows_scanned(self.table.row_count());
        Ok(scan_group_aggregates(
            &self.table,
            group_col,
            agg_col,
            predicate,
        ))
    }
}

/// A per-group random sampler handed out by the engine.
#[derive(Debug, Clone)]
pub struct GroupHandle {
    label: Value,
    agg_idx: usize,
    table: Arc<Table>,
    sampler: BitmapSampler,
    metrics: Arc<Metrics>,
    /// Reusable row-id buffer for the batch paths: together with the
    /// sampler's internal scratch arena this keeps batched draws free of
    /// per-batch heap allocation at steady state.
    rows_buf: Vec<u64>,
}

impl GroupHandle {
    /// The group-by value this handle samples from.
    #[must_use]
    pub fn label(&self) -> &Value {
        &self.label
    }

    /// Number of rows in the group (from the bitmap — no I/O).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.sampler.eligible()
    }

    /// Whether the group is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws a uniformly random measure value with replacement.
    pub fn sample_with_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        let row = self.sampler.sample_with_replacement(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        Some(self.table.float_value(row, self.agg_idx))
    }

    /// Draws the next measure value of a random permutation of the group
    /// (sampling without replacement); `None` once exhausted.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<f64> {
        let row = self.sampler.sample_without_replacement(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        Some(self.table.float_value(row, self.agg_idx))
    }

    /// Draws `n` measure values with replacement in one batch, appending
    /// them to `out` in draw order; returns the number appended. The
    /// metrics sink is charged **one retrieval per sample** (a batch of
    /// `n` counts as `n` random samples, not 1), so cost accounting is
    /// identical to `n` single draws.
    pub fn sample_batch_with_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) -> usize {
        let mut rows = std::mem::take(&mut self.rows_buf);
        rows.clear();
        let got = self
            .sampler
            .sample_batch_with_replacement(n, rng, &mut rows);
        self.record_batch(&rows, out);
        self.rows_buf = rows;
        got
    }

    /// Draws up to `n` further values of the without-replacement
    /// permutation in one batch, appending them to `out` in draw order;
    /// returns the number appended (`< n` once the group is exhausted).
    /// Metrics are charged one retrieval per sample actually drawn.
    pub fn sample_batch_without_replacement<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) -> usize {
        let mut rows = std::mem::take(&mut self.rows_buf);
        rows.clear();
        let got = self
            .sampler
            .sample_batch_without_replacement(n, rng, &mut rows);
        self.record_batch(&rows, out);
        self.rows_buf = rows;
        got
    }

    /// Charges metrics for and materializes a batch of sampled rows.
    fn record_batch(&self, rows: &[u64], out: &mut Vec<f64>) {
        if rows.is_empty() {
            return;
        }
        self.metrics.add_random_samples(rows.len() as u64);
        self.metrics.add_index_probes(rows.len() as u64);
        out.extend(
            rows.iter()
                .map(|&r| self.table.float_value(r, self.agg_idx)),
        );
    }

    /// Restarts the without-replacement permutation (a fresh shuffle).
    pub fn reset_permutation(&mut self) {
        self.sampler.reset();
    }

    /// Exact group mean (reads every member; test/verification aid).
    #[must_use]
    pub fn exact_mean(&self) -> Option<f64> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let sum: f64 = self
            .sampler
            .bitmap()
            .iter_ones()
            .map(|row| self.table.float_value(row, self.agg_idx))
            .sum();
        Some(sum / n as f64)
    }
}

/// A per-group sampler pairing each measure-value draw with an unbiased
/// normalized group-size estimate `z` — the engine-side handle for the
/// unknown-group-size `SUM`/`COUNT` algorithms (Algorithm 5). Handed out by
/// [`NeedleTail::sized_group_handles`].
#[derive(Debug, Clone)]
pub struct SizedGroupHandle {
    label: Value,
    agg_idx: usize,
    table: Arc<Table>,
    sampler: SizeEstimatingSampler,
    metrics: Arc<Metrics>,
    /// Reusable `(row, z)` buffer for the batch path.
    pairs_buf: Vec<(u64, f64)>,
}

impl SizedGroupHandle {
    /// The group-by value this handle samples from.
    #[must_use]
    pub fn label(&self) -> &Value {
        &self.label
    }

    /// True group size from the bitmap (verification only — the estimating
    /// path never consults it).
    #[must_use]
    pub fn eligible(&self) -> u64 {
        self.sampler.eligible()
    }

    /// Draws `(x, z)`: a uniform random measure value and an independent
    /// `{0, 1}` estimate of the group's fraction of the relation. One
    /// retrieval is charged per draw; the size probe is answered by the
    /// in-memory bitmap for free.
    pub fn sample_with_size<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(f64, f64)> {
        let (row, z) = self.sampler.sample_with_size_estimate(rng)?;
        self.metrics.add_random_samples(1);
        self.metrics.add_index_probes(1);
        Some((self.table.float_value(row, self.agg_idx), z))
    }

    /// Draws `n` `(x, z)` pairs in one batch, appending them to `out` in
    /// draw order; returns the number appended (`0` for an empty group).
    /// The member ranks resolve through one sorted `select_many` sweep and
    /// the RNG is consumed identically to `n` single draws; metrics are
    /// charged one retrieval per sample, exactly as the single-draw path.
    pub fn sample_batch_with_size<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
        out: &mut Vec<(f64, f64)>,
    ) -> usize {
        let mut pairs = std::mem::take(&mut self.pairs_buf);
        pairs.clear();
        let got = self
            .sampler
            .sample_batch_with_size_estimate(n, rng, &mut pairs);
        if got > 0 {
            self.metrics.add_random_samples(got as u64);
            self.metrics.add_index_probes(got as u64);
            out.extend(
                pairs
                    .iter()
                    .map(|&(row, z)| (self.table.float_value(row, self.agg_idx), z)),
            );
        }
        self.pairs_buf = pairs;
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::table::TableBuilder;
    use rand::SeedableRng;

    fn flights() -> Table {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        // AA: mean 20 over 4 rows; JB: mean 50 over 2 rows; UA: mean 85.
        for (n, d) in [
            ("AA", 10.0),
            ("AA", 20.0),
            ("JB", 40.0),
            ("AA", 30.0),
            ("UA", 85.0),
            ("JB", 60.0),
            ("AA", 20.0),
        ] {
            b.push_row(vec![n.into(), d.into()]);
        }
        b.finish()
    }

    #[test]
    fn group_handles_cover_distinct_values() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        assert_eq!(handles.len(), 3);
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA", "JB", "UA"]);
        assert_eq!(handles[0].len(), 4);
        assert_eq!(handles[1].len(), 2);
        assert_eq!(handles[2].len(), 1);
    }

    #[test]
    fn exact_means_match_scan() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let scan = engine.scan("name", "delay", &Predicate::True).unwrap();
        for (h, s) in handles.iter().zip(&scan) {
            assert_eq!(h.label(), &s.group);
            assert!((h.exact_mean().unwrap() - s.mean().unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn without_replacement_mean_converges_exactly() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let aa = &mut handles[0];
        let mut sum = 0.0;
        let mut count = 0u32;
        while let Some(v) = aa.sample_without_replacement(&mut rng) {
            sum += v;
            count += 1;
        }
        assert_eq!(count, 4, "exhausts the group exactly");
        assert!((sum / 4.0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_restricts_groups() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::ge("delay", 30.0))
            .unwrap();
        // AA keeps 1 row (30), JB keeps both, UA keeps its row.
        assert_eq!(handles.len(), 3);
        assert_eq!(handles[0].len(), 1);
        assert!((handles[0].exact_mean().unwrap() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn predicate_can_drop_groups() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::ge("delay", 50.0))
            .unwrap();
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["JB", "UA"], "AA has no qualifying rows");
    }

    #[test]
    fn metrics_count_samples_and_scans() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let _ = handles[0].sample_with_replacement(&mut rng);
        }
        let _ = engine.scan("name", "delay", &Predicate::True).unwrap();
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.random_samples, 10);
        assert_eq!(snap.rows_scanned, 7);
    }

    #[test]
    fn metrics_count_batched_samples_per_sample_not_per_batch() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut handles = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut out = Vec::new();
        // One batch of 10 with replacement must count as 10 retrievals.
        let got = handles[0].sample_batch_with_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 10);
        assert_eq!(engine.metrics().snapshot().random_samples, 10);
        // A truncated without-replacement batch counts only what was drawn:
        // group AA has 4 rows, so requesting 10 yields 4.
        engine.metrics().reset();
        out.clear();
        let got = handles[0].sample_batch_without_replacement(10, &mut rng, &mut out);
        assert_eq!(got, 4);
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.random_samples, 4);
        assert_eq!(snap.index_probes, 4);
    }

    #[test]
    fn batched_handle_draws_match_single_draw_stream() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let mut h1 = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut h2 = engine
            .group_handles("name", "delay", &Predicate::True)
            .unwrap();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(77);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(77);
        let singles: Vec<f64> = (0..4)
            .map(|_| h1[0].sample_without_replacement(&mut rng1).unwrap())
            .collect();
        let mut batched = Vec::new();
        h2[0].sample_batch_without_replacement(4, &mut rng2, &mut batched);
        assert_eq!(batched, singles);
    }

    #[test]
    fn errors() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        assert_eq!(
            engine
                .group_handles("delay", "delay", &Predicate::True)
                .err(),
            Some(EngineError::NotIndexed("delay".into()))
        );
        assert_eq!(
            engine.group_handles("name", "nope", &Predicate::True).err(),
            Some(EngineError::NoSuchColumn("nope".into()))
        );
        assert_eq!(
            engine.group_handles("name", "name", &Predicate::True).err(),
            Some(EngineError::NotNumeric("name".into()))
        );
        assert!(NeedleTail::new(flights(), &["nope"]).is_err());
    }

    #[test]
    fn column_maxima_computed_once_and_cached() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        // Numeric column: the lazily computed max matches the scanned max,
        // and repeated requests serve the cached value.
        assert_eq!(engine.column_max("delay"), Some(85.0));
        assert_eq!(engine.column_max("delay"), Some(85.0));
        // String and unknown columns report no maximum.
        assert_eq!(engine.column_max("name"), None);
        assert_eq!(engine.column_max("nope"), None);
        // Empty tables have no observed maximum either.
        let empty = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]))
        .finish();
        let engine = NeedleTail::new(empty, &["name"]).unwrap();
        assert_eq!(engine.column_max("delay"), None);
    }

    #[test]
    fn multi_group_by_handles() {
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("origin", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
        ]));
        for (n, o, d) in [
            ("AA", "BOS", 10.0),
            ("AA", "SFO", 20.0),
            ("JB", "BOS", 30.0),
            ("AA", "BOS", 50.0),
        ] {
            b.push_row(vec![n.into(), o.into(), d.into()]);
        }
        let engine = NeedleTail::new(b.finish(), &["name"]).unwrap();
        let handles = engine
            .group_handles_multi(&["name", "origin"], "delay", &Predicate::True)
            .unwrap();
        let labels: Vec<String> = handles.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA|BOS", "AA|SFO", "JB|BOS"]);
        assert_eq!(handles[0].len(), 2);
        assert!((handles[0].exact_mean().unwrap() - 30.0).abs() < 1e-12);
        // Predicate narrows cells and can drop them.
        let filtered = engine
            .group_handles_multi(&["name", "origin"], "delay", &Predicate::ge("delay", 25.0))
            .unwrap();
        let labels: Vec<String> = filtered.iter().map(|h| h.label().to_string()).collect();
        assert_eq!(labels, vec!["AA|BOS", "JB|BOS"]);
    }

    #[test]
    fn sized_group_handles_batch_matches_single_stream() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let h1 = engine.sized_group_handles("name", "delay").unwrap();
        let mut h2 = engine.sized_group_handles("name", "delay").unwrap();
        assert_eq!(h1.len(), 3);
        assert_eq!(h1[0].label().to_string(), "AA");
        assert_eq!(h1[0].eligible(), 4);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(21);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(21);
        let singles: Vec<(f64, f64)> = (0..50)
            .map(|_| h1[0].sample_with_size(&mut rng1).unwrap())
            .collect();
        let mut batched = Vec::new();
        let got = h2[0].sample_batch_with_size(50, &mut rng2, &mut batched);
        assert_eq!(got, 50);
        assert_eq!(batched, singles, "sized batch must replay single stream");
        // Every drawn value belongs to group AA.
        assert!(batched
            .iter()
            .all(|&(x, _)| [10.0, 20.0, 30.0].contains(&x)));
        // Metrics: one retrieval per sample, single and batched alike.
        assert_eq!(engine.metrics().snapshot().random_samples, 100);
    }

    #[test]
    fn sized_group_handles_errors() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        assert_eq!(
            engine.sized_group_handles("delay", "delay").err(),
            Some(EngineError::NotIndexed("delay".into()))
        );
        assert_eq!(
            engine.sized_group_handles("name", "nope").err(),
            Some(EngineError::NoSuchColumn("nope".into()))
        );
        assert_eq!(
            engine.sized_group_handles("name", "name").err(),
            Some(EngineError::NotNumeric("name".into()))
        );
    }

    #[test]
    fn size_estimating_sampler_sees_true_fraction() {
        let engine = NeedleTail::new(flights(), &["name"]).unwrap();
        let s = engine
            .size_estimating_sampler("name", &"AA".into())
            .unwrap();
        assert_eq!(s.eligible(), 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut z_sum = 0.0;
        let draws = 20_000;
        for _ in 0..draws {
            let (_, z) = s.sample_with_size_estimate(&mut rng).unwrap();
            z_sum += z;
        }
        let frac = z_sum / f64::from(draws);
        assert!((frac - 4.0 / 7.0).abs() < 0.02, "fraction {frac}");
    }
}
