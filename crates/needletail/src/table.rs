//! The in-memory row store.
//!
//! NEEDLETAIL runs in a row-store configuration for the paper's experiments
//! (§4); we store fixed-width columns contiguously and dictionary-encode
//! strings, so a "row fetch" touches one slot per column. Row width is
//! tracked so the I/O cost model can translate record counts into bytes and
//! 1 MB blocks exactly as the paper's setup does.

use crate::schema::{DataType, Schema};
use crate::value::Value;
use std::collections::HashMap;

/// Physical column storage.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// Dictionary codes plus the dictionary itself.
    Str {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }
}

/// An immutable, fully loaded relation.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    row_count: u64,
}

impl Table {
    /// The table's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Bytes per stored row (8 bytes per numeric column, 4 per string code),
    /// used by the I/O cost model.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.schema
            .columns()
            .iter()
            .map(|c| match c.data_type {
                DataType::Int | DataType::Float => 8,
                DataType::Str => 4,
            })
            .sum()
    }

    /// Total stored bytes (`row_count * row_bytes`).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.row_count * self.row_bytes()
    }

    /// Narrows a row index to `usize` for the Vec-backed columns.
    fn row_idx(row: u64) -> usize {
        // lint: allow(panic) — columns are in-memory Vecs, so every stored
        // row index fits usize; overflow means the caller fabricated a row
        usize::try_from(row).expect("row index fits usize")
    }

    /// The value at (`row`, column `col_idx`).
    ///
    /// # Panics
    ///
    /// Panics if the row or column is out of range.
    #[must_use]
    pub fn value(&self, row: u64, col_idx: usize) -> Value {
        let row = Self::row_idx(row);
        match &self.columns[col_idx] {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str { codes, dict } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    /// Fast float access for measure columns.
    ///
    /// # Panics
    ///
    /// Panics if the column is not numeric or indices are out of range.
    #[must_use]
    pub fn float_value(&self, row: u64, col_idx: usize) -> f64 {
        let row = Self::row_idx(row);
        match &self.columns[col_idx] {
            ColumnData::Int(v) => v[row] as f64,
            ColumnData::Float(v) => v[row],
            // lint: allow(panic) — documented `# Panics` precondition: measure
            // columns are type-checked against the schema at plan time
            ColumnData::Str { .. } => panic!("column {col_idx} is not numeric"),
        }
    }

    /// Dictionary code at (`row`, string column `col_idx`) — used by index
    /// construction to avoid string allocation per row.
    ///
    /// # Panics
    ///
    /// Panics if the column is not a string column.
    #[must_use]
    pub fn str_code(&self, row: u64, col_idx: usize) -> u32 {
        let row = Self::row_idx(row);
        match &self.columns[col_idx] {
            ColumnData::Str { codes, .. } => codes[row],
            // lint: allow(panic) — documented `# Panics` precondition used
            // only by index construction, which resolves column types first
            _ => panic!("column {col_idx} is not a string column"),
        }
    }

    /// The dictionary of a string column.
    ///
    /// # Panics
    ///
    /// Panics if the column is not a string column.
    #[must_use]
    pub fn str_dict(&self, col_idx: usize) -> &[String] {
        match &self.columns[col_idx] {
            ColumnData::Str { dict, .. } => dict,
            // lint: allow(panic) — documented `# Panics` precondition used
            // only by storage/index code that resolves column types first
            _ => panic!("column {col_idx} is not a string column"),
        }
    }

    /// All distinct values appearing in a column, in first-appearance order
    /// for strings and sorted order for numerics.
    #[must_use]
    pub fn distinct_values(&self, col_idx: usize) -> Vec<Value> {
        match &self.columns[col_idx] {
            ColumnData::Int(v) => {
                let mut d: Vec<i64> = v.clone();
                d.sort_unstable();
                d.dedup();
                d.into_iter().map(Value::Int).collect()
            }
            ColumnData::Float(v) => {
                let mut d: Vec<f64> = v.clone();
                d.sort_unstable_by(f64::total_cmp);
                d.dedup();
                d.into_iter().map(Value::Float).collect()
            }
            ColumnData::Str { dict, .. } => dict.iter().cloned().map(Value::Str).collect(),
        }
    }
}

/// Streaming builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<ColumnData>,
    dicts: Vec<Option<HashMap<String, u32>>>,
}

impl TableBuilder {
    /// Starts building a table with the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| match c.data_type {
                DataType::Int => ColumnData::Int(Vec::new()),
                DataType::Float => ColumnData::Float(Vec::new()),
                DataType::Str => ColumnData::Str {
                    codes: Vec::new(),
                    dict: Vec::new(),
                },
            })
            .collect();
        let dicts = schema
            .columns()
            .iter()
            .map(|c| (c.data_type == DataType::Str).then(HashMap::new))
            .collect();
        Self {
            schema,
            columns,
            dicts,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics on arity or type mismatch, or on a NaN float (NaN would break
    /// the total ordering the algorithms rely on).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        for (i, value) in row.into_iter().enumerate() {
            match (&mut self.columns[i], value) {
                (ColumnData::Int(v), Value::Int(x)) => v.push(x),
                (ColumnData::Float(v), Value::Float(x)) => {
                    assert!(!x.is_nan(), "NaN values are not storable");
                    v.push(x);
                }
                (ColumnData::Float(v), Value::Int(x)) => v.push(x as f64),
                (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                    // lint: allow(panic) — the constructor builds a dict for
                    // every Str column; a miss is construction-time corruption
                    let table = self.dicts[i].as_mut().expect("string column has dict");
                    let code = *table.entry(s.clone()).or_insert_with(|| {
                        dict.push(s);
                        // lint: allow(panic) — dictionary cardinality is
                        // bounded by the u32 code width by design; exceeding
                        // it at load time must abort, not truncate codes
                        u32::try_from(dict.len() - 1).expect("dictionary fits u32")
                    });
                    codes.push(code);
                }
                // lint: allow(panic) — documented `# Panics` precondition of
                // push_row, which runs at table-build time, never while serving
                (_, v) => panic!(
                    "type mismatch in column {:?}: got {:?}",
                    self.schema.columns()[i].name,
                    v.data_type()
                ),
            }
        }
    }

    /// Number of rows appended so far.
    #[must_use]
    pub fn row_count(&self) -> u64 {
        self.columns.first().map_or(0, |c| c.len() as u64)
    }

    /// Finalizes the table.
    #[must_use]
    pub fn finish(self) -> Table {
        let row_count = self.row_count();
        Table {
            schema: self.schema,
            columns: self.columns,
            row_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn flights_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("delay", DataType::Float),
            ColumnDef::new("year", DataType::Int),
        ])
    }

    fn small_table() -> Table {
        let mut b = TableBuilder::new(flights_schema());
        b.push_row(vec!["AA".into(), 30.0.into(), Value::Int(2008)]);
        b.push_row(vec!["JB".into(), 15.0.into(), Value::Int(2008)]);
        b.push_row(vec!["AA".into(), 20.0.into(), Value::Int(2007)]);
        b.finish()
    }

    #[test]
    fn roundtrip_values() {
        let t = small_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(0, 0), Value::Str("AA".into()));
        assert_eq!(t.value(1, 1), Value::Float(15.0));
        assert_eq!(t.value(2, 2), Value::Int(2007));
    }

    #[test]
    fn dictionary_reuses_codes() {
        let t = small_table();
        assert_eq!(t.str_code(0, 0), t.str_code(2, 0), "AA shares a code");
        assert_ne!(t.str_code(0, 0), t.str_code(1, 0));
        assert_eq!(t.str_dict(0), &["AA".to_owned(), "JB".to_owned()]);
    }

    #[test]
    fn float_access_and_int_promotion() {
        let mut b = TableBuilder::new(Schema::new(vec![ColumnDef::new("y", DataType::Float)]));
        b.push_row(vec![Value::Int(4)]);
        let t = b.finish();
        assert_eq!(t.float_value(0, 0), 4.0);
    }

    #[test]
    fn distinct_values_sorted_numeric() {
        let mut b = TableBuilder::new(Schema::new(vec![ColumnDef::new("x", DataType::Int)]));
        for v in [3i64, 1, 3, 2] {
            b.push_row(vec![Value::Int(v)]);
        }
        let t = b.finish();
        assert_eq!(
            t.distinct_values(0),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn row_bytes() {
        let t = small_table();
        // str(4) + float(8) + int(8) = 20.
        assert_eq!(t.row_bytes(), 20);
        assert_eq!(t.total_bytes(), 60);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut b = TableBuilder::new(flights_schema());
        b.push_row(vec!["AA".into()]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn rejects_wrong_type() {
        let mut b = TableBuilder::new(flights_schema());
        b.push_row(vec![Value::Int(1), 30.0.into(), Value::Int(2008)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut b = TableBuilder::new(Schema::new(vec![ColumnDef::new("y", DataType::Float)]));
        b.push_row(vec![Value::Float(f64::NAN)]);
    }
}
