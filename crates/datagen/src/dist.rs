//! Value distributions with analytic means.

use crate::math::truncated_normal_mean;
use rand::Rng;
use rand::RngCore;

/// A bounded value distribution that knows its own mean.
pub trait ValueDist: Send + Sync {
    /// Draws one value.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// The exact distribution mean.
    fn mean(&self) -> f64;

    /// Support bounds `(lo, hi)` — every sample lies inside.
    fn support(&self) -> (f64, f64);
}

/// Normal distribution truncated to `[lo, hi]` by rejection sampling.
#[derive(Debug, Clone)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    mean: f64,
}

impl TruncatedNormal {
    /// Creates `N(mu, sigma²)` truncated to `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`, `lo >= hi`, or the kept probability mass is
    /// vanishingly small (rejection sampling would spin).
    #[must_use]
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(lo < hi, "empty truncation interval");
        let mass =
            crate::math::normal_cdf((hi - mu) / sigma) - crate::math::normal_cdf((lo - mu) / sigma);
        assert!(
            mass > 1e-6,
            "truncation keeps negligible mass; rejection sampling would not terminate"
        );
        let mean = truncated_normal_mean(mu, sigma, lo, hi);
        Self {
            mu,
            sigma,
            lo,
            hi,
            mean,
        }
    }

    /// The paper's §5.2 defaults: truncation to `[0, 100]`.
    #[must_use]
    pub fn paper(mu: f64, sigma: f64) -> Self {
        Self::new(mu, sigma, 0.0, 100.0)
    }

    /// The underlying (pre-truncation) σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ValueDist for TruncatedNormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Box–Muller + rejection. The constructor guarantees non-negligible
        // acceptance probability.
        loop {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.mu + self.sigma * z;
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

/// Equal-weight mixture of distributions.
pub struct Mixture {
    components: Vec<Box<dyn ValueDist>>,
    mean: f64,
    support: (f64, f64),
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .field("mean", &self.mean)
            .finish()
    }
}

impl Mixture {
    /// Creates an equal-weight mixture.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    #[must_use]
    pub fn new(components: Vec<Box<dyn ValueDist>>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let mean = components.iter().map(|c| c.mean()).sum::<f64>() / components.len() as f64;
        let support = components
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), c| {
                let (clo, chi) = c.support();
                (lo.min(clo), hi.max(chi))
            });
        Self {
            components,
            mean,
            support,
        }
    }

    /// Number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

impl ValueDist for Mixture {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let i = rng.gen_range(0..self.components.len());
        self.components[i].sample(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn support(&self) -> (f64, f64) {
        self.support
    }
}

/// Two-point ("Bernoulli", §5.2) distribution on `{lo, hi}` with
/// `P[hi] = p` — the highest-variance bounded distribution for a given
/// mean, hence the paper's stress case.
#[derive(Debug, Clone)]
pub struct TwoPoint {
    lo: f64,
    hi: f64,
    p: f64,
}

impl TwoPoint {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `p ∉ [0, 1]`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, p: f64) -> Self {
        assert!(lo < hi, "two-point support must be non-degenerate");
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        Self { lo, hi, p }
    }

    /// The paper's `{0, 100}` support with the bias chosen so the mean is
    /// `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean ∉ [0, 100]`.
    #[must_use]
    pub fn paper(mean: f64) -> Self {
        assert!((0.0..=100.0).contains(&mean), "mean must lie in [0, 100]");
        Self::new(0.0, 100.0, mean / 100.0)
    }
}

impl ValueDist for TwoPoint {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        if rng.gen_bool(self.p) {
            self.hi
        } else {
            self.lo
        }
    }

    fn mean(&self) -> f64 {
        self.lo + (self.hi - self.lo) * self.p
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "uniform support must be non-degenerate");
        Self { lo, hi }
    }
}

impl ValueDist for Uniform {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn support(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical_mean(dist: &dyn ValueDist, n: u32, seed: u64) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..n {
            sum += dist.sample(&mut rng);
        }
        sum / f64::from(n)
    }

    #[test]
    fn truncated_normal_samples_in_support_and_match_mean() {
        let d = TruncatedNormal::paper(30.0, 10.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=100.0).contains(&x));
        }
        let emp = empirical_mean(&d, 100_000, 2);
        assert!(
            (emp - d.mean()).abs() < 0.2,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn boundary_truncated_normal_mean_is_analytic() {
        // Mean near 0: heavy truncation; the analytic formula must track it.
        let d = TruncatedNormal::paper(2.0, 10.0);
        let emp = empirical_mean(&d, 200_000, 3);
        assert!(
            (emp - d.mean()).abs() < 0.2,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
        assert!(d.mean() > 2.0, "truncation at 0 lifts the mean");
    }

    #[test]
    fn two_point_paper_mean() {
        let d = TwoPoint::paper(37.0);
        assert!((d.mean() - 37.0).abs() < 1e-12);
        let emp = empirical_mean(&d, 100_000, 4);
        assert!((emp - 37.0).abs() < 0.7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 0.0 || x == 100.0);
        }
    }

    #[test]
    fn mixture_mean_is_average_of_components() {
        let m = Mixture::new(vec![
            Box::new(TwoPoint::paper(20.0)),
            Box::new(TwoPoint::paper(60.0)),
        ]);
        assert!((m.mean() - 40.0).abs() < 1e-12);
        assert_eq!(m.component_count(), 2);
        let emp = empirical_mean(&m, 100_000, 6);
        assert!((emp - 40.0).abs() < 0.7);
    }

    #[test]
    fn uniform_mean() {
        let u = Uniform::new(10.0, 30.0);
        assert_eq!(u.mean(), 20.0);
        let emp = empirical_mean(&u, 50_000, 7);
        assert!((emp - 20.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "negligible mass")]
    fn rejects_hopeless_truncation() {
        let _ = TruncatedNormal::new(-1000.0, 1.0, 0.0, 100.0);
    }
}
