//! Instance-difficulty statistics (`c²/η²`, Figures 6c and 7c).
//!
//! The paper uses `c²/η²` — with `η = min_i η_i` the smallest gap between
//! adjacent true means — as the proxy for how many samples an instance
//! requires (Theorem 3.6 scales as `Σ 1/η_i²`). These helpers compute the
//! per-group `η_i`, the global `η`, and the difficulty from a list of true
//! means.

/// Per-group minimal distances `η_i = min_{j≠i} |µ_i − µ_j|`.
///
/// # Panics
///
/// Panics if fewer than two means are given.
#[must_use]
pub fn per_group_eta(means: &[f64]) -> Vec<f64> {
    assert!(means.len() >= 2, "need at least two groups for eta");
    // Sort once; each group's nearest neighbour in value is adjacent in the
    // sorted order.
    let mut order: Vec<usize> = (0..means.len()).collect();
    order.sort_by(|&a, &b| means[a].partial_cmp(&means[b]).expect("no NaN means"));
    let mut etas = vec![f64::INFINITY; means.len()];
    for w in order.windows(2) {
        let (a, b) = (w[0], w[1]);
        let gap = (means[a] - means[b]).abs();
        etas[a] = etas[a].min(gap);
        etas[b] = etas[b].min(gap);
    }
    etas
}

/// The global minimal gap `η = min_i η_i`.
///
/// # Panics
///
/// Panics if fewer than two means are given.
#[must_use]
pub fn min_eta(means: &[f64]) -> f64 {
    per_group_eta(means)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// The difficulty proxy `c²/η²`; `f64::INFINITY` for tied means.
///
/// # Panics
///
/// Panics if fewer than two means are given or `c <= 0`.
#[must_use]
pub fn difficulty(means: &[f64], c: f64) -> f64 {
    assert!(c > 0.0, "range c must be positive");
    let eta = min_eta(means);
    if eta == 0.0 {
        f64::INFINITY
    } else {
        (c / eta).powi(2)
    }
}

/// Five-number summary (min, q1, median, q3, max) of a sample — the
/// box-and-whiskers rows of Figures 6c/7c.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn five_number_summary(values: &[f64]) -> [f64; 5] {
    assert!(!values.is_empty(), "summary of empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    };
    [v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_simple() {
        let means = [10.0, 13.0, 20.0];
        assert_eq!(per_group_eta(&means), vec![3.0, 3.0, 7.0]);
        assert_eq!(min_eta(&means), 3.0);
    }

    #[test]
    fn eta_unsorted_input() {
        let means = [20.0, 10.0, 13.0];
        assert_eq!(per_group_eta(&means), vec![7.0, 3.0, 3.0]);
    }

    #[test]
    fn difficulty_hard_family() {
        // hard(γ): η = γ exactly, so difficulty = (c/γ)².
        let means: Vec<f64> = (0..10).map(|i| 40.0 + 0.1 * f64::from(i)).collect();
        let d = difficulty(&means, 100.0);
        assert!((d - 1_000_000.0).abs() / d < 1e-9);
    }

    #[test]
    fn tied_means_infinite_difficulty() {
        assert_eq!(difficulty(&[5.0, 5.0], 1.0), f64::INFINITY);
    }

    #[test]
    fn five_number_summary_basics() {
        let s = five_number_summary(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s, [1.0, 2.0, 3.0, 4.0, 5.0]);
        let single = five_number_summary(&[7.0]);
        assert_eq!(single, [7.0; 5]);
    }

    #[test]
    fn summary_is_sorted() {
        let s = five_number_summary(&[9.0, 1.0, 5.0, 3.0, 7.0, 2.0]);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn eta_matches_naive(means in proptest::collection::vec(-100f64..100.0, 2..16)) {
            let fast = per_group_eta(&means);
            for i in 0..means.len() {
                let naive = (0..means.len())
                    .filter(|&j| j != i)
                    .map(|j| (means[i] - means[j]).abs())
                    .fold(f64::INFINITY, f64::min);
                prop_assert!((fast[i] - naive).abs() < 1e-12);
            }
        }

        #[test]
        fn summary_bounds_sample(values in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let s = five_number_summary(&values);
            for &v in &values {
                prop_assert!(s[0] <= v && v <= s[4]);
            }
            for w in s.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
