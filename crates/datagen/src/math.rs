//! Gaussian special functions.
//!
//! Needed for the *analytic* mean of a truncated normal (virtual groups
//! must know their true mean without materializing values). `erf` uses the
//! Abramowitz–Stegun 7.1.26 rational approximation (|error| < 1.5e-7),
//! which is far below the resolution any experiment here depends on.

/// The error function, via Abramowitz & Stegun 7.1.26.
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal density φ(x).
#[must_use]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF Φ(x).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Mean of a `N(mu, sigma²)` truncated to `[lo, hi]`:
///
/// ```text
/// E[X | lo ≤ X ≤ hi] = µ + σ·(φ(α) − φ(β)) / (Φ(β) − Φ(α)),
/// α = (lo − µ)/σ, β = (hi − µ)/σ.
/// ```
///
/// # Panics
///
/// Panics if `sigma <= 0` or `lo >= hi`.
#[must_use]
pub fn truncated_normal_mean(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(lo < hi, "truncation interval must be non-degenerate");
    let alpha = (lo - mu) / sigma;
    let beta = (hi - mu) / sigma;
    let z = normal_cdf(beta) - normal_cdf(alpha);
    if z < 1e-12 {
        // Essentially all mass outside [lo, hi]: the conditional law
        // concentrates at the nearer endpoint.
        return if mu < lo { lo } else { hi };
    }
    mu + sigma * (normal_pdf(alpha) - normal_pdf(beta)) / z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // erf(0) = 0, erf(∞) → 1, erf(1) ≈ 0.8427007929; the A&S 7.1.26
        // approximation is accurate to ~1.5e-7.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12, "odd function");
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn untruncated_limit_recovers_mu() {
        // Truncation at ±10σ changes nothing measurable.
        let m = truncated_normal_mean(50.0, 5.0, 0.0, 100.0);
        assert!((m - 50.0).abs() < 1e-6);
    }

    #[test]
    fn one_sided_truncation_shifts_mean() {
        // Mean at the lower boundary: truncating negatives pushes it up.
        let m = truncated_normal_mean(0.0, 10.0, 0.0, 100.0);
        // Half-normal mean = σ·sqrt(2/π) ≈ 7.9788.
        assert!((m - 10.0 * (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn mass_outside_clamps_to_endpoint() {
        assert_eq!(truncated_normal_mean(-500.0, 1.0, 0.0, 100.0), 0.0);
        assert_eq!(truncated_normal_mean(500.0, 1.0, 0.0, 100.0), 100.0);
    }

    #[test]
    fn mean_is_monotone_in_mu() {
        let mut prev = f64::NEG_INFINITY;
        for mu_i in 0..=20 {
            let mu = f64::from(mu_i) * 5.0;
            let m = truncated_normal_mean(mu, 8.0, 0.0, 100.0);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn truncated_mean_stays_in_bounds() {
        for mu_i in -5..=25 {
            let m = truncated_normal_mean(f64::from(mu_i) * 5.0, 12.0, 0.0, 100.0);
            assert!((0.0..=100.0).contains(&m));
        }
    }
}
