//! The Theorem 3.8 lower-bound construction.
//!
//! The paper's optimality proof builds the following family of instances:
//! fix `τ < 1/(20k)` (on the unit range; we scale by `c`). The first `k/2`
//! groups have means `µ_i = 1/2 + 4iτ` — effectively "given away" to the
//! algorithm. Each of the remaining groups has mean `µ_{k/2+i} = µ_i ± τ`,
//! with the sign chosen uniformly at random; every `η_i` then equals `τ`,
//! and any correct algorithm must distinguish `±τ` for each pair, costing
//! `Ω(log(k/δ)·Σ_i 1/η_i²)` samples (via Canetti–Even–Goldreich).
//!
//! [`lower_bound_instance`] materializes this instance (two-point
//! distributions realize any mean with maximal variance, matching the
//! proof's hardness); the `lowerbound` experiment in `rapidviz-bench`
//! measures IFOCUS's cost on it as `τ` shrinks, which by Theorems 3.6+3.8
//! must scale as `Θ(k/τ²)` — quadrupling when `τ` halves.

use crate::dist::TwoPoint;
use crate::spec::{DatasetSpec, GroupSpec};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Builds the Theorem 3.8 instance with `k` groups (must be even),
/// gap parameter `tau` (on the unit scale; means live on `[0, c]` with
/// `c = 100`), and random `α_i ∈ {−1, +1}` drawn from `seed`.
///
/// # Panics
///
/// Panics if `k` is odd or zero, or `tau` is out of `(0, 1/(20k))`, the
/// range the proof requires.
#[must_use]
pub fn lower_bound_instance(k: usize, tau: f64, total_records: u64, seed: u64) -> DatasetSpec {
    assert!(k > 0 && k.is_multiple_of(2), "k must be positive and even");
    assert!(
        tau > 0.0 && tau < 1.0 / (20.0 * k as f64),
        "the proof requires 0 < tau < 1/(20k)"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let c = 100.0;
    let size = (total_records / k as u64).max(1);
    let half = k / 2;
    // Unit-scale means, then scaled by c.
    let base: Vec<f64> = (1..=half).map(|i| 0.5 + 4.0 * i as f64 * tau).collect();
    let mut groups: Vec<GroupSpec> = base
        .iter()
        .enumerate()
        .map(|(i, &mu)| GroupSpec {
            label: format!("given{i}"),
            size,
            dist: Arc::new(TwoPoint::paper(mu * c)),
        })
        .collect();
    for (i, &mu) in base.iter().enumerate() {
        let alpha = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        groups.push(GroupSpec {
            label: format!("hidden{i}"),
            size,
            dist: Arc::new(TwoPoint::paper((mu + alpha * tau) * c)),
        });
    }
    DatasetSpec { groups, c }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::difficulty::{min_eta, per_group_eta};

    #[test]
    fn every_eta_equals_tau() {
        let tau = 0.004;
        let spec = lower_bound_instance(10, tau, 10_000, 3);
        let means = spec.true_means();
        assert_eq!(means.len(), 10);
        let etas = per_group_eta(&means);
        // On the c = 100 scale, every eta is tau*c.
        for (i, &eta) in etas.iter().enumerate() {
            assert!(
                (eta - tau * 100.0).abs() < 1e-9,
                "group {i}: eta {eta} != {}",
                tau * 100.0
            );
        }
        assert!((min_eta(&means) - tau * 100.0).abs() < 1e-9);
    }

    #[test]
    fn hidden_groups_sit_next_to_their_partner() {
        let tau = 0.003;
        let spec = lower_bound_instance(8, tau, 8000, 5);
        let means = spec.true_means();
        let half = 4;
        for i in 0..half {
            let gap = (means[i] - means[half + i]).abs();
            assert!((gap - tau * 100.0).abs() < 1e-9, "pair {i} gap {gap}");
        }
    }

    #[test]
    fn deterministic_per_seed_random_across_seeds() {
        let a = lower_bound_instance(6, 0.005, 600, 1).true_means();
        let b = lower_bound_instance(6, 0.005, 600, 1).true_means();
        assert_eq!(a, b);
        // Different seeds flip at least one alpha with overwhelming
        // probability over 3 pairs... not guaranteed, so test over many.
        let mut any_diff = false;
        for seed in 2..12 {
            if lower_bound_instance(6, 0.005, 600, seed).true_means() != a {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "alphas never varied across 10 seeds");
    }

    #[test]
    fn means_stay_in_range() {
        // Largest mean: 0.5 + 4*(k/2)*tau + tau < 1 for tau < 1/(20k).
        let spec = lower_bound_instance(20, 0.002, 2000, 7);
        for mean in spec.true_means() {
            assert!((0.0..=100.0).contains(&mean));
        }
    }

    #[test]
    #[should_panic(expected = "1/(20k)")]
    fn rejects_oversized_tau() {
        let _ = lower_bound_instance(10, 0.1, 1000, 1);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = lower_bound_instance(7, 0.001, 1000, 1);
    }
}
