//! Lazily evaluated groups for data-size sweeps.
//!
//! The paper evaluates dataset sizes up to `10^10` records (hundreds of
//! GB). Sample complexity, however, depends only on `(c, δ, k, η_i, n_i)`
//! — Theorem 3.6 — so the experiment harness does not need the records,
//! only a stream of draws from each group's distribution and the virtual
//! `n_i` for the without-replacement correction. [`VirtualGroup`] provides
//! exactly that (substitution documented in DESIGN.md §4): draws are i.i.d.
//! from the distribution, indistinguishable from without-replacement
//! sampling at these scales (the algorithms never draw more than a
//! vanishing fraction of a 10^9-element group, and the Serfling factor the
//! schedule applies is conservative).

use crate::dist::ValueDist;
use rand::RngCore;
use rapidviz_core::group::GroupSource;
use rapidviz_core::SamplingMode;
use std::sync::Arc;

/// A group defined by a distribution and a virtual population size.
#[derive(Clone)]
pub struct VirtualGroup {
    label: String,
    dist: Arc<dyn ValueDist>,
    size: u64,
    drawn: u64,
}

impl std::fmt::Debug for VirtualGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualGroup")
            .field("label", &self.label)
            .field("size", &self.size)
            .field("mean", &self.dist.mean())
            .finish()
    }
}

impl VirtualGroup {
    /// Creates a virtual group of `size` records drawn from `dist`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(label: impl Into<String>, dist: Arc<dyn ValueDist>, size: u64) -> Self {
        assert!(size > 0, "virtual group must be non-empty");
        Self {
            label: label.into(),
            dist,
            size,
            drawn: 0,
        }
    }

    /// The distribution.
    #[must_use]
    pub fn dist(&self) -> &Arc<dyn ValueDist> {
        &self.dist
    }
}

impl GroupSource for VirtualGroup {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn len(&self) -> u64 {
        self.size
    }

    fn sample(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<f64> {
        match mode {
            SamplingMode::WithReplacement => Some(self.dist.sample(rng)),
            SamplingMode::WithoutReplacement => {
                // I.i.d. draws with an exhaustion bound: valid at virtual
                // scale (see module docs), and the bound keeps degenerate
                // configurations terminating.
                if self.drawn >= self.size {
                    return None;
                }
                self.drawn += 1;
                Some(self.dist.sample(rng))
            }
        }
    }

    fn true_mean(&self) -> Option<f64> {
        Some(self.dist.mean())
    }

    fn reset(&mut self) {
        self.drawn = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::TwoPoint;
    use rand::SeedableRng;
    use rapidviz_core::{AlgoConfig, IFocus};

    #[test]
    fn virtual_group_basics() {
        let g = VirtualGroup::new("v", Arc::new(TwoPoint::paper(42.0)), 1 << 40);
        assert_eq!(g.len(), 1 << 40);
        assert_eq!(g.true_mean(), Some(42.0));
        assert_eq!(g.label(), "v");
    }

    #[test]
    fn exhaustion_bound_respected() {
        let mut g = VirtualGroup::new("tiny", Arc::new(TwoPoint::paper(50.0)), 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..5 {
            assert!(g
                .sample(&mut rng, SamplingMode::WithoutReplacement)
                .is_some());
        }
        assert!(g
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_none());
        g.reset();
        assert!(g
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_some());
    }

    #[test]
    fn ifocus_runs_on_billion_row_virtual_groups() {
        // The point of virtual groups: a 3-billion-row "dataset" ordered
        // with a few thousand samples and no materialization.
        let mut groups: Vec<VirtualGroup> = [20.0, 50.0, 80.0]
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                VirtualGroup::new(
                    format!("g{i}"),
                    Arc::new(TwoPoint::paper(mu)),
                    1_000_000_000,
                )
            })
            .collect();
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = algo.run(&mut groups, &mut rng);
        assert!(rapidviz_core::is_correctly_ordered(
            &result.estimates,
            &truths
        ));
        assert!(
            result.total_samples() < 100_000,
            "sampled {} of 3e9 records",
            result.total_samples()
        );
    }
}
