//! A generative stand-in for the flight-records dataset (§5.3).
//!
//! The paper's real-data experiments use the ASA Data Expo flight records
//! (120 M rows, 1987–2008, the paper's reference 20) and scale them to 1.2 B / 12 B rows via
//! probability-density estimation. We do not ship that dataset; instead —
//! per the substitution rule in DESIGN.md §4 — [`FlightModel`] is a density
//! model directly: one distribution per (airline, attribute), with
//! per-airline means deliberately containing **near-ties** (the "highly
//! conflicting groups with means very close to one another" the paper
//! credits for Table 3's runtimes). Lazily sampled, it reproduces the
//! structure that drives the experiment at any requested scale.
//!
//! Attributes mirror the paper's three: Elapsed Time, Arrival Delay, and
//! Departure Delay, grouped by Airline. Delays are bounded by `[0, 1440]`
//! minutes (the paper's "typical flights are not delayed beyond 24 hours").

use crate::dist::{TruncatedNormal, ValueDist};
use crate::virtual_group::VirtualGroup;
use rand::{Rng, RngCore, SeedableRng};
use rapidviz_needletail::{ColumnDef, DataType, Schema, Table, TableBuilder, Value};
use std::sync::Arc;

/// The three measure attributes of the §5.3 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightAttribute {
    /// Gate-to-gate elapsed time (minutes).
    ElapsedTime,
    /// Arrival delay (minutes, clamped at 0 — early arrivals count as 0).
    ArrivalDelay,
    /// Departure delay (minutes, clamped at 0).
    DepartureDelay,
}

impl FlightAttribute {
    /// All attributes, in the paper's Table 3 order.
    pub const ALL: [FlightAttribute; 3] = [
        FlightAttribute::ElapsedTime,
        FlightAttribute::ArrivalDelay,
        FlightAttribute::DepartureDelay,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FlightAttribute::ElapsedTime => "Elapsed Time",
            FlightAttribute::ArrivalDelay => "Arrival Delay",
            FlightAttribute::DepartureDelay => "Departure Delay",
        }
    }

    /// Value range bound `c` for this attribute.
    #[must_use]
    pub fn c(&self) -> f64 {
        match self {
            FlightAttribute::ElapsedTime => 720.0,
            FlightAttribute::ArrivalDelay | FlightAttribute::DepartureDelay => 1440.0,
        }
    }
}

/// Carrier codes modelled (the Data Expo's major carriers).
pub const AIRLINES: [&str; 14] = [
    "AA", "AS", "B6", "CO", "DL", "EV", "HA", "MQ", "NW", "OO", "UA", "US", "WN", "XE",
];

/// The per-(airline, attribute) density model.
pub struct FlightModel {
    /// `dists[attr][airline]`.
    dists: Vec<Vec<Arc<dyn ValueDist>>>,
}

impl std::fmt::Debug for FlightModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightModel")
            .field("airlines", &AIRLINES.len())
            .field("attributes", &FlightAttribute::ALL.len())
            .finish()
    }
}

impl FlightModel {
    /// Builds the model deterministically from a seed. Base means per
    /// airline are drawn from realistic ranges with two engineered
    /// near-tie clusters per attribute.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = AIRLINES.len();
        let mut dists = Vec::with_capacity(FlightAttribute::ALL.len());
        for attr in FlightAttribute::ALL {
            let (lo_mean, hi_mean, sigma_lo, sigma_hi) = match attr {
                FlightAttribute::ElapsedTime => (80.0, 220.0, 40.0, 80.0),
                FlightAttribute::ArrivalDelay => (2.0, 60.0, 25.0, 45.0),
                FlightAttribute::DepartureDelay => (3.0, 65.0, 25.0, 45.0),
            };
            let mut means: Vec<f64> = (0..k).map(|_| rng.gen_range(lo_mean..hi_mean)).collect();
            // Engineer two near-tie clusters: airlines (1,2) and (7,8)
            // differ by ~0.08% of the attribute range — the conflicts that
            // dominate Table 3's sampling cost. The gap is tuned so that
            // resolving the tie needs on the order of 10^7 samples
            // (m* ≈ 2·ln(π²k/3δ)·(c/η)²), which the 10^8-row dataset can
            // only just satisfy — reproducing the paper's observation that
            // the conflicted groups get sampled (nearly) exhaustively and
            // runtimes keep growing with the dataset.
            let sliver = attr.c() * 0.0008;
            means[2] = means[1] + sliver;
            means[8] = means[7] + sliver * 1.5;
            let per_airline = means
                .into_iter()
                .map(|mu| {
                    let sigma = rng.gen_range(sigma_lo..sigma_hi);
                    Arc::new(TruncatedNormal::new(mu, sigma, 0.0, attr.c())) as Arc<dyn ValueDist>
                })
                .collect();
            dists.push(per_airline);
        }
        Self { dists }
    }

    fn attr_index(attr: FlightAttribute) -> usize {
        FlightAttribute::ALL
            .iter()
            .position(|&a| a == attr)
            .expect("attribute is in ALL")
    }

    /// The distribution for one (airline, attribute) cell.
    #[must_use]
    pub fn dist(&self, airline: usize, attr: FlightAttribute) -> &Arc<dyn ValueDist> {
        &self.dists[Self::attr_index(attr)][airline]
    }

    /// True per-airline means for an attribute.
    #[must_use]
    pub fn true_means(&self, attr: FlightAttribute) -> Vec<f64> {
        self.dists[Self::attr_index(attr)]
            .iter()
            .map(|d| d.mean())
            .collect()
    }

    /// Virtual groups (one per airline) for `attr`, with `total_records`
    /// rows split equally — the Table 3 scale-up path (10^8–10^10 rows).
    #[must_use]
    pub fn virtual_groups(&self, attr: FlightAttribute, total_records: u64) -> Vec<VirtualGroup> {
        let k = AIRLINES.len() as u64;
        let size = (total_records / k).max(1);
        self.dists[Self::attr_index(attr)]
            .iter()
            .zip(AIRLINES)
            .map(|(dist, code)| VirtualGroup::new(code, Arc::clone(dist), size))
            .collect()
    }

    /// Materializes a flight table (`name`, `elapsed`, `arr_delay`,
    /// `dep_delay`) of `rows` records with airline frequencies skewed the
    /// way real carrier volumes are.
    #[must_use]
    pub fn to_table(&self, rows: u64, rng: &mut dyn RngCore) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("elapsed", DataType::Float),
            ColumnDef::new("arr_delay", DataType::Float),
            ColumnDef::new("dep_delay", DataType::Float),
        ]);
        let mut builder = TableBuilder::new(schema);
        let k = AIRLINES.len();
        for _ in 0..rows {
            // Zipf-ish carrier volume skew.
            let airline = loop {
                let i = rng.gen_range(0..k);
                let keep = 1.0 / (1.0 + i as f64 * 0.15);
                if rng.gen_bool(keep) {
                    break i;
                }
            };
            builder.push_row(vec![
                Value::Str(AIRLINES[airline].to_owned()),
                Value::Float(self.dist(airline, FlightAttribute::ElapsedTime).sample(rng)),
                Value::Float(
                    self.dist(airline, FlightAttribute::ArrivalDelay)
                        .sample(rng),
                ),
                Value::Float(
                    self.dist(airline, FlightAttribute::DepartureDelay)
                        .sample(rng),
                ),
            ]);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidviz_core::group::GroupSource;

    #[test]
    fn model_is_deterministic() {
        let a = FlightModel::new(7);
        let b = FlightModel::new(7);
        for attr in FlightAttribute::ALL {
            assert_eq!(a.true_means(attr), b.true_means(attr));
        }
    }

    #[test]
    fn near_ties_are_engineered() {
        let m = FlightModel::new(7);
        for attr in FlightAttribute::ALL {
            let means = m.true_means(attr);
            let gap12 = (means[1] - means[2]).abs();
            let range = attr.c();
            assert!(
                gap12 / range < 0.01,
                "{}: airlines 1/2 should nearly tie (gap {gap12})",
                attr.name()
            );
        }
    }

    #[test]
    fn means_within_bounds() {
        let m = FlightModel::new(3);
        for attr in FlightAttribute::ALL {
            for mean in m.true_means(attr) {
                assert!(mean >= 0.0 && mean <= attr.c());
            }
        }
    }

    #[test]
    fn virtual_groups_split_total() {
        let m = FlightModel::new(1);
        let groups = m.virtual_groups(FlightAttribute::ArrivalDelay, 1_400_000_000);
        assert_eq!(groups.len(), AIRLINES.len());
        assert!(groups.iter().all(|g| g.len() == 100_000_000));
        assert_eq!(groups[0].label(), "AA");
    }

    #[test]
    fn table_materialization() {
        let m = FlightModel::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let table = m.to_table(5000, &mut rng);
        assert_eq!(table.row_count(), 5000);
        let name_idx = table.schema().column_index("name").unwrap();
        let distinct = table.distinct_values(name_idx);
        assert!(distinct.len() >= 10, "most airlines appear");
        // Values respect attribute bounds.
        let arr_idx = table.schema().column_index("arr_delay").unwrap();
        for row in 0..200 {
            let v = table.float_value(row, arr_idx);
            assert!((0.0..=1440.0).contains(&v));
        }
    }

    #[test]
    fn attribute_metadata() {
        assert_eq!(FlightAttribute::ElapsedTime.name(), "Elapsed Time");
        assert_eq!(FlightAttribute::ArrivalDelay.c(), 1440.0);
        assert_eq!(FlightAttribute::ALL.len(), 3);
    }
}
