//! Dataset specifications — the §5.2 workload families.

use crate::dist::{Mixture, TruncatedNormal, TwoPoint, ValueDist};
use crate::virtual_group::VirtualGroup;
use rand::{Rng, RngCore, SeedableRng};
use rapidviz_core::group::VecGroup;
use rapidviz_needletail::{ColumnDef, DataType, Schema, Table, TableBuilder, Value};
use std::sync::Arc;

/// The synthetic workload families of §5.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadFamily {
    /// Truncated normals: mean `~U[0,100]`, variance from `{4,25,64,100}`.
    TruncNorm,
    /// Mixtures of 1–5 truncated normals (the paper's default: "most
    /// representative of real world situations").
    Mixture,
    /// Two-point `{0,100}` with mean `~U[0,100]` — high variance.
    Bernoulli,
    /// Controlled difficulty: group `i` has mean `40 + γ·i`, two-point.
    Hard {
        /// Mean spacing γ (= the instance's η). Must satisfy `γ·k ≤ 60`.
        gamma: f64,
    },
}

/// One group's specification: label, size, and value distribution.
#[derive(Clone)]
pub struct GroupSpec {
    /// Group label.
    pub label: String,
    /// Number of records.
    pub size: u64,
    /// Value distribution.
    pub dist: Arc<dyn ValueDist>,
}

impl std::fmt::Debug for GroupSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSpec")
            .field("label", &self.label)
            .field("size", &self.size)
            .field("mean", &self.dist.mean())
            .finish()
    }
}

/// A complete dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Per-group specifications.
    pub groups: Vec<GroupSpec>,
    /// Value range bound `c`.
    pub c: f64,
}

impl DatasetSpec {
    /// Generates a `family` dataset of `k` equal-sized groups totalling
    /// `total_records`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `total_records < k`, or a `Hard` γ violates
    /// `40 + γ·k ≤ 100`.
    #[must_use]
    pub fn generate(family: WorkloadFamily, k: usize, total_records: u64, seed: u64) -> Self {
        let fractions = vec![1.0 / k as f64; k];
        Self::generate_with_fractions(family, &fractions, total_records, seed)
    }

    /// Generates a skewed dataset: the first group holds `first_fraction`
    /// of the records, the rest share the remainder equally (the Figure 7a
    /// workload).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `first_fraction ∉ (0, 1)`.
    #[must_use]
    pub fn generate_skewed(
        family: WorkloadFamily,
        k: usize,
        total_records: u64,
        first_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(k >= 2, "skew needs at least two groups");
        assert!(
            first_fraction > 0.0 && first_fraction < 1.0,
            "first fraction must lie in (0, 1)"
        );
        let mut fractions = vec![(1.0 - first_fraction) / (k - 1) as f64; k];
        fractions[0] = first_fraction;
        Self::generate_with_fractions(family, &fractions, total_records, seed)
    }

    /// Generates a truncnorm dataset where *every* group has the given
    /// standard deviation (the Figure 7b/7c workload).
    #[must_use]
    pub fn generate_truncnorm_fixed_std(k: usize, total_records: u64, std: f64, seed: u64) -> Self {
        assert!(k > 0, "need at least one group");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let size = (total_records / k as u64).max(1);
        let groups = (0..k)
            .map(|i| {
                let mu = rng.gen_range(0.0..100.0);
                GroupSpec {
                    label: format!("g{i}"),
                    size,
                    dist: Arc::new(TruncatedNormal::paper(mu, std)) as Arc<dyn ValueDist>,
                }
            })
            .collect();
        Self { groups, c: 100.0 }
    }

    fn generate_with_fractions(
        family: WorkloadFamily,
        fractions: &[f64],
        total_records: u64,
        seed: u64,
    ) -> Self {
        let k = fractions.len();
        assert!(k > 0, "need at least one group");
        assert!(
            total_records >= k as u64,
            "need at least one record per group"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let groups = fractions
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let size = ((total_records as f64 * f) as u64).max(1);
                GroupSpec {
                    label: format!("g{i}"),
                    size,
                    dist: Self::draw_dist(family, i, &mut rng),
                }
            })
            .collect();
        Self { groups, c: 100.0 }
    }

    fn draw_dist(family: WorkloadFamily, index: usize, rng: &mut impl Rng) -> Arc<dyn ValueDist> {
        match family {
            WorkloadFamily::TruncNorm => {
                let mu = rng.gen_range(0.0..100.0);
                let variance = [4.0, 25.0, 64.0, 100.0][rng.gen_range(0..4)];
                Arc::new(TruncatedNormal::paper(mu, f64::sqrt(variance)))
            }
            WorkloadFamily::Mixture => {
                let n_components = rng.gen_range(1..=5);
                let components: Vec<Box<dyn ValueDist>> = (0..n_components)
                    .map(|_| {
                        let mu = rng.gen_range(0.0..100.0);
                        let variance: f64 = rng.gen_range(1.0..10.0);
                        Box::new(TruncatedNormal::paper(mu, variance.sqrt())) as Box<dyn ValueDist>
                    })
                    .collect();
                Arc::new(Mixture::new(components))
            }
            WorkloadFamily::Bernoulli => {
                let mean = rng.gen_range(0.0..100.0);
                Arc::new(TwoPoint::paper(mean))
            }
            WorkloadFamily::Hard { gamma } => {
                let mean = 40.0 + gamma * index as f64;
                assert!(
                    mean <= 100.0,
                    "hard family: 40 + gamma*k must stay within [0, 100]"
                );
                Arc::new(TwoPoint::paper(mean))
            }
        }
    }

    /// Number of groups.
    #[must_use]
    pub fn k(&self) -> usize {
        self.groups.len()
    }

    /// Total records across groups.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.groups.iter().map(|g| g.size).sum()
    }

    /// True group means.
    #[must_use]
    pub fn true_means(&self) -> Vec<f64> {
        self.groups.iter().map(|g| g.dist.mean()).collect()
    }

    /// Virtual groups for scale sweeps (no materialization).
    #[must_use]
    pub fn virtual_groups(&self) -> Vec<VirtualGroup> {
        self.groups
            .iter()
            .map(|g| VirtualGroup::new(g.label.clone(), Arc::clone(&g.dist), g.size))
            .collect()
    }

    /// Materializes every group into memory (use for small datasets only).
    #[must_use]
    pub fn materialize(&self, rng: &mut dyn RngCore) -> Vec<VecGroup> {
        self.groups
            .iter()
            .map(|g| {
                let values: Vec<f64> = (0..g.size).map(|_| g.dist.sample(rng)).collect();
                VecGroup::new(g.label.clone(), values)
            })
            .collect()
    }

    /// Materializes into a NEEDLETAIL [`Table`] with columns
    /// `("g", Str)` and `("y", Float)`, rows interleaved round-robin so
    /// group bitmaps are non-trivial.
    #[must_use]
    pub fn to_table(&self, rng: &mut dyn RngCore) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("y", DataType::Float),
        ]);
        let mut builder = TableBuilder::new(schema);
        let mut remaining: Vec<u64> = self.groups.iter().map(|g| g.size).collect();
        let mut any = true;
        while any {
            any = false;
            for (i, group) in self.groups.iter().enumerate() {
                if remaining[i] > 0 {
                    remaining[i] -= 1;
                    any = true;
                    builder.push_row(vec![
                        Value::Str(group.label.clone()),
                        Value::Float(group.dist.sample(rng)),
                    ]);
                }
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rapidviz_core::group::GroupSource;

    #[test]
    fn equal_split_sizes() {
        let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 10, 1_000_000, 1);
        assert_eq!(spec.k(), 10);
        assert!(spec.groups.iter().all(|g| g.size == 100_000));
        assert_eq!(spec.total_records(), 1_000_000);
        assert_eq!(spec.c, 100.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DatasetSpec::generate(WorkloadFamily::TruncNorm, 5, 1000, 42);
        let b = DatasetSpec::generate(WorkloadFamily::TruncNorm, 5, 1000, 42);
        assert_eq!(a.true_means(), b.true_means());
        let c = DatasetSpec::generate(WorkloadFamily::TruncNorm, 5, 1000, 43);
        assert_ne!(a.true_means(), c.true_means());
    }

    #[test]
    fn hard_family_controlled_spacing() {
        let spec = DatasetSpec::generate(WorkloadFamily::Hard { gamma: 1.5 }, 10, 1000, 7);
        let means = spec.true_means();
        for (i, &m) in means.iter().enumerate() {
            assert!((m - (40.0 + 1.5 * i as f64)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "within")]
    fn hard_family_rejects_overflowing_gamma() {
        let _ = DatasetSpec::generate(WorkloadFamily::Hard { gamma: 10.0 }, 10, 1000, 7);
    }

    #[test]
    fn skewed_fractions() {
        let spec = DatasetSpec::generate_skewed(WorkloadFamily::Bernoulli, 10, 1_000_000, 0.9, 3);
        assert_eq!(spec.groups[0].size, 900_000);
        for g in &spec.groups[1..] {
            assert!((g.size as i64 - 11_111).abs() <= 1);
        }
    }

    #[test]
    fn fixed_std_family() {
        let spec = DatasetSpec::generate_truncnorm_fixed_std(8, 8000, 5.0, 11);
        assert_eq!(spec.k(), 8);
        // All means distinct with overwhelming probability.
        let means = spec.true_means();
        for i in 0..means.len() {
            for j in i + 1..means.len() {
                assert!((means[i] - means[j]).abs() > 1e-9);
            }
        }
    }

    #[test]
    fn materialized_means_close_to_analytic() {
        let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 4, 200_000, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let groups = spec.materialize(&mut rng);
        for (g, spec_g) in groups.iter().zip(&spec.groups) {
            let analytic = spec_g.dist.mean();
            let actual = g.true_mean().unwrap();
            assert!(
                (actual - analytic).abs() < 1.0,
                "group {}: materialized {actual} vs analytic {analytic}",
                spec_g.label
            );
        }
    }

    #[test]
    fn to_table_roundtrip() {
        let spec = DatasetSpec::generate(WorkloadFamily::Bernoulli, 3, 300, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let table = spec.to_table(&mut rng);
        assert_eq!(table.row_count(), 300);
        let g_idx = table.schema().column_index("g").unwrap();
        let distinct = table.distinct_values(g_idx);
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn virtual_groups_share_analytic_means() {
        use rapidviz_core::group::GroupSource;
        let spec = DatasetSpec::generate(WorkloadFamily::Mixture, 5, 10_000_000_000, 10);
        let vgs = spec.virtual_groups();
        for (vg, mean) in vgs.iter().zip(spec.true_means()) {
            assert_eq!(vg.true_mean(), Some(mean));
            assert_eq!(vg.len(), 2_000_000_000);
        }
    }
}
