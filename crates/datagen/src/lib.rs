//! # rapidviz-datagen
//!
//! The paper's synthetic workloads (§5.2), a generative stand-in for the
//! flight-records dataset (§5.3), and lazily evaluated *virtual groups*
//! that let the experiment harness sweep `10^7–10^10`-record datasets
//! without materializing them.
//!
//! Workload families (exact parameterizations of §5.2):
//!
//! * **truncnorm** — per group: mean `~U[0,100]`, variance from
//!   `{4, 25, 64, 100}`, normal truncated to `[0, 100]`.
//! * **mixture** — per group: 1–5 truncated-normal components, means
//!   `~U[0,100]`, variances `~U[1,10]`.
//! * **bernoulli** — per group: mean `~U[0,100]`, values in `{0, 100}`.
//! * **hard(γ)** — group `i` has mean `40 + γ·i`, values in `{0, 100}`, so
//!   the instance difficulty `c²/η² = (100/γ)²` is controlled exactly.
//!
//! All distributions expose their **analytic** mean, so virtual groups know
//! `µ_i` without materialization and the difficulty statistics
//! (`c²/η²`, Figures 6c/7c) are exact.

pub mod difficulty;
pub mod dist;
pub mod flights;
pub mod lowerbound;
pub mod math;
pub mod spec;
pub mod virtual_group;

pub use difficulty::{difficulty, min_eta, per_group_eta};
pub use dist::{Mixture, TruncatedNormal, TwoPoint, Uniform, ValueDist};
pub use flights::{FlightAttribute, FlightModel};
pub use lowerbound::lower_bound_instance;
pub use spec::{DatasetSpec, GroupSpec, WorkloadFamily};
pub use virtual_group::VirtualGroup;

// Materialized groups re-exported from core so downstream users have one
// import point for group types.
pub use rapidviz_core::group::VecGroup;
