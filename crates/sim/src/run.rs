//! Episode execution: scheduled run, invariant suite, standalone replay.
//!
//! [`run_episode`] executes an [`EpisodePlan`] in two phases. The
//! *scheduled* phase drives a [`rapidviz::MultiQueryScheduler`] quantum by
//! quantum, interleaving the plan's chaos events and checking the online
//! invariants (monotonicity, budgets, memory accounting, certified-prefix
//! stability) as each round streams out, while recording every update
//! bit-for-bit together with the simulated-clock time it was produced at.
//! The *replay* phase then re-runs every admitted query standalone — fresh
//! engine (cold caches), same session seed, same fault injector, the
//! recorded clock timeline — and demands byte-identical updates and final
//! answer. Any violation becomes a [`Failure`] carrying the episode's root
//! seed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rapidviz::needletail::{EngineError, NeedleTail, SeededFaults};
use rapidviz::{
    Clock, MultiQueryScheduler, QueryAnswer, QueryId, QuerySession, RoundUpdate, SchedulePolicy,
    SchedulerEvent, SimulatedClock, StepOutcome, VizQuery,
};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::plan::{EpisodePlan, QueryKind, QuerySpec, SimEvent, TimeBudget};

/// Hard ceiling on scheduler quanta per episode — far above what any
/// generated plan needs, so hitting it means a session stopped making
/// progress.
const QUANTA_CEILING: u64 = 500_000;

/// Deliberate corruptions for testing the harness itself: each mutation
/// breaks exactly one invariant, so a test can assert the failure is
/// caught, reported with its `SIM_SEED`, and minimized deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flips the low bit of the first replayed estimate, forcing a
    /// replay-divergence failure on any episode whose first admitted query
    /// received at least one quantum.
    CorruptReplayEstimate,
}

/// Knobs for [`run_episode`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EpisodeOptions {
    /// Deliberate corruption to inject, if any (harness self-tests only).
    pub mutation: Option<Mutation>,
}

/// One invariant violation, tied to the episode seed that reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Root seed of the failing episode.
    pub seed: u64,
    /// Policy the episode ran under.
    pub policy: SchedulePolicy,
    /// Which invariant broke (stable slug, e.g. `replay-divergence`).
    pub invariant: String,
    /// Human-readable specifics of the violation.
    pub detail: String,
}

impl Failure {
    /// Renders the single-seed repro report: the first line is
    /// `SIM_SEED=<u64> POLICY=<policy>`, followed by the violated
    /// invariant and the minimized episode's event schedule.
    #[must_use]
    pub fn report(&self, minimized: &EpisodePlan) -> String {
        let mut s = format!("SIM_SEED={} POLICY={:?}\n", self.seed, self.policy);
        let _ = writeln!(s, "invariant violated: {}", self.invariant);
        let _ = writeln!(s, "{}", self.detail);
        let _ = writeln!(
            s,
            "minimized episode: {} queries over {} rows / {} groups; \
             global_budget={:?} memory_cap={:?} faults={:?}",
            minimized.queries.len(),
            minimized.table.rows,
            minimized.table.groups,
            minimized.global_budget,
            minimized.memory_cap,
            minimized.faults,
        );
        for ev in &minimized.events {
            let _ = writeln!(s, "  @{:<4} {:?}", ev.at_quantum, ev.event);
        }
        let _ = writeln!(
            s,
            "reproduce with: SIM_SEED={} cargo test -p rapidviz-sim sim_seed_repro",
            self.seed
        );
        s
    }
}

/// Aggregate statistics over one or more passing episodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Episodes completed.
    pub episodes: u64,
    /// Scheduler quanta polled across all episodes.
    pub quanta: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Rounds replayed standalone and bit-compared.
    pub replayed_steps: u64,
    /// Storage reads dropped by the fault injector (scheduled phase).
    pub faulted_reads: u64,
}

impl Report {
    /// Folds another report's counters into this one.
    pub fn absorb(&mut self, other: &Report) {
        self.episodes += other.episodes;
        self.quanta += other.quanta;
        self.admitted += other.admitted;
        self.replayed_steps += other.replayed_steps;
        self.faulted_reads += other.faulted_reads;
    }
}

/// Everything bit-comparable about one [`RoundUpdate`].
#[derive(Debug, Clone, PartialEq)]
struct UpdateKey {
    outcome: StepOutcome,
    round: u64,
    total_samples: u64,
    fraction_bits: u64,
    estimate_bits: Vec<u64>,
    interval_bits: Vec<(u64, u64)>,
    active: Vec<bool>,
    newly_certified: Vec<usize>,
    truncated: bool,
}

fn update_key(update: &RoundUpdate) -> UpdateKey {
    UpdateKey {
        outcome: update.outcome,
        round: update.round,
        total_samples: update.total_samples,
        fraction_bits: update.fraction_sampled.to_bits(),
        estimate_bits: update
            .snapshot
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect(),
        interval_bits: update
            .snapshot
            .intervals
            .iter()
            .map(|iv| (iv.lo.to_bits(), iv.hi.to_bits()))
            .collect(),
        active: update.snapshot.active.clone(),
        newly_certified: update.newly_certified.clone(),
        truncated: update.snapshot.truncated,
    }
}

/// Everything bit-comparable about one final [`QueryAnswer`].
#[derive(Debug, Clone, PartialEq)]
struct AnswerKey {
    outcome: StepOutcome,
    labels: Vec<String>,
    estimate_bits: Vec<u64>,
    total_samples: u64,
    population: u64,
    truncated: bool,
}

fn answer_key(answer: &QueryAnswer) -> AnswerKey {
    AnswerKey {
        outcome: answer.outcome,
        labels: answer.result.labels.clone(),
        estimate_bits: answer
            .result
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect(),
        total_samples: answer.result.total_samples(),
        population: answer.population,
        truncated: answer.result.truncated,
    }
}

/// Per-admitted-session recording: what the scheduled run produced, to be
/// demanded back verbatim from the standalone replay.
struct Trace {
    query_idx: usize,
    admit_elapsed: Duration,
    admit_samples: u64,
    init_active: Vec<bool>,
    /// `(sim-clock elapsed at the step, bit-key of the update)`.
    steps: Vec<(Duration, UpdateKey)>,
    answer: Option<AnswerKey>,
    evicted: bool,
    terminal: Option<StepOutcome>,
}

/// Runs one episode: scheduled phase with online invariants, then
/// standalone replay of every admitted query.
///
/// # Errors
///
/// Returns the first invariant [`Failure`] the episode hits; panics inside
/// the episode body are caught and reported as the `no-panic` invariant.
pub fn run_episode(plan: &EpisodePlan, opts: &EpisodeOptions) -> Result<Report, Failure> {
    match catch_unwind(AssertUnwindSafe(|| episode_body(plan, opts))) {
        Ok(result) => result,
        Err(payload) => Err(Failure {
            seed: plan.seed,
            policy: plan.policy,
            invariant: "no-panic".into(),
            detail: format!("episode body panicked: {}", panic_message(&payload)),
        }),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn episode_body(plan: &EpisodePlan, opts: &EpisodeOptions) -> Result<Report, Failure> {
    let fail = |invariant: &str, detail: String| Failure {
        seed: plan.seed,
        policy: plan.policy,
        invariant: invariant.to_owned(),
        detail,
    };

    let mut engine = plan.table.build();
    if let Some((fseed, rate)) = plan.faults {
        engine.set_fault_injector(Arc::new(SeededFaults::new(fseed, rate)));
    }
    let clock = SimulatedClock::new();
    let mut sched = MultiQueryScheduler::new(plan.policy);
    if let Some(cap) = plan.global_budget {
        sched = sched.with_global_sample_budget(cap);
    }
    if let Some(cap) = plan.memory_cap {
        sched = sched.with_session_memory_cap(cap);
    }

    let mut report = Report {
        episodes: 1,
        ..Report::default()
    };
    let mut traces: Vec<Trace> = Vec::new();
    // Sessions the scheduler still holds: `(id, index into traces)`.
    let mut live: Vec<(QueryId, usize)> = Vec::new();
    let mut ev_i = 0usize;
    let mut quantum = 0u64;
    let mut global_exhausted_seen = false;

    loop {
        while ev_i < plan.events.len() && plan.events[ev_i].at_quantum <= quantum {
            let ev = plan.events[ev_i];
            ev_i += 1;
            match ev.event {
                SimEvent::Admit(idx) => {
                    if traces.iter().any(|t| t.query_idx == idx) {
                        continue; // defensive: a query admits at most once
                    }
                    let spec = &plan.queries[idx];
                    let session = build_session(&engine, &clock, spec)
                        .map_err(|e| fail("admit-error", format!("query {idx} rejected: {e:?}")))?;
                    let init_active = session.snapshot().active;
                    let admit_samples = session.total_samples();
                    let id = sched.admit(session);
                    live.push((id, traces.len()));
                    traces.push(Trace {
                        query_idx: idx,
                        admit_elapsed: clock.elapsed(),
                        admit_samples,
                        init_active,
                        steps: Vec::new(),
                        answer: None,
                        evicted: false,
                        terminal: None,
                    });
                    report.admitted += 1;
                }
                SimEvent::Cancel(idx) => {
                    if let Some(pos) = live.iter().position(|&(_, t)| traces[t].query_idx == idx) {
                        let (id, t) = live.remove(pos);
                        let Some(answer) = sched.finish(id) else {
                            return Err(fail(
                                "lost-session",
                                format!("finish({id}) returned no answer"),
                            ));
                        };
                        traces[t].answer = Some(answer_key(&answer));
                    }
                }
                SimEvent::AdvanceClock(ms) => clock.advance(Duration::from_millis(ms)),
                SimEvent::SwitchPolicy(policy) => sched.set_policy(policy),
                SimEvent::ClearPlanCaches => engine.clear_plan_caches(),
            }
        }

        let pre_total = sched.total_samples();
        let event = sched.poll();
        quantum += 1;
        report.quanta += 1;
        if quantum > QUANTA_CEILING {
            return Err(fail(
                "runaway-episode",
                format!("episode still live after {quantum} quanta"),
            ));
        }
        match event {
            SchedulerEvent::Round { id, update } => {
                if global_exhausted_seen {
                    return Err(fail(
                        "global-budget",
                        format!("{id} stepped after global exhaustion was reported"),
                    ));
                }
                if let Some(cap) = plan.global_budget {
                    if pre_total >= cap {
                        return Err(fail(
                            "global-budget",
                            format!("{id} stepped at {pre_total} lifetime samples, cap {cap}"),
                        ));
                    }
                }
                let Some(&(_, t)) = live.iter().find(|&&(lid, _)| lid == id) else {
                    return Err(fail("lost-session", format!("round for unknown {id}")));
                };
                check_round(
                    &plan.queries[traces[t].query_idx],
                    &mut traces[t],
                    &clock,
                    &update,
                )
                .map_err(|(inv, det)| fail(inv, format!("{id}: {det}")))?;
                if let Some(stats) = sched.stats(id) {
                    if stats.peak_bytes < stats.approx_bytes {
                        return Err(fail(
                            "memory-accounting",
                            format!(
                                "{id}: peak {} below current {}",
                                stats.peak_bytes, stats.approx_bytes
                            ),
                        ));
                    }
                }
            }
            SchedulerEvent::MemoryEvicted { id, bytes } => {
                let Some(cap) = plan.memory_cap else {
                    return Err(fail(
                        "memory-accounting",
                        format!("{id} evicted with no cap configured"),
                    ));
                };
                if bytes <= cap {
                    return Err(fail(
                        "memory-accounting",
                        format!("{id} evicted at {bytes} bytes, under the {cap}-byte cap"),
                    ));
                }
                let Some(&(_, t)) = live.iter().find(|&&(lid, _)| lid == id) else {
                    return Err(fail("lost-session", format!("eviction of unknown {id}")));
                };
                if traces[t].evicted {
                    return Err(fail("memory-accounting", format!("{id} evicted twice")));
                }
                traces[t].evicted = true;
                match sched.stats(id) {
                    Some(stats) if stats.evicted && stats.approx_bytes == 0 => {}
                    other => {
                        return Err(fail(
                            "memory-accounting",
                            format!("{id}: eviction did not release state: {other:?}"),
                        ));
                    }
                }
            }
            SchedulerEvent::GlobalBudgetExhausted { total_samples } => {
                let Some(cap) = plan.global_budget else {
                    return Err(fail(
                        "global-budget",
                        "exhaustion reported with no budget configured".into(),
                    ));
                };
                if total_samples < cap {
                    return Err(fail(
                        "global-budget",
                        format!("exhaustion reported at {total_samples} samples, below cap {cap}"),
                    ));
                }
                global_exhausted_seen = true;
                if ev_i >= plan.events.len() {
                    break;
                }
            }
            SchedulerEvent::Drained => {
                if ev_i >= plan.events.len() {
                    break;
                }
            }
        }
    }

    report.faulted_reads = engine.metrics().snapshot().faulted_reads;

    for (id, answer) in sched.finish_all() {
        if let Some(pos) = live.iter().position(|&(lid, _)| lid == id) {
            let (_, t) = live.remove(pos);
            traces[t].answer = Some(answer_key(&answer));
        }
    }
    if let Some(&(id, _)) = live.first() {
        return Err(fail(
            "lost-session",
            format!("{id} admitted but missing from finish_all"),
        ));
    }

    replay_traces(plan, opts, &traces, &mut report).map_err(|(inv, det)| fail(inv, det))?;
    Ok(report)
}

/// Online per-round invariant suite; returns `(invariant, detail)` on
/// violation and appends the recorded step to the trace otherwise.
fn check_round(
    spec: &QuerySpec,
    trace: &mut Trace,
    clock: &SimulatedClock,
    update: &RoundUpdate,
) -> Result<(), (&'static str, String)> {
    let qi = trace.query_idx;
    if trace.evicted {
        return Err((
            "memory-accounting",
            format!("query {qi} received a quantum after eviction"),
        ));
    }
    if let Some(term) = trace.terminal {
        return Err((
            "session-budget",
            format!("query {qi} received a quantum after terminal {term:?}"),
        ));
    }
    let key = update_key(update);
    let prev = trace.steps.last().map(|(_, k)| k.clone());
    let prev_samples = prev
        .as_ref()
        .map_or(trace.admit_samples, |k| k.total_samples);

    let frac = f64::from_bits(key.fraction_bits);
    if !(0.0..=1.0).contains(&frac) {
        return Err((
            "fraction-monotone",
            format!("query {qi}: fraction_sampled {frac} outside [0, 1]"),
        ));
    }
    if key.total_samples < prev_samples {
        return Err((
            "samples-monotone",
            format!(
                "query {qi}: total_samples fell {prev_samples} -> {}",
                key.total_samples
            ),
        ));
    }
    if let Some(prev) = &prev {
        if key.round < prev.round {
            return Err((
                "samples-monotone",
                format!("query {qi}: round fell {} -> {}", prev.round, key.round),
            ));
        }
        if frac < f64::from_bits(prev.fraction_bits) {
            return Err((
                "fraction-monotone",
                format!(
                    "query {qi}: fraction_sampled fell {} -> {frac}",
                    f64::from_bits(prev.fraction_bits)
                ),
            ));
        }
        if prev.truncated && !key.truncated {
            return Err((
                "truncated-monotone",
                format!("query {qi}: truncated flag cleared"),
            ));
        }
    }

    let prev_active: &[bool] = prev.as_ref().map_or(&trace.init_active, |k| &k.active);
    if key.active.len() != prev_active.len() {
        return Err((
            "certified-prefix",
            format!(
                "query {qi}: active set resized {} -> {}",
                prev_active.len(),
                key.active.len()
            ),
        ));
    }
    let mut expected_new = Vec::new();
    for (i, (&was, &is)) in prev_active.iter().zip(&key.active).enumerate() {
        if !was && is {
            return Err((
                "certified-prefix",
                format!("query {qi}: certified group {i} reactivated"),
            ));
        }
        if was && !is {
            expected_new.push(i);
        }
    }
    if expected_new != key.newly_certified {
        return Err((
            "certified-prefix",
            format!(
                "query {qi}: newly_certified {:?} does not match active-flag delta {:?}",
                key.newly_certified, expected_new
            ),
        ));
    }
    // ROUNDROBIN is exempt from the bit-frozen clause: it samples every
    // group each round, active or not, so certified estimates keep
    // refining by design. Certified *positions* still never reactivate.
    if spec.kind != QueryKind::Avg(rapidviz::AlgorithmChoice::RoundRobin) {
        if let Some(prev) = &prev {
            for (i, &was) in prev_active.iter().enumerate() {
                if !was && key.estimate_bits[i] != prev.estimate_bits[i] {
                    return Err((
                        "certified-prefix",
                        format!("query {qi}: certified group {i}'s estimate moved"),
                    ));
                }
            }
        }
    }

    if let Some(cap) = spec.max_samples {
        if prev_samples >= cap {
            if key.outcome != StepOutcome::BudgetExhausted {
                return Err((
                    "session-budget",
                    format!(
                        "query {qi}: at {prev_samples} samples (cap {cap}) but outcome {:?}",
                        key.outcome
                    ),
                ));
            }
            if key.total_samples != prev_samples {
                return Err((
                    "session-budget",
                    format!("query {qi}: budget-terminal step drew samples"),
                ));
            }
        }
    }
    if let Some(eff) = effective_deadline(spec, trace.admit_elapsed) {
        if clock.elapsed() >= eff {
            if key.outcome != StepOutcome::BudgetExhausted {
                return Err((
                    "session-budget",
                    format!(
                        "query {qi}: deadline passed ({:?} >= {eff:?}) but outcome {:?}",
                        clock.elapsed(),
                        key.outcome
                    ),
                ));
            }
            if key.total_samples != prev_samples {
                return Err((
                    "session-budget",
                    format!("query {qi}: deadline-terminal step drew samples"),
                ));
            }
        }
    }

    if !key.outcome.is_running() {
        trace.terminal = Some(key.outcome);
    }
    trace.steps.push((clock.elapsed(), key));
    Ok(())
}

/// The session's effective wall-clock budget as sim-clock elapsed time
/// (timeouts anchor at admission, matching the builder realization in
/// [`build_session`]).
fn effective_deadline(spec: &QuerySpec, admit: Duration) -> Option<Duration> {
    let ms = match spec.time_budget? {
        TimeBudget::Timeout(ms) | TimeBudget::Deadline(ms) => ms,
        TimeBudget::Both { timeout, deadline } => timeout.min(deadline),
    };
    Some(admit + Duration::from_millis(ms))
}

/// Replays every admitted query standalone — fresh cold-cache engine, same
/// fault injector, same session seed, the recorded clock timeline — and
/// bit-compares each update and the final answer against the scheduled
/// recording.
fn replay_traces(
    plan: &EpisodePlan,
    opts: &EpisodeOptions,
    traces: &[Trace],
    report: &mut Report,
) -> Result<(), (&'static str, String)> {
    let mut mutation_armed = opts.mutation == Some(Mutation::CorruptReplayEstimate);
    for trace in traces {
        let qi = trace.query_idx;
        let spec = &plan.queries[qi];
        let mut replay_engine = plan.table.build();
        if let Some((fseed, rate)) = plan.faults {
            replay_engine.set_fault_injector(Arc::new(SeededFaults::new(fseed, rate)));
        }
        let replay_clock = SimulatedClock::new();
        replay_clock.set_elapsed(trace.admit_elapsed);
        let mut session = build_session(&replay_engine, &replay_clock, spec).map_err(|e| {
            (
                "replay-divergence",
                format!("query {qi}: replay rejected: {e:?}"),
            )
        })?;
        if session.total_samples() != trace.admit_samples {
            return Err((
                "replay-divergence",
                format!(
                    "query {qi}: bootstrap drew {} samples scheduled vs {} standalone",
                    trace.admit_samples,
                    session.total_samples()
                ),
            ));
        }
        for (i, (elapsed, recorded)) in trace.steps.iter().enumerate() {
            replay_clock.set_elapsed(*elapsed);
            let update = session.step();
            let mut key = update_key(&update);
            if mutation_armed {
                mutation_armed = false;
                if let Some(bits) = key.estimate_bits.first_mut() {
                    *bits ^= 1;
                }
            }
            report.replayed_steps += 1;
            if key != *recorded {
                return Err((
                    "replay-divergence",
                    format!(
                        "query {qi} step {i}: scheduled update\n  {recorded:?}\nvs standalone\n  {key:?}"
                    ),
                ));
            }
        }
        if let Some(term) = trace.terminal {
            let Some((_, frozen)) = trace.steps.last() else {
                return Err((
                    "post-terminal-frozen",
                    format!("query {qi}: terminal {term:?} with no recorded steps"),
                ));
            };
            for extra in 0..2 {
                let update = session.step();
                let key = update_key(&update);
                if key.outcome != term
                    || key.total_samples != frozen.total_samples
                    || key.estimate_bits != frozen.estimate_bits
                {
                    return Err((
                        "post-terminal-frozen",
                        format!(
                            "query {qi}: post-terminal step {extra} not frozen: {:?} at {} samples",
                            key.outcome, key.total_samples
                        ),
                    ));
                }
            }
        }
        let final_key = answer_key(&session.finish());
        match &trace.answer {
            Some(recorded) if *recorded == final_key => {}
            Some(recorded) => {
                return Err((
                    "replay-divergence",
                    format!(
                        "query {qi} final answer: scheduled\n  {recorded:?}\nvs standalone\n  {final_key:?}"
                    ),
                ));
            }
            None => {
                return Err((
                    "lost-session",
                    format!("query {qi}: no final answer was recorded"),
                ));
            }
        }
    }
    Ok(())
}

/// Realizes a [`QuerySpec`] as a [`VizQuery`] session against `engine`,
/// with wall-clock budgets anchored at `clock.now()` — identical in the
/// scheduled run and the replay because the replay clock is rewound to the
/// recorded admission elapsed first.
fn build_session(
    engine: &NeedleTail,
    clock: &SimulatedClock,
    spec: &QuerySpec,
) -> Result<QuerySession, EngineError> {
    let mut q = VizQuery::new(engine).clock(Arc::new(clock.clone()));
    q = match spec.kind {
        QueryKind::Avg(alg) => q.group_by("g").avg("v").algorithm(alg),
        QueryKind::Sum => q.group_by("g").sum("v"),
        QueryKind::Count => q.group_by("g").count("v"),
    };
    if spec.multi_group && spec.kind != QueryKind::Count {
        q = q.group_by("g2");
    }
    if let Some(pred) = &spec.predicate {
        q = q.filter(pred.build());
    }
    q = q
        .delta(spec.delta)
        .samples_per_round(spec.samples_per_round);
    if let Some(pct) = spec.resolution_pct {
        q = q.resolution_pct(pct);
    }
    if let Some(c) = spec.bound {
        q = q.bound(c);
    }
    if let Some(cap) = spec.max_samples {
        q = q.max_samples(cap);
    }
    match spec.time_budget {
        Some(TimeBudget::Timeout(ms)) => q = q.timeout(Duration::from_millis(ms)),
        Some(TimeBudget::Deadline(ms)) => {
            q = q.deadline(clock.now() + Duration::from_millis(ms));
        }
        Some(TimeBudget::Both { timeout, deadline }) => {
            q = q
                .timeout(Duration::from_millis(timeout))
                .deadline(clock.now() + Duration::from_millis(deadline));
        }
        None => {}
    }
    q.start(StdRng::seed_from_u64(spec.seed))
}
