//! Episode plans: everything an episode does, derived from one seed.
//!
//! [`episode_plan`] expands a root `u64` seed into an [`EpisodePlan`] — a
//! plain data description of the table, the query workload, the chaos
//! event schedule, and the resource/fault knobs. The plan is the unit the
//! minimizer edits: dropping an event or a knob yields another valid plan
//! that [`crate::run_episode`] can execute.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rapidviz::needletail::{ColumnDef, DataType, NeedleTail, Predicate, Schema, TableBuilder};
use rapidviz::{AlgorithmChoice, SchedulePolicy};

/// Deterministic recipe for the episode's table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Seed for the table's value stream.
    pub seed: u64,
    /// Total row count.
    pub rows: usize,
    /// Number of distinct primary-group values.
    pub groups: usize,
    /// Number of distinct filter-attribute values.
    pub filter_values: usize,
}

impl TableSpec {
    /// Primary group label for group id `g`.
    #[must_use]
    pub fn group_label(g: usize) -> String {
        format!("grp{g}")
    }

    /// Materializes the table and engine. Columns: `g` (primary group),
    /// `g2` (secondary group, two values), `f` (filter), `v` (measure,
    /// values in `[0, 100]`); all attribute columns indexed.
    ///
    /// # Panics
    ///
    /// Panics only if the engine rejects its own schema (impossible by
    /// construction).
    #[must_use]
    pub fn build(&self) -> NeedleTail {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let means: Vec<f64> = (0..self.groups)
            .map(|_| rng.gen_range(10.0..90.0))
            .collect();
        let mut b = TableBuilder::new(Schema::new(vec![
            ColumnDef::new("g", DataType::Str),
            ColumnDef::new("g2", DataType::Str),
            ColumnDef::new("f", DataType::Str),
            ColumnDef::new("v", DataType::Float),
        ]));
        for i in 0..self.rows {
            // Round-robin assignment keeps every (group, filter) and
            // (group, g2) cell populated, so no generated predicate can
            // empty a group entirely.
            let g = i % self.groups;
            let g2 = if (i / self.groups).is_multiple_of(2) {
                "x"
            } else {
                "y"
            };
            let f = (i / self.groups) % self.filter_values;
            let v = (means[g] + rng.gen_range(-10.0..10.0)).clamp(0.0, 100.0);
            b.push_row(vec![
                Self::group_label(g).into(),
                g2.into(),
                format!("f{f}").into(),
                v.into(),
            ]);
        }
        NeedleTail::new(b.finish(), &["g", "g2", "f"]).expect("sim schema indexes its own columns")
    }
}

/// Which aggregate + algorithm a generated query runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `AVG(v)` under the given ordering algorithm.
    Avg(AlgorithmChoice),
    /// `SUM(v)` (Algorithm 4, known group sizes).
    Sum,
    /// `COUNT` (Algorithm 5 reduction, unknown group sizes).
    Count,
}

/// A selection predicate, in "spelling" form: distinct spellings of the
/// same selection share a canonical key, so episodes exercise warm plan
/// cache hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredSpec {
    /// `f = f<value>`.
    FilterEq(usize),
    /// `f = f<a> OR f = f<b>` — `swapped` flips the operand order, which
    /// canonicalization collapses back onto the same plan-cache entry.
    FilterIn {
        /// First filter value.
        a: usize,
        /// Second filter value.
        b: usize,
        /// Whether to spell the disjunction in reverse operand order.
        swapped: bool,
    },
}

impl PredSpec {
    /// Builds the engine predicate this spec spells.
    #[must_use]
    pub fn build(&self) -> Predicate {
        let eq = |v: usize| Predicate::eq("f", format!("f{v}"));
        match *self {
            PredSpec::FilterEq(v) => eq(v),
            PredSpec::FilterIn { a, b, swapped } => {
                if swapped {
                    eq(b).or(eq(a))
                } else {
                    eq(a).or(eq(b))
                }
            }
        }
    }
}

/// A query's wall-clock budget, in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBudget {
    /// `.timeout(ms)` — relative, anchored at admission.
    Timeout(u64),
    /// `.deadline(now + ms)` — absolute; `0` admits an already-expired
    /// session.
    Deadline(u64),
    /// Both; whichever ends first wins.
    Both {
        /// Timeout milliseconds.
        timeout: u64,
        /// Deadline offset milliseconds.
        deadline: u64,
    },
}

/// One generated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Session RNG seed (the replay runs the same seed standalone).
    pub seed: u64,
    /// Aggregate + algorithm.
    pub kind: QueryKind,
    /// Selection predicate, if any (never for `COUNT` — the sized-handle
    /// path has no predicate support).
    pub predicate: Option<PredSpec>,
    /// Whether to group by `(g, g2)` instead of `g` (AVG/SUM only).
    pub multi_group: bool,
    /// Failure probability δ.
    pub delta: f64,
    /// Resolution relaxation, in percent of the value range.
    pub resolution_pct: Option<f64>,
    /// Samples per round per active group.
    pub samples_per_round: u64,
    /// Session sample cap. Almost always set — it bounds episode length
    /// and makes budget exhaustion a routinely exercised path.
    pub max_samples: Option<u64>,
    /// Wall-clock budget against the episode's simulated clock.
    pub time_budget: Option<TimeBudget>,
    /// Explicit value bound `c`; `None` exercises bound inference.
    pub bound: Option<f64>,
}

/// Chaos events, applied between scheduler quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Admit `queries[idx]`.
    Admit(usize),
    /// Cancel (`finish()`) the session admitted for `queries[idx]`, if it
    /// is still held; a no-op otherwise (so the minimizer can drop the
    /// matching admit independently).
    Cancel(usize),
    /// Advance the simulated clock by this many milliseconds.
    AdvanceClock(u64),
    /// Switch the scheduler policy mid-stream.
    SwitchPolicy(SchedulePolicy),
    /// Drop the engine's planning caches mid-stream.
    ClearPlanCaches,
}

/// A [`SimEvent`] pinned to a scheduler quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// The quantum before which the event fires.
    pub at_quantum: u64,
    /// The event.
    pub event: SimEvent,
}

/// A fully-derived episode: pure data, cheap to clone, editable by the
/// minimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodePlan {
    /// The root seed the plan was derived from (the `SIM_SEED` repro
    /// handle).
    pub seed: u64,
    /// Scheduler policy the episode starts under.
    pub policy: SchedulePolicy,
    /// Table recipe.
    pub table: TableSpec,
    /// Generated queries (admitted by [`SimEvent::Admit`] events).
    pub queries: Vec<QuerySpec>,
    /// Chaos schedule, sorted by quantum.
    pub events: Vec<ScheduledEvent>,
    /// Global sample budget across the whole scheduler, if any.
    pub global_budget: Option<u64>,
    /// Per-session memory cap in bytes, if any.
    pub memory_cap: Option<usize>,
    /// Storage-read fault injection `(seed, rate)`, if any.
    pub faults: Option<(u64, f64)>,
}

/// All three policies, in a stable order.
pub(crate) const POLICIES: [SchedulePolicy; 3] = [
    SchedulePolicy::FairShare,
    SchedulePolicy::DeadlineAware,
    SchedulePolicy::GreedyConvergence,
];

/// Expands one root seed into a full episode plan under `policy`. Pure:
/// the same `(seed, policy)` always yields the same plan.
#[must_use]
pub fn episode_plan(seed: u64, policy: SchedulePolicy) -> EpisodePlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = rng.gen_range(2..=6usize);
    let table = TableSpec {
        seed: rng.next_u64(),
        rows: rng.gen_range(60..=240usize),
        groups,
        filter_values: 3,
    };

    let n_queries = rng.gen_range(2..=4usize);
    let queries: Vec<QuerySpec> = (0..n_queries).map(|_| query_spec(&mut rng)).collect();

    let mut events: Vec<ScheduledEvent> = Vec::new();
    // Admits: the first query lands before the first quantum so the
    // scheduler has work; the rest trickle in.
    events.push(ScheduledEvent {
        at_quantum: 0,
        event: SimEvent::Admit(0),
    });
    for idx in 1..n_queries {
        events.push(ScheduledEvent {
            at_quantum: rng.gen_range(0..=60),
            event: SimEvent::Admit(idx),
        });
    }
    for _ in 0..rng.gen_range(1..=4usize) {
        let at_quantum = rng.gen_range(0..=150);
        let event = match rng.gen_range(0..5u32) {
            0 => SimEvent::AdvanceClock(rng.gen_range(1..=40)),
            1 => SimEvent::Cancel(rng.gen_range(0..n_queries)),
            2 => SimEvent::SwitchPolicy(POLICIES[rng.gen_range(0..POLICIES.len())]),
            3 => SimEvent::ClearPlanCaches,
            _ => SimEvent::AdvanceClock(rng.gen_range(20..=120)),
        };
        events.push(ScheduledEvent { at_quantum, event });
    }
    events.sort_by_key(|e| e.at_quantum);

    let global_budget = rng.gen_bool(0.3).then(|| rng.gen_range(300..=4000u64));
    let memory_cap = rng.gen_bool(0.2).then(|| rng.gen_range(400..=2500usize));
    let faults = rng
        .gen_bool(0.25)
        .then(|| (rng.next_u64(), rng.gen_range(0.02..=0.3f64)));

    EpisodePlan {
        seed,
        policy,
        table,
        queries,
        events,
        global_budget,
        memory_cap,
        faults,
    }
}

fn query_spec(rng: &mut StdRng) -> QuerySpec {
    let kind = match rng.gen_range(0..8u32) {
        0 | 1 => QueryKind::Avg(AlgorithmChoice::IFocus),
        2 => QueryKind::Avg(AlgorithmChoice::IRefine),
        3 => QueryKind::Avg(AlgorithmChoice::RoundRobin),
        4 => QueryKind::Avg(AlgorithmChoice::ExactScan),
        5 | 6 => QueryKind::Sum,
        _ => QueryKind::Count,
    };
    let is_count = kind == QueryKind::Count;
    let is_scan = kind == QueryKind::Avg(AlgorithmChoice::ExactScan);
    let predicate = if is_count || rng.gen_bool(0.45) {
        None
    } else if rng.gen_bool(0.5) {
        Some(PredSpec::FilterEq(rng.gen_range(0..3)))
    } else {
        let a = rng.gen_range(0..3);
        let b = (a + 1 + rng.gen_range(0..2)) % 3;
        Some(PredSpec::FilterIn {
            a,
            b,
            swapped: rng.gen_bool(0.5),
        })
    };
    let multi_group = !is_count && rng.gen_bool(0.2);
    // SCAN terminates in k rounds on its own; everything else gets a cap
    // so episode length stays bounded regardless of convergence.
    let max_samples = if is_scan && rng.gen_bool(0.5) {
        None
    } else {
        Some(rng.gen_range(100..=800u64))
    };
    let time_budget = rng.gen_bool(0.35).then(|| match rng.gen_range(0..3u32) {
        0 => TimeBudget::Timeout(rng.gen_range(1..=80)),
        1 => TimeBudget::Deadline(rng.gen_range(0..=80)),
        _ => TimeBudget::Both {
            timeout: rng.gen_range(1..=80),
            deadline: rng.gen_range(0..=80),
        },
    });
    QuerySpec {
        seed: rng.next_u64(),
        kind,
        predicate,
        multi_group,
        delta: *[0.05, 0.1, 0.2]
            .get(rng.gen_range(0..3usize))
            .expect("index in range"),
        resolution_pct: rng.gen_bool(0.8).then(|| rng.gen_range(4.0..=15.0f64)),
        samples_per_round: rng.gen_range(1..=6),
        max_samples,
        time_budget,
        bound: if is_count {
            None
        } else {
            rng.gen_bool(0.7).then_some(100.0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = episode_plan(seed, SchedulePolicy::FairShare);
            let b = episode_plan(seed, SchedulePolicy::FairShare);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_plans() {
        let a = episode_plan(7, SchedulePolicy::FairShare);
        let b = episode_plan(8, SchedulePolicy::FairShare);
        assert_ne!(a, b);
    }

    #[test]
    fn table_builds_with_every_cell_populated() {
        let spec = TableSpec {
            seed: 3,
            rows: 90,
            groups: 6,
            filter_values: 3,
        };
        let engine = spec.build();
        let handles = engine
            .group_handles("g", "v", &PredSpec::FilterEq(2).build())
            .unwrap();
        assert_eq!(handles.len(), 6, "no filter value empties a group");
        assert!(handles.iter().all(|h| !h.is_empty()));
    }

    #[test]
    fn swapped_disjunction_shares_a_canonical_key() {
        let plain = PredSpec::FilterIn {
            a: 0,
            b: 2,
            swapped: false,
        };
        let swapped = PredSpec::FilterIn {
            a: 0,
            b: 2,
            swapped: true,
        };
        assert_eq!(
            plain.build().canonical_key(),
            swapped.build().canonical_key()
        );
    }
}
