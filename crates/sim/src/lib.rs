//! # rapidviz-sim — deterministic simulation + chaos harness
//!
//! The repo's crown-jewel guarantee — **scheduled ≡ standalone, cached ≡
//! cold, batched ≡ single, all byte-identical** — spans a state space no
//! hand-written test list can enumerate once sessions, the multi-query
//! scheduler, and the plan cache compose. This crate holds those
//! invariants the VOPR way: a single `u64` seed deterministically derives
//! a whole *episode* (table, workload, chaos schedule, faults), the
//! episode runs under a [`MultiQueryScheduler`], and every admitted query
//! is then **replayed standalone** and compared bit-for-bit.
//!
//! # Episode grammar
//!
//! One root seed, fed to [`episode_plan`], derives:
//!
//! * **A table** — 2–6 groups plus a secondary group attribute and a
//!   filter attribute, with group means spread over a bounded value range.
//! * **A workload** — 2–4 queries covering `AVG` (under every
//!   [`AlgorithmChoice`]), `SUM`, and `COUNT`; random predicates drawn
//!   from a small pool whose spellings differ but whose canonical forms
//!   collide, so the plan cache serves warm plans mid-episode; per-query
//!   δ, resolution, batch size, sample budgets, and wall-clock budgets
//!   (timeout / deadline / both, including already-expired deadlines).
//! * **An event schedule** — quantum-indexed chaos interleaved with the
//!   scheduler's own stepping: late admits, cancellations
//!   (`finish()` mid-run), simulated-clock jumps (deadline/timeout skew),
//!   policy switches, and `clear_plan_caches()` mid-stream.
//! * **Resource pressure** — optionally a global sample budget and/or a
//!   per-session memory cap (evictions).
//! * **Faults** — optionally a seeded storage-read fault injector
//!   ([`rapidviz_needletail::fault`]) that drops sampled-row reads,
//!   verifying sessions degrade to best-effort answers instead of
//!   panicking.
//!
//! # Invariant list
//!
//! Each episode asserts, per session and per round:
//!
//! 1. **replay-divergence** — every admitted query, replayed standalone
//!    against a fresh (cold-cache) engine with the same seed and the same
//!    recorded clock timeline, produces byte-identical
//!    ([`f64::to_bits`]) updates and final answer.
//! 2. **fraction-monotone** — `fraction_sampled` is monotone and ≤ 1.0.
//! 3. **samples-monotone** — `total_samples` and `round` never decrease.
//! 4. **certified-prefix** — certified (inactive) groups never
//!    reactivate, `newly_certified` matches the active-flag delta, and a
//!    certified group's estimate stays bit-frozen ever after (except under
//!    ROUNDROBIN, which samples every group each round by design — its
//!    certified positions still never reactivate).
//! 5. **session-budget** — once a session's sample cap is reached, the
//!    next quantum is exactly one terminal `BudgetExhausted` update that
//!    draws nothing; no quanta arrive after a terminal update.
//! 6. **global-budget** — no session is stepped at or past the global
//!    sample cap, and nothing is stepped after the scheduler reports
//!    exhaustion.
//! 7. **memory-accounting** — `peak_bytes ≥ approx_bytes ≥ 0` always;
//!    eviction fires only above the cap, zeroes the resident figure, and
//!    the evicted session receives no further quanta.
//! 8. **truncated-monotone** — the snapshot's `truncated` flag never
//!    clears once set.
//! 9. **post-terminal-frozen** — extra `step()` calls after the terminal
//!    outcome re-report it bit-identically and draw nothing.
//! 10. **no-panic** — the whole episode body runs under `catch_unwind`;
//!     any panic is an invariant failure with the same seed-based repro.
//!
//! # `SIM_SEED` repro workflow
//!
//! Any failing episode panics with a report whose first line is
//! `SIM_SEED=<u64> POLICY=<policy>`, after a greedy minimizer has shrunk
//! the chaos schedule (dropping events and resource knobs while the
//! failure persists). To reproduce:
//!
//! * re-run the batch with the env var set — `SIM_SEED=12345 cargo test
//!   -p rapidviz-sim` — which runs exactly that episode under every
//!   policy (`sim_seed_repro` test); or
//! * call [`run_seed`] with the printed seed and policy from a scratch
//!   test.
//!
//! The seed fully determines the episode — table, queries, events, faults
//! — so the repro needs no other state. Batch sizes are controlled by
//! `SIM_EPISODES` (per policy; default 350) and `SIM_BASE_SEED` (CI sets
//! a per-run value so coverage accumulates across runs while any failure
//! stays one `SIM_SEED` away from local repro).
//!
//! # Wire episodes
//!
//! The [`wire`] module extends the grammar over the TCP serving layer:
//! seeded client fleets (connect / query / disconnect-mid-stream /
//! malformed lines / half-close / disconnect-then-`RESUME` / scheduler
//! crash drills with reconnect-and-resume recovery) run against an
//! in-process `rapidviz-serve` server, and every completed answer —
//! including resumed and crash-recovered ones — is byte-compared against
//! its standalone replay. Failures print `SIM_SEED=<u64> POLICY=Wire`;
//! `SIM_WIRE_EPISODES` sizes the batch (default 25).
//!
//! [`MultiQueryScheduler`]: rapidviz::MultiQueryScheduler
//! [`AlgorithmChoice`]: rapidviz::AlgorithmChoice

mod minimize;
mod plan;
mod run;
pub mod wire;

pub use minimize::minimize;
pub use plan::{
    episode_plan, EpisodePlan, PredSpec, QueryKind, QuerySpec, ScheduledEvent, SimEvent, TableSpec,
    TimeBudget,
};
pub use run::{run_episode, EpisodeOptions, Failure, Mutation, Report};
pub use wire::{
    run_wire_batch, run_wire_episode, wire_episode_plan, WireBehavior, WireClientScript,
    WireEpisodePlan, WireFailure, WireKind, WireQuerySpec, WireReport,
};

use rapidviz::SchedulePolicy;

/// Plans and runs one episode with default options; the entry point a
/// `SIM_SEED` repro uses.
///
/// # Errors
///
/// Returns the first invariant [`Failure`] the episode hits.
pub fn run_seed(seed: u64, policy: SchedulePolicy) -> Result<Report, Failure> {
    run_episode(&episode_plan(seed, policy), &EpisodeOptions::default())
}

/// Derives the per-episode seed for index `i` of a batch — SplitMix64
/// over the base seed, so neighbouring indices get decorrelated episodes.
#[must_use]
pub fn batch_seed(base_seed: u64, i: u64) -> u64 {
    let mut x = base_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runs `count` episodes derived from `base_seed` under `policy`,
/// panicking with a `SIM_SEED=<u64>` repro report (minimized first) on
/// the first failure. Returns aggregate episode statistics.
pub fn run_batch(base_seed: u64, count: u64, policy: SchedulePolicy) -> Report {
    let mut aggregate = Report::default();
    for i in 0..count {
        let seed = batch_seed(base_seed, i);
        let plan = episode_plan(seed, policy);
        let opts = EpisodeOptions::default();
        match run_episode(&plan, &opts) {
            Ok(report) => aggregate.absorb(&report),
            Err(failure) => {
                let minimized = minimize(&plan, &opts);
                panic!("{}", failure.report(&minimized));
            }
        }
    }
    aggregate
}
