//! Wire-client episodes: the simulation grammar extended over the TCP
//! serving layer.
//!
//! A wire episode derives — from one root seed — a table, a fleet of
//! clients, and each client's scripted behavior (complete a query,
//! disconnect mid-stream after a few frames, half-close, speak garbage,
//! disconnect-then-`RESUME`, or crash the scheduler and recover), then
//! runs the fleet against an **in-process [`rapidviz_serve::Server`]**
//! on an ephemeral loopback port and checks:
//!
//! 1. **wire-replay-divergence** — every completed query's answer is
//!    byte-identical ([`f64::to_bits`]) to the same seeded query executed
//!    in-process against a fresh engine built from the same
//!    [`TableSpec`]. Resumed and crash-recovered answers are held to the
//!    same bar: interrupting a durable session must not move a bit.
//! 2. **terminal-delivery** — every well-formed, fully-drained query gets
//!    a terminal frame (answer or structured error), never a hang or
//!    reset.
//! 3. **slot-reclamation** — after the fleet drains, sessions admitted =
//!    completed + cancelled + parked + crashed (disconnects park their
//!    durable slots; crash drills count their casualties).
//! 4. **malformed-rejection** — garbage lines get `Malformed` error
//!    frames; nothing panics server-side.
//! 5. **crash-recovery** — a `CRASH` drill closes the victim stream
//!    without fabricating a terminal frame, restarts the scheduler, and
//!    a seeded-backoff reconnect plus `RESUME token=…` recovers the
//!    session bit-identically from its registry checkpoint.
//!
//! Crash-drill episodes run a single client: the drill kills every live
//! session in the incarnation, so a fleet-mate's `Complete` script would
//! fail through no fault of its own.
//!
//! Failures print the standard `SIM_SEED=<u64> POLICY=Wire` repro line:
//! the seed fully determines the episode.

use crate::plan::TableSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rapidviz::needletail::NeedleTail;
use rapidviz::{AlgorithmChoice, VizQuery};
use rapidviz_core::clock::{Clock, SystemClock};
use rapidviz_serve::{
    ErrorCode, FilterSpec, Frame, QueryRequest, RetryPolicy, Server, ServerConfig, WireClient,
};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Aggregate + algorithm for one wire query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// `AVG(v)` under an ordering algorithm.
    Avg(AlgorithmChoice),
    /// `SUM(v)`.
    Sum,
    /// `COUNT` (no predicate — the sized-handle path has none).
    Count,
}

/// One scripted wire query.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuerySpec {
    /// Session RNG seed (carried in the request line).
    pub seed: u64,
    /// Aggregate + algorithm.
    pub kind: WireKind,
    /// Filter over the `f` attribute, if any.
    pub filter: Option<FilterSpec>,
    /// Explicit value bound `c` for the concentration inequalities, if
    /// overridden. Durable scripts inflate it so certification cannot end
    /// the session before its scripted interruption lands.
    pub bound: Option<f64>,
    /// Group by `(g, g2)` instead of `g` (AVG/SUM only).
    pub multi_group: bool,
    /// Samples per round.
    pub samples_per_round: u64,
    /// Session sample cap (always set — bounds episode length).
    pub max_samples: u64,
}

impl WireQuerySpec {
    /// The request line this spec sends.
    #[must_use]
    pub fn to_request(&self) -> QueryRequest {
        let mut req = QueryRequest::avg("g", "v", self.seed);
        if self.multi_group {
            req.group_by.push("g2".to_owned());
        }
        match self.kind {
            WireKind::Avg(algo) => {
                req.aggregate = rapidviz::Aggregate::Avg;
                req.algorithm = algo;
            }
            WireKind::Sum => req.aggregate = rapidviz::Aggregate::Sum,
            WireKind::Count => req.aggregate = rapidviz::Aggregate::Count,
        }
        req.filter = self.filter.clone();
        req.bound = self.bound;
        req.samples_per_round = Some(self.samples_per_round);
        req.max_samples = Some(self.max_samples);
        req
    }

    /// Executes the same query in-process against `engine` and returns
    /// the answer for byte-comparison.
    fn execute_in_process(&self, engine: &NeedleTail) -> rapidviz::QueryAnswer {
        let mut q = VizQuery::new(engine).group_by("g");
        if self.multi_group {
            q = q.group_by("g2");
        }
        q = match self.kind {
            WireKind::Avg(algo) => q.avg("v").algorithm(algo),
            WireKind::Sum => q.sum("v"),
            WireKind::Count => q.count("v"),
        };
        if let Some(f) = &self.filter {
            q = q.filter(f.to_predicate());
        }
        if let Some(c) = self.bound {
            q = q.bound(c);
        }
        q.samples_per_round(self.samples_per_round)
            .max_samples(self.max_samples)
            .execute(&mut StdRng::seed_from_u64(self.seed))
            .expect("replay of an admitted wire query plans")
    }
}

/// What one scripted client does with its query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireBehavior {
    /// Drain the stream to the terminal frame and byte-compare the
    /// answer.
    Complete,
    /// Read this many frames, then drop the connection mid-stream.
    DisconnectAfter(u64),
    /// Send a malformed line; expect a `Malformed` error frame.
    Malformed,
    /// Send the query, shut down the write half, and still drain to the
    /// terminal frame.
    HalfClose,
    /// Read the resume token plus this many frames, drop the connection,
    /// reconnect with seeded backoff, `RESUME` the parked session, and
    /// drain it to the answer — which must byte-match the uninterrupted
    /// replay.
    DisconnectReconnect(u64),
    /// Read the resume token plus this many frames, then fire a `CRASH`
    /// drill from a second connection. The victim stream must die without
    /// a fabricated terminal frame; a seeded-backoff reconnect then
    /// `RESUME`s the session from its surviving registry checkpoint and
    /// the recovered answer must byte-match the uninterrupted replay.
    /// Only generated in single-client episodes.
    CrashRestart(u64),
}

/// One scripted client: a query plus what it does with it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireClientScript {
    /// The query.
    pub query: WireQuerySpec,
    /// The behavior.
    pub behavior: WireBehavior,
}

/// A fully-derived wire episode.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEpisodePlan {
    /// Root seed (the repro handle).
    pub seed: u64,
    /// Table recipe (reuses the core episode grammar's table).
    pub table: TableSpec,
    /// The client fleet, run concurrently.
    pub clients: Vec<WireClientScript>,
}

/// A wire-invariant violation, with its repro line.
#[derive(Debug, Clone)]
pub struct WireFailure {
    /// Root seed.
    pub seed: u64,
    /// What broke.
    pub message: String,
}

impl WireFailure {
    /// The panic report; first line is the grep-able repro handle.
    #[must_use]
    pub fn report(&self) -> String {
        format!("SIM_SEED={} POLICY=Wire\n{}", self.seed, self.message)
    }
}

/// Aggregate statistics over a wire batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireReport {
    /// Episodes run.
    pub episodes: u64,
    /// Queries that completed and byte-matched their in-process replay.
    pub verified_answers: u64,
    /// Mid-stream disconnects exercised (including reconnects that lost
    /// the race against server-side completion).
    pub disconnects: u64,
    /// Malformed lines rejected.
    pub malformed_rejections: u64,
    /// Sessions resumed via `RESUME` after a disconnect whose answers
    /// byte-matched the uninterrupted replay.
    pub resumed_answers: u64,
    /// Crash drills recovered bit-identically via reconnect + `RESUME`.
    pub crash_recoveries: u64,
}

/// Expands one root seed into a wire episode plan. Pure.
#[must_use]
pub fn wire_episode_plan(seed: u64) -> WireEpisodePlan {
    // Domain-separate the wire grammar's stream from the core episode
    // grammar's, so the same root seed explores different corners.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5749_5245_5749_5245);
    let table = TableSpec {
        seed: rng.next_u64(),
        rows: rng.gen_range(80..=240usize),
        groups: rng.gen_range(2..=5usize),
        filter_values: 3,
    };
    // One episode in ten is a solo crash drill: the `CRASH` verb kills
    // every live session in the incarnation, so it gets no fleet-mates to
    // strand.
    let clients = if rng.gen_range(0..10u32) == 0 {
        let mut query = scripted_query(&mut rng);
        make_durable(&mut query, &mut rng);
        vec![WireClientScript {
            query,
            behavior: WireBehavior::CrashRestart(rng.gen_range(1..4)),
        }]
    } else {
        let n_clients = rng.gen_range(2..=5usize);
        (0..n_clients)
            .map(|_| {
                let mut query = scripted_query(&mut rng);
                let behavior = match rng.gen_range(0..10u32) {
                    0 => WireBehavior::DisconnectAfter(rng.gen_range(0..4)),
                    1 => WireBehavior::Malformed,
                    2 => WireBehavior::HalfClose,
                    3 => {
                        make_durable(&mut query, &mut rng);
                        WireBehavior::DisconnectReconnect(rng.gen_range(1..4))
                    }
                    _ => WireBehavior::Complete,
                };
                WireClientScript { query, behavior }
            })
            .collect()
    };
    // Durable scripts need a real mid-stream window. On these default
    // tiny tables every group is fully drawn within milliseconds and the
    // Hoeffding-Serfling correction collapses the intervals to zero, so
    // an interruption would always lose the race against completion.
    // Tens of thousands of rows (with the inflated bound set by
    // `make_durable`) keep the durable session streaming for thousands
    // of rounds instead.
    let durable = clients.iter().any(|c| {
        matches!(
            c.behavior,
            WireBehavior::DisconnectReconnect(_) | WireBehavior::CrashRestart(_)
        )
    });
    let table = if durable {
        TableSpec {
            rows: rng.gen_range(10_000..=25_000usize),
            ..table
        }
    } else {
        table
    };
    WireEpisodePlan {
        seed,
        table,
        clients,
    }
}

/// Draws one scripted query: kind, filter, grouping, and round/sample
/// budgets sized for a quick complete-or-abandon run.
fn scripted_query(rng: &mut StdRng) -> WireQuerySpec {
    let kind = match rng.gen_range(0..6u32) {
        0 => WireKind::Avg(AlgorithmChoice::IFocus),
        1 => WireKind::Avg(AlgorithmChoice::IRefine),
        2 => WireKind::Avg(AlgorithmChoice::RoundRobin),
        3 => WireKind::Avg(AlgorithmChoice::ExactScan),
        4 => WireKind::Sum,
        _ => WireKind::Count,
    };
    let filter = if matches!(kind, WireKind::Count) {
        None
    } else {
        match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(FilterSpec::Eq(
                "f".into(),
                format!("f{}", rng.gen_range(0..3)),
            )),
            _ => {
                let a = rng.gen_range(0..3u32);
                let b = (a + 1 + rng.gen_range(0..2u32)) % 3;
                Some(FilterSpec::In(
                    "f".into(),
                    vec![format!("f{a}"), format!("f{b}")],
                ))
            }
        }
    };
    WireQuerySpec {
        seed: rng.next_u64(),
        kind,
        filter,
        bound: None,
        multi_group: !matches!(kind, WireKind::Count) && rng.gen_bool(0.25),
        samples_per_round: rng.gen_range(4..=32),
        max_samples: rng.gen_range(200..=2_000),
    }
}

/// Reshapes a query so a scripted interruption reliably lands mid-stream.
/// Three levers: a sampling kind that cannot finish in one pass (exact
/// scans and the sized COUNT path cover these tiny tables immediately),
/// an inflated value bound so certification cannot end the session early,
/// and a budget of many small rounds.
fn make_durable(query: &mut WireQuerySpec, rng: &mut StdRng) {
    query.kind = match rng.gen_range(0..4u32) {
        0 => WireKind::Avg(AlgorithmChoice::IFocus),
        1 => WireKind::Avg(AlgorithmChoice::IRefine),
        2 => WireKind::Avg(AlgorithmChoice::RoundRobin),
        _ => WireKind::Sum,
    };
    // Values live in [0, 100]; a bound of 5000 keeps every confidence
    // interval ~50x too wide to separate the bars, so the session runs
    // to its sample budget instead of certifying within milliseconds.
    query.bound = Some(5_000.0);
    query.samples_per_round = rng.gen_range(4..=8);
    query.max_samples = rng.gen_range(20_000..=60_000);
}

/// Runs one wire episode.
///
/// # Errors
///
/// Returns the first [`WireFailure`] the episode hits.
pub fn run_wire_episode(plan: &WireEpisodePlan) -> Result<WireReport, WireFailure> {
    let fail = |message: String| WireFailure {
        seed: plan.seed,
        message,
    };
    let engine = plan.table.build();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_clients: plan.clients.len() + 2,
        per_client_max_samples: 1_000_000,
        // The drill verb is armed only when the plan scripts a drill.
        enable_crash: plan
            .clients
            .iter()
            .any(|c| matches!(c.behavior, WireBehavior::CrashRestart(_))),
        ..ServerConfig::default()
    };
    let handle =
        Server::start(engine, config).map_err(|e| fail(format!("server bind failed: {e}")))?;
    let addr = handle.local_addr();
    let mut report = WireReport {
        episodes: 1,
        ..WireReport::default()
    };

    let results: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        plan.clients
            .iter()
            .map(|script| scope.spawn(move || run_client_script(addr, script)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_owned()))
            })
            .collect()
    });

    // Replay completed answers against a fresh engine (cold caches — the
    // wire answer must not depend on server-side cache state).
    let replay_engine = plan.table.build();
    for (script, result) in plan.clients.iter().zip(results) {
        let outcome = result.map_err(&fail)?;
        let answer = match outcome {
            ClientOutcome::Answered(a) => a,
            ClientOutcome::Resumed(a) => {
                report.resumed_answers += 1;
                a
            }
            ClientOutcome::CrashRecovered(a) => {
                report.crash_recoveries += 1;
                a
            }
            ClientOutcome::Disconnected => {
                report.disconnects += 1;
                continue;
            }
            ClientOutcome::MalformedRejected => {
                report.malformed_rejections += 1;
                continue;
            }
        };
        // Resumed and crash-recovered answers go through the same bar as
        // uninterrupted ones: the interruption must not move a bit.
        let reference = script.query.execute_in_process(&replay_engine);
        let wire_bits: Vec<u64> = answer.estimates.iter().map(|e| e.to_bits()).collect();
        let ref_bits: Vec<u64> = reference
            .result
            .estimates
            .iter()
            .map(|e| e.to_bits())
            .collect();
        if answer.labels != reference.result.labels
            || wire_bits != ref_bits
            || answer.outcome != reference.outcome
            || answer.samples_per_group != reference.result.samples_per_group
        {
            return Err(fail(format!(
                "wire-replay divergence for {script:?}:\n wire {answer:?}\n local {:?}",
                reference.result
            )));
        }
        report.verified_answers += 1;
    }

    // Slot reclamation: every admitted session ends terminal. This
    // watchdog bounds real OS-thread teardown, not simulated time, so it
    // reads the system clock — through the Clock abstraction so the
    // dependence stays visible.
    let stats = handle.stats();
    let clock = SystemClock;
    let deadline = clock.now() + Duration::from_secs(10);
    loop {
        let admitted = stats.sessions_admitted.load(Ordering::Relaxed);
        let terminal = stats.sessions_completed.load(Ordering::Relaxed)
            + stats.sessions_cancelled.load(Ordering::Relaxed)
            + stats.sessions_parked.load(Ordering::Relaxed)
            + stats.sessions_crashed.load(Ordering::Relaxed);
        if admitted == terminal {
            break;
        }
        if clock.now() >= deadline {
            return Err(fail(format!(
                "leaked session slots: {admitted} admitted but only {terminal} terminal"
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // A recovered crash drill must have actually gone through a scheduler
    // restart — otherwise the drill silently degraded into a plain run.
    if report.crash_recoveries > 0 && stats.scheduler_restarts.load(Ordering::Relaxed) == 0 {
        return Err(fail(
            "crash drill recovered without a scheduler restart".to_owned(),
        ));
    }
    handle.shutdown();
    Ok(report)
}

enum ClientOutcome {
    Answered(rapidviz_serve::WireAnswer),
    /// Answered after a disconnect + `RESUME` round-trip.
    Resumed(rapidviz_serve::WireAnswer),
    /// Answered after a `CRASH` drill + reconnect + `RESUME`.
    CrashRecovered(rapidviz_serve::WireAnswer),
    Disconnected,
    MalformedRejected,
}

/// Where `start_and_abandon` left the stream.
enum StartOutcome {
    /// Token in hand; the stream was abandoned mid-flight.
    Token(u64),
    /// The query finished before the script could interrupt it — both
    /// sides of that race must be clean.
    Answered(rapidviz_serve::WireAnswer),
}

/// Sends the query, waits for the resume-token announcement, reads
/// `frames` more frames, and returns with the stream still open but
/// abandoned (or with the answer, if the query won the race).
fn start_and_abandon(
    client: &mut WireClient,
    query: &WireQuerySpec,
    frames: u64,
) -> Result<StartOutcome, String> {
    client
        .send_request(&query.to_request())
        .map_err(|e| format!("send failed: {e}"))?;
    let mut token: Option<u64> = None;
    let mut seen = 0u64;
    loop {
        if let Some(t) = token {
            if seen >= frames {
                return Ok(StartOutcome::Token(t));
            }
        }
        match client
            .next_frame()
            .map_err(|e| format!("read failed: {e}"))?
        {
            Some(Frame::Parked { token: t }) => token = Some(t),
            Some(Frame::Answer(a)) => return Ok(StartOutcome::Answered(a)),
            Some(Frame::Error { code, message }) => {
                return Err(format!("unexpected error {code:?}: {message}"))
            }
            Some(_) => {
                if token.is_some() {
                    seen += 1;
                }
            }
            None => return Err("stream closed before the resume token arrived".to_owned()),
        }
    }
}

/// The deterministic per-script reconnect schedule: seeded off the query
/// seed (domain-separated per chaos arm) so a repro replays the same
/// backoff jitter.
fn retry_policy(query_seed: u64, salt: u64) -> RetryPolicy {
    RetryPolicy {
        seed: query_seed ^ salt,
        ..RetryPolicy::default()
    }
}

fn run_client_script(
    addr: std::net::SocketAddr,
    script: &WireClientScript,
) -> Result<ClientOutcome, String> {
    let mut client = WireClient::connect(addr, Duration::from_secs(30))
        .map_err(|e| format!("connect failed: {e}"))?;
    match script.behavior {
        WireBehavior::Complete => {
            let run = client
                .run_query(&script.query.to_request())
                .map_err(|e| format!("query stream failed: {e}"))?;
            run.answer
                .map(ClientOutcome::Answered)
                .ok_or_else(|| format!("no terminal answer; error={:?}", run.error))
        }
        WireBehavior::HalfClose => {
            client
                .send_request(&script.query.to_request())
                .map_err(|e| format!("send failed: {e}"))?;
            client
                .stream()
                .shutdown(std::net::Shutdown::Write)
                .map_err(|e| format!("half-close failed: {e}"))?;
            loop {
                match client
                    .next_frame()
                    .map_err(|e| format!("read failed: {e}"))?
                {
                    Some(Frame::Answer(a)) => return Ok(ClientOutcome::Answered(a)),
                    Some(Frame::Error { code, message }) => {
                        return Err(format!("unexpected error {code:?}: {message}"))
                    }
                    Some(_) => {}
                    None => return Err("stream closed without terminal frame".to_owned()),
                }
            }
        }
        WireBehavior::DisconnectAfter(frames) => {
            client
                .send_request(&script.query.to_request())
                .map_err(|e| format!("send failed: {e}"))?;
            for _ in 0..frames {
                // Terminal may legitimately arrive before we bail; both
                // sides of the race must be clean. Stop at a terminal
                // frame — the server sends nothing further for this
                // query, so waiting for more would just hit the read
                // timeout.
                match client.next_frame() {
                    Ok(Some(Frame::Round(_) | Frame::Evicted { .. })) => {}
                    Ok(Some(_)) | Ok(None) | Err(_) => break,
                }
            }
            Ok(ClientOutcome::Disconnected)
        }
        WireBehavior::Malformed => {
            client
                .send_line("QUERY this is not the grammar")
                .map_err(|e| format!("send failed: {e}"))?;
            match client
                .next_frame()
                .map_err(|e| format!("read failed: {e}"))?
            {
                Some(Frame::Error {
                    code: ErrorCode::Malformed,
                    ..
                }) => Ok(ClientOutcome::MalformedRejected),
                other => Err(format!("expected Malformed error, got {other:?}")),
            }
        }
        WireBehavior::DisconnectReconnect(frames) => {
            let token = match start_and_abandon(&mut client, &script.query, frames)? {
                StartOutcome::Token(t) => t,
                StartOutcome::Answered(a) => return Ok(ClientOutcome::Answered(a)),
            };
            drop(client);
            let policy = retry_policy(script.query.seed, 0x5245_434f_4e4e_4543);
            let (mut conn, _retries) =
                WireClient::connect_with_retry(addr, Duration::from_secs(30), &policy)
                    .map_err(|e| format!("reconnect failed: {e}"))?;
            let run = conn
                .resume(token)
                .map_err(|e| format!("resume stream failed: {e}"))?;
            if let Some(a) = run.answer {
                return Ok(ClientOutcome::Resumed(a));
            }
            match run.error {
                // The server kept running the session after we vanished
                // and may finish (and discard the token) before the
                // RESUME lands — losing that race is a clean disconnect,
                // not a failure.
                Some((ErrorCode::NoSuchToken, _)) => Ok(ClientOutcome::Disconnected),
                other => Err(format!("resume got no answer; error={other:?}")),
            }
        }
        WireBehavior::CrashRestart(frames) => {
            // Pre-open the drill connection so its accept/spawn latency
            // is paid before the victim session starts — the CRASH then
            // lands within the session's lifetime far more often.
            let mut killer = WireClient::connect(addr, Duration::from_secs(30))
                .map_err(|e| format!("drill connect failed: {e}"))?;
            let token = match start_and_abandon(&mut client, &script.query, frames)? {
                StartOutcome::Token(t) => t,
                StartOutcome::Answered(a) => return Ok(ClientOutcome::Answered(a)),
            };
            killer
                .send_line("CRASH")
                .map_err(|e| format!("drill send failed: {e}"))?;
            drop(killer);
            // The victim stream must die cleanly: closed, never a
            // fabricated terminal error. An answer may still race in if
            // the session completed before the drill landed.
            loop {
                match client.next_frame() {
                    Ok(Some(Frame::Answer(a))) => return Ok(ClientOutcome::Answered(a)),
                    Ok(Some(Frame::Error { code, message })) => {
                        return Err(format!(
                            "crash fabricated a terminal error {code:?}: {message}"
                        ))
                    }
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
            drop(client);
            let policy = retry_policy(script.query.seed, 0x4352_4153_4852_4543);
            let (mut conn, _retries) =
                WireClient::connect_with_retry(addr, Duration::from_secs(30), &policy)
                    .map_err(|e| format!("post-crash reconnect failed: {e}"))?;
            let run = conn
                .resume(token)
                .map_err(|e| format!("post-crash resume failed: {e}"))?;
            match run.answer {
                // No race excuse here: the victim saw no answer, so the
                // checkpoint must have survived the crash in the registry
                // and the resume must recover it.
                Some(a) => Ok(ClientOutcome::CrashRecovered(a)),
                None => Err(format!(
                    "post-crash resume got no answer; error={:?}",
                    run.error
                )),
            }
        }
    }
}

/// Runs `count` wire episodes derived from `base_seed`, panicking with a
/// `SIM_SEED=<u64> POLICY=Wire` repro on the first failure.
pub fn run_wire_batch(base_seed: u64, count: u64) -> WireReport {
    let mut aggregate = WireReport::default();
    for i in 0..count {
        let seed = crate::batch_seed(base_seed, i);
        match run_wire_episode(&wire_episode_plan(seed)) {
            Ok(r) => {
                aggregate.episodes += r.episodes;
                aggregate.verified_answers += r.verified_answers;
                aggregate.disconnects += r.disconnects;
                aggregate.malformed_rejections += r.malformed_rejections;
                aggregate.resumed_answers += r.resumed_answers;
                aggregate.crash_recoveries += r.crash_recoveries;
            }
            Err(failure) => panic!("{}", failure.report()),
        }
    }
    aggregate
}
