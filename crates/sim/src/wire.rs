//! Wire-client episodes: the simulation grammar extended over the TCP
//! serving layer.
//!
//! A wire episode derives — from one root seed — a table, a fleet of
//! clients, and each client's scripted behavior (complete a query,
//! disconnect mid-stream after a few frames, half-close, or speak
//! garbage), then runs the fleet against an **in-process
//! [`rapidviz_serve::Server`]** on an ephemeral loopback port and checks:
//!
//! 1. **wire-replay-divergence** — every completed query's answer is
//!    byte-identical ([`f64::to_bits`]) to the same seeded query executed
//!    in-process against a fresh engine built from the same
//!    [`TableSpec`].
//! 2. **terminal-delivery** — every well-formed, fully-drained query gets
//!    a terminal frame (answer or structured error), never a hang or
//!    reset.
//! 3. **slot-reclamation** — after the fleet drains, sessions admitted =
//!    completed + cancelled (disconnects reclaim their slots).
//! 4. **malformed-rejection** — garbage lines get `Malformed` error
//!    frames; nothing panics server-side.
//!
//! Failures print the standard `SIM_SEED=<u64> POLICY=Wire` repro line:
//! the seed fully determines the episode.

use crate::plan::TableSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rapidviz::needletail::NeedleTail;
use rapidviz::{AlgorithmChoice, VizQuery};
use rapidviz_core::clock::{Clock, SystemClock};
use rapidviz_serve::{
    ErrorCode, FilterSpec, Frame, QueryRequest, Server, ServerConfig, WireClient,
};
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Aggregate + algorithm for one wire query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// `AVG(v)` under an ordering algorithm.
    Avg(AlgorithmChoice),
    /// `SUM(v)`.
    Sum,
    /// `COUNT` (no predicate — the sized-handle path has none).
    Count,
}

/// One scripted wire query.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuerySpec {
    /// Session RNG seed (carried in the request line).
    pub seed: u64,
    /// Aggregate + algorithm.
    pub kind: WireKind,
    /// Filter over the `f` attribute, if any.
    pub filter: Option<FilterSpec>,
    /// Group by `(g, g2)` instead of `g` (AVG/SUM only).
    pub multi_group: bool,
    /// Samples per round.
    pub samples_per_round: u64,
    /// Session sample cap (always set — bounds episode length).
    pub max_samples: u64,
}

impl WireQuerySpec {
    /// The request line this spec sends.
    #[must_use]
    pub fn to_request(&self) -> QueryRequest {
        let mut req = QueryRequest::avg("g", "v", self.seed);
        if self.multi_group {
            req.group_by.push("g2".to_owned());
        }
        match self.kind {
            WireKind::Avg(algo) => {
                req.aggregate = rapidviz::Aggregate::Avg;
                req.algorithm = algo;
            }
            WireKind::Sum => req.aggregate = rapidviz::Aggregate::Sum,
            WireKind::Count => req.aggregate = rapidviz::Aggregate::Count,
        }
        req.filter = self.filter.clone();
        req.samples_per_round = Some(self.samples_per_round);
        req.max_samples = Some(self.max_samples);
        req
    }

    /// Executes the same query in-process against `engine` and returns
    /// the answer for byte-comparison.
    fn execute_in_process(&self, engine: &NeedleTail) -> rapidviz::QueryAnswer {
        let mut q = VizQuery::new(engine).group_by("g");
        if self.multi_group {
            q = q.group_by("g2");
        }
        q = match self.kind {
            WireKind::Avg(algo) => q.avg("v").algorithm(algo),
            WireKind::Sum => q.sum("v"),
            WireKind::Count => q.count("v"),
        };
        if let Some(f) = &self.filter {
            q = q.filter(f.to_predicate());
        }
        q.samples_per_round(self.samples_per_round)
            .max_samples(self.max_samples)
            .execute(&mut StdRng::seed_from_u64(self.seed))
            .expect("replay of an admitted wire query plans")
    }
}

/// What one scripted client does with its query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireBehavior {
    /// Drain the stream to the terminal frame and byte-compare the
    /// answer.
    Complete,
    /// Read this many frames, then drop the connection mid-stream.
    DisconnectAfter(u64),
    /// Send a malformed line; expect a `Malformed` error frame.
    Malformed,
    /// Send the query, shut down the write half, and still drain to the
    /// terminal frame.
    HalfClose,
}

/// One scripted client: a query plus what it does with it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireClientScript {
    /// The query.
    pub query: WireQuerySpec,
    /// The behavior.
    pub behavior: WireBehavior,
}

/// A fully-derived wire episode.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEpisodePlan {
    /// Root seed (the repro handle).
    pub seed: u64,
    /// Table recipe (reuses the core episode grammar's table).
    pub table: TableSpec,
    /// The client fleet, run concurrently.
    pub clients: Vec<WireClientScript>,
}

/// A wire-invariant violation, with its repro line.
#[derive(Debug, Clone)]
pub struct WireFailure {
    /// Root seed.
    pub seed: u64,
    /// What broke.
    pub message: String,
}

impl WireFailure {
    /// The panic report; first line is the grep-able repro handle.
    #[must_use]
    pub fn report(&self) -> String {
        format!("SIM_SEED={} POLICY=Wire\n{}", self.seed, self.message)
    }
}

/// Aggregate statistics over a wire batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireReport {
    /// Episodes run.
    pub episodes: u64,
    /// Queries that completed and byte-matched their in-process replay.
    pub verified_answers: u64,
    /// Mid-stream disconnects exercised.
    pub disconnects: u64,
    /// Malformed lines rejected.
    pub malformed_rejections: u64,
}

/// Expands one root seed into a wire episode plan. Pure.
#[must_use]
pub fn wire_episode_plan(seed: u64) -> WireEpisodePlan {
    // Domain-separate the wire grammar's stream from the core episode
    // grammar's, so the same root seed explores different corners.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5749_5245_5749_5245);
    let table = TableSpec {
        seed: rng.next_u64(),
        rows: rng.gen_range(80..=240usize),
        groups: rng.gen_range(2..=5usize),
        filter_values: 3,
    };
    let n_clients = rng.gen_range(2..=5usize);
    let clients = (0..n_clients)
        .map(|_| {
            let kind = match rng.gen_range(0..6u32) {
                0 => WireKind::Avg(AlgorithmChoice::IFocus),
                1 => WireKind::Avg(AlgorithmChoice::IRefine),
                2 => WireKind::Avg(AlgorithmChoice::RoundRobin),
                3 => WireKind::Avg(AlgorithmChoice::ExactScan),
                4 => WireKind::Sum,
                _ => WireKind::Count,
            };
            let filter = if matches!(kind, WireKind::Count) {
                None
            } else {
                match rng.gen_range(0..3u32) {
                    0 => None,
                    1 => Some(FilterSpec::Eq(
                        "f".into(),
                        format!("f{}", rng.gen_range(0..3)),
                    )),
                    _ => {
                        let a = rng.gen_range(0..3u32);
                        let b = (a + 1 + rng.gen_range(0..2u32)) % 3;
                        Some(FilterSpec::In(
                            "f".into(),
                            vec![format!("f{a}"), format!("f{b}")],
                        ))
                    }
                }
            };
            let query = WireQuerySpec {
                seed: rng.next_u64(),
                kind,
                filter,
                multi_group: !matches!(kind, WireKind::Count) && rng.gen_bool(0.25),
                samples_per_round: rng.gen_range(4..=32),
                max_samples: rng.gen_range(200..=2_000),
            };
            let behavior = match rng.gen_range(0..8u32) {
                0 => WireBehavior::DisconnectAfter(rng.gen_range(0..4)),
                1 => WireBehavior::Malformed,
                2 => WireBehavior::HalfClose,
                _ => WireBehavior::Complete,
            };
            WireClientScript { query, behavior }
        })
        .collect();
    WireEpisodePlan {
        seed,
        table,
        clients,
    }
}

/// Runs one wire episode.
///
/// # Errors
///
/// Returns the first [`WireFailure`] the episode hits.
pub fn run_wire_episode(plan: &WireEpisodePlan) -> Result<WireReport, WireFailure> {
    let fail = |message: String| WireFailure {
        seed: plan.seed,
        message,
    };
    let engine = plan.table.build();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_clients: plan.clients.len() + 2,
        per_client_max_samples: 1_000_000,
        ..ServerConfig::default()
    };
    let handle =
        Server::start(engine, config).map_err(|e| fail(format!("server bind failed: {e}")))?;
    let addr = handle.local_addr();
    let mut report = WireReport {
        episodes: 1,
        ..WireReport::default()
    };

    let results: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        plan.clients
            .iter()
            .map(|script| scope.spawn(move || run_client_script(addr, script)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_owned()))
            })
            .collect()
    });

    // Replay completed answers against a fresh engine (cold caches — the
    // wire answer must not depend on server-side cache state).
    let replay_engine = plan.table.build();
    for (script, result) in plan.clients.iter().zip(results) {
        let outcome = result.map_err(&fail)?;
        match outcome {
            ClientOutcome::Answered(answer) => {
                let reference = script.query.execute_in_process(&replay_engine);
                let wire_bits: Vec<u64> = answer.estimates.iter().map(|e| e.to_bits()).collect();
                let ref_bits: Vec<u64> = reference
                    .result
                    .estimates
                    .iter()
                    .map(|e| e.to_bits())
                    .collect();
                if answer.labels != reference.result.labels
                    || wire_bits != ref_bits
                    || answer.outcome != reference.outcome
                    || answer.samples_per_group != reference.result.samples_per_group
                {
                    return Err(fail(format!(
                        "wire-replay divergence for {script:?}:\n wire {answer:?}\n local {:?}",
                        reference.result
                    )));
                }
                report.verified_answers += 1;
            }
            ClientOutcome::Disconnected => report.disconnects += 1,
            ClientOutcome::MalformedRejected => report.malformed_rejections += 1,
        }
    }

    // Slot reclamation: every admitted session ends terminal. This
    // watchdog bounds real OS-thread teardown, not simulated time, so it
    // reads the system clock — through the Clock abstraction so the
    // dependence stays visible.
    let stats = handle.stats();
    let clock = SystemClock;
    let deadline = clock.now() + Duration::from_secs(10);
    loop {
        let admitted = stats.sessions_admitted.load(Ordering::Relaxed);
        let terminal = stats.sessions_completed.load(Ordering::Relaxed)
            + stats.sessions_cancelled.load(Ordering::Relaxed);
        if admitted == terminal {
            break;
        }
        if clock.now() >= deadline {
            return Err(fail(format!(
                "leaked session slots: {admitted} admitted but only {terminal} terminal"
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    Ok(report)
}

enum ClientOutcome {
    Answered(rapidviz_serve::WireAnswer),
    Disconnected,
    MalformedRejected,
}

fn run_client_script(
    addr: std::net::SocketAddr,
    script: &WireClientScript,
) -> Result<ClientOutcome, String> {
    let mut client = WireClient::connect(addr, Duration::from_secs(30))
        .map_err(|e| format!("connect failed: {e}"))?;
    match script.behavior {
        WireBehavior::Complete => {
            let run = client
                .run_query(&script.query.to_request())
                .map_err(|e| format!("query stream failed: {e}"))?;
            run.answer
                .map(ClientOutcome::Answered)
                .ok_or_else(|| format!("no terminal answer; error={:?}", run.error))
        }
        WireBehavior::HalfClose => {
            client
                .send_request(&script.query.to_request())
                .map_err(|e| format!("send failed: {e}"))?;
            client
                .stream()
                .shutdown(std::net::Shutdown::Write)
                .map_err(|e| format!("half-close failed: {e}"))?;
            loop {
                match client
                    .next_frame()
                    .map_err(|e| format!("read failed: {e}"))?
                {
                    Some(Frame::Answer(a)) => return Ok(ClientOutcome::Answered(a)),
                    Some(Frame::Error { code, message }) => {
                        return Err(format!("unexpected error {code:?}: {message}"))
                    }
                    Some(_) => {}
                    None => return Err("stream closed without terminal frame".to_owned()),
                }
            }
        }
        WireBehavior::DisconnectAfter(frames) => {
            client
                .send_request(&script.query.to_request())
                .map_err(|e| format!("send failed: {e}"))?;
            for _ in 0..frames {
                // Terminal may legitimately arrive before we bail; both
                // sides of the race must be clean. Stop at a terminal
                // frame — the server sends nothing further for this
                // query, so waiting for more would just hit the read
                // timeout.
                match client.next_frame() {
                    Ok(Some(Frame::Round(_) | Frame::Evicted { .. })) => {}
                    Ok(Some(_)) | Ok(None) | Err(_) => break,
                }
            }
            Ok(ClientOutcome::Disconnected)
        }
        WireBehavior::Malformed => {
            client
                .send_line("QUERY this is not the grammar")
                .map_err(|e| format!("send failed: {e}"))?;
            match client
                .next_frame()
                .map_err(|e| format!("read failed: {e}"))?
            {
                Some(Frame::Error {
                    code: ErrorCode::Malformed,
                    ..
                }) => Ok(ClientOutcome::MalformedRejected),
                other => Err(format!("expected Malformed error, got {other:?}")),
            }
        }
    }
}

/// Runs `count` wire episodes derived from `base_seed`, panicking with a
/// `SIM_SEED=<u64> POLICY=Wire` repro on the first failure.
pub fn run_wire_batch(base_seed: u64, count: u64) -> WireReport {
    let mut aggregate = WireReport::default();
    for i in 0..count {
        let seed = crate::batch_seed(base_seed, i);
        match run_wire_episode(&wire_episode_plan(seed)) {
            Ok(r) => {
                aggregate.episodes += r.episodes;
                aggregate.verified_answers += r.verified_answers;
                aggregate.disconnects += r.disconnects;
                aggregate.malformed_rejections += r.malformed_rejections;
            }
            Err(failure) => panic!("{}", failure.report()),
        }
    }
    aggregate
}
