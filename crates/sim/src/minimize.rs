//! Greedy episode minimization: shrink a failing plan while the same
//! invariant keeps failing, so the repro report shows the smallest chaos
//! schedule that still triggers the bug.

use crate::plan::EpisodePlan;
use crate::run::{run_episode, EpisodeOptions};

/// Greedily shrinks a failing episode plan to a local fixpoint: each pass
/// tries dropping every chaos event and clearing each resource/fault knob,
/// keeping any edit under which [`run_episode`] still fails **the same
/// invariant**, and repeats until nothing more can be removed.
///
/// Deterministic: the same plan and options always minimize to the same
/// shrunk plan. A plan that does not fail is returned unchanged.
#[must_use]
pub fn minimize(plan: &EpisodePlan, opts: &EpisodeOptions) -> EpisodePlan {
    let Some(invariant) = failing_invariant(plan, opts) else {
        return plan.clone();
    };
    let mut best = plan.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.events.len() {
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if fails_same(&candidate, opts, &invariant) {
                best = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        for knob in 0..3 {
            let mut candidate = best.clone();
            let had_knob = match knob {
                0 => candidate.global_budget.take().is_some(),
                1 => candidate.memory_cap.take().is_some(),
                _ => candidate.faults.take().is_some(),
            };
            if had_knob && fails_same(&candidate, opts, &invariant) {
                best = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

fn failing_invariant(plan: &EpisodePlan, opts: &EpisodeOptions) -> Option<String> {
    run_episode(plan, opts).err().map(|f| f.invariant)
}

fn fails_same(plan: &EpisodePlan, opts: &EpisodeOptions, invariant: &str) -> bool {
    run_episode(plan, opts)
        .err()
        .is_some_and(|f| f.invariant == invariant)
}
