//! Randomized episode batches under all three scheduler policies, plus the
//! harness self-tests: `SIM_SEED` repro entry point and a mutation check
//! proving a broken invariant is caught, reported, and minimized
//! deterministically.
//!
//! Env knobs: `SIM_EPISODES` (episodes per policy, default 350 — 1050
//! total), `SIM_BASE_SEED` (batch base, CI sets a per-run value), and
//! `SIM_SEED` (re-run exactly one episode under every policy).

use rapidviz::SchedulePolicy;
use rapidviz_sim::{
    batch_seed, episode_plan, minimize, run_batch, run_episode, run_seed, EpisodeOptions, Mutation,
};

const POLICIES: [SchedulePolicy; 3] = [
    SchedulePolicy::FairShare,
    SchedulePolicy::DeadlineAware,
    SchedulePolicy::GreedyConvergence,
];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn episodes_per_policy() -> u64 {
    env_u64("SIM_EPISODES", 350)
}

fn base_seed() -> u64 {
    env_u64("SIM_BASE_SEED", 0x5EED_CAFE)
}

#[test]
fn fair_share_batch() {
    let n = episodes_per_policy();
    let report = run_batch(base_seed(), n, SchedulePolicy::FairShare);
    assert_eq!(report.episodes, n);
    assert!(
        report.admitted >= n,
        "every episode admits at least one query"
    );
    assert!(
        report.replayed_steps > 0,
        "replay phase must exercise steps"
    );
}

#[test]
fn deadline_aware_batch() {
    let n = episodes_per_policy();
    let report = run_batch(base_seed(), n, SchedulePolicy::DeadlineAware);
    assert_eq!(report.episodes, n);
    assert!(report.replayed_steps > 0);
}

#[test]
fn greedy_convergence_batch() {
    let n = episodes_per_policy();
    let report = run_batch(base_seed(), n, SchedulePolicy::GreedyConvergence);
    assert_eq!(report.episodes, n);
    assert!(report.replayed_steps > 0);
}

/// The `SIM_SEED` repro entry point: with the env var set, runs exactly
/// that episode under every policy and panics with the full minimized
/// report on failure. A no-op otherwise.
#[test]
fn sim_seed_repro() {
    let Ok(raw) = std::env::var("SIM_SEED") else {
        return;
    };
    let seed: u64 = raw.parse().expect("SIM_SEED must be a u64");
    for policy in POLICIES {
        if let Err(failure) = run_seed(seed, policy) {
            let minimized = minimize(&episode_plan(seed, policy), &EpisodeOptions::default());
            panic!("{}", failure.report(&minimized));
        }
    }
}

/// Mutation check: an intentionally corrupted replay must be caught as a
/// `replay-divergence` failure whose report leads with `SIM_SEED=<u64>`,
/// and the same seed must reproduce the identical minimized failure.
#[test]
fn broken_invariant_is_caught_with_reproducible_seed() {
    let opts = EpisodeOptions {
        mutation: Some(Mutation::CorruptReplayEstimate),
    };
    let mut caught = None;
    for i in 0..50u64 {
        let seed = batch_seed(0xBAD_CAFE, i);
        let plan = episode_plan(seed, SchedulePolicy::FairShare);
        if let Err(failure) = run_episode(&plan, &opts) {
            caught = Some((seed, plan, failure));
            break;
        }
    }
    let (seed, plan, failure) =
        caught.expect("the mutation must trip replay-divergence within 50 episodes");
    assert_eq!(failure.invariant, "replay-divergence");
    assert_eq!(failure.seed, seed);

    let report = failure.report(&minimize(&plan, &opts));
    assert!(
        report.starts_with(&format!("SIM_SEED={seed} ")),
        "report must lead with the repro seed, got:\n{report}"
    );

    // Re-running the same seed reproduces the same failure and the same
    // minimized episode, byte for byte.
    let failure2 = run_episode(&plan, &opts).expect_err("the same seed must fail again");
    assert_eq!(failure2.invariant, failure.invariant);
    assert_eq!(failure2.report(&minimize(&plan, &opts)), report);

    // Without the mutation the episode is green: the harness itself was
    // the only thing broken.
    assert!(run_episode(&plan, &EpisodeOptions::default()).is_ok());
}
