//! Randomized wire-client episode batches: seeded fleets against an
//! in-process server, byte-compared against standalone replays.
//!
//! Env knobs: `SIM_WIRE_EPISODES` (batch size, default 25),
//! `SIM_BASE_SEED` (batch base), `SIM_SEED` (re-run exactly one wire
//! episode — the repro path for a `SIM_SEED=<u64> POLICY=Wire` report).

use rapidviz_sim::{run_wire_batch, run_wire_episode, wire_episode_plan, WireBehavior};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn wire_batch() {
    let n = env_u64("SIM_WIRE_EPISODES", 25);
    let report = run_wire_batch(env_u64("SIM_BASE_SEED", 0x5EED_CAFE), n);
    eprintln!("wire batch: {report:?}");
    assert_eq!(report.episodes, n);
    assert!(
        report.verified_answers > 0,
        "batch must byte-verify some answers: {report:?}"
    );
}

#[test]
fn wire_plan_is_deterministic_and_covers_behaviors() {
    let a = wire_episode_plan(7);
    let b = wire_episode_plan(7);
    assert_eq!(a, b, "same seed, same plan");
    // Across a modest seed range every behavior variant appears — the
    // grammar can actually reach its chaos arms.
    let mut saw = [false; 6];
    for seed in 0..200u64 {
        let plan = wire_episode_plan(seed);
        let solo = plan.clients.len() == 1;
        for c in plan.clients {
            match c.behavior {
                WireBehavior::Complete => saw[0] = true,
                WireBehavior::DisconnectAfter(_) => saw[1] = true,
                WireBehavior::Malformed => saw[2] = true,
                WireBehavior::HalfClose => saw[3] = true,
                WireBehavior::DisconnectReconnect(_) => saw[4] = true,
                WireBehavior::CrashRestart(_) => {
                    saw[5] = true;
                    // The drill kills every live session in the
                    // incarnation, so it must never have fleet-mates.
                    assert!(solo, "crash drill in a multi-client episode (seed {seed})");
                }
            }
        }
    }
    assert_eq!(saw, [true; 6], "behavior coverage: {saw:?}");
}

#[test]
fn wire_seed_repro() {
    let Ok(seed) = std::env::var("SIM_SEED") else {
        return;
    };
    let seed: u64 = seed.parse().expect("SIM_SEED must be a u64");
    if let Err(failure) = run_wire_episode(&wire_episode_plan(seed)) {
        panic!("{}", failure.report());
    }
}
