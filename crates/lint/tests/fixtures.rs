//! Fixture proof for every rule family: each one is shown to fire, to stay
//! quiet on clean code, and to be silenced by a reasoned inline allow —
//! plus the lexer edge cases that keep string/comment contents from ever
//! reaching a rule.

use rapidviz_lint::{config, lint_file, Config};

/// A policy mirroring the real lint.toml's shape, with fixture paths.
fn cfg() -> Config {
    config::parse(
        r#"
[rules.panic]
paths = ["lib/src"]

[rules.clock]
allow = ["lib/src/clock.rs"]

[rules.determinism]
paths = ["lib/src"]

[rules.output]
allow = []

[[unsafe]]
file = "lib/src/pool.rs"
count = 1
justification = "fixture budget entry"
"#,
    )
    .expect("fixture config parses")
}

fn rules_fired(path: &str, source: &str) -> Vec<String> {
    lint_file(path, source, &cfg())
        .into_iter()
        .map(|v| v.rule.to_owned())
        .collect()
}

// ---------------------------------------------------------------- panic

#[test]
fn panic_rule_fires_on_every_denied_form() {
    for snippet in [
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        "pub fn f(x: Option<u32>) -> u32 { x.expect(\"reason\") }",
        "pub fn f() { panic!(\"boom\"); }",
        "pub fn f() { todo!(); }",
        "pub fn f() { unimplemented!(); }",
    ] {
        assert_eq!(rules_fired("lib/src/a.rs", snippet), ["panic"], "{snippet}");
    }
}

#[test]
fn panic_rule_quiet_on_clean_code_and_lookalikes() {
    let clean = r#"
pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
pub fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 1) }
pub fn h(x: Result<u32, ()>) -> u32 { x.unwrap_or_default() }
"#;
    assert!(rules_fired("lib/src/a.rs", clean).is_empty());
}

#[test]
fn panic_rule_exempts_test_bench_example_bin_shim_classes() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    for path in [
        "lib/src/tests/a.rs",
        "tests/a.rs",
        "benches/a.rs",
        "examples/a.rs",
        "lib/src/bin/a.rs",
        "lib/src/main.rs",
        "shims/rand/src/lib.rs",
    ] {
        assert!(rules_fired(path, src).is_empty(), "{path}");
    }
}

#[test]
fn panic_rule_exempts_inline_test_regions_but_not_cfg_not_test() {
    let in_mod = r#"
pub fn f() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
    assert!(rules_fired("lib/src/a.rs", in_mod).is_empty());

    let in_fn = r#"
#[test]
fn t() { Some(1).unwrap(); }
"#;
    assert!(rules_fired("lib/src/a.rs", in_fn).is_empty());

    // Negation does not exempt: #[cfg(not(test))] code ships.
    let not_test = r#"
#[cfg(not(test))]
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
    assert_eq!(rules_fired("lib/src/a.rs", not_test), ["panic"]);
}

#[test]
fn panic_rule_scoped_to_configured_paths() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert!(rules_fired("other/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- clock

#[test]
fn clock_rule_fires_on_raw_now_reads() {
    let src = r#"
pub fn f() -> std::time::Instant { std::time::Instant::now() }
pub fn g() -> std::time::SystemTime { std::time::SystemTime::now() }
"#;
    assert_eq!(rules_fired("lib/src/a.rs", src), ["clock", "clock"]);
}

#[test]
fn clock_rule_quiet_in_clock_impl_and_binaries() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
    assert!(rules_fired("lib/src/clock.rs", src).is_empty());
    assert!(rules_fired("lib/src/main.rs", src).is_empty());
}

#[test]
fn clock_rule_quiet_on_other_now_functions() {
    let src = "pub fn f(c: &impl Clock) { c.now(); Zoned::now(); }";
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_rule_fires_on_thread_rng_and_ambient_random() {
    assert_eq!(
        rules_fired("lib/src/a.rs", "pub fn f() { let _ = thread_rng(); }"),
        ["determinism"]
    );
    assert_eq!(
        rules_fired("lib/src/a.rs", "pub fn f() -> f64 { random() }"),
        ["determinism"]
    );
}

#[test]
fn determinism_rule_fires_on_hash_collection_iteration() {
    // Binding tracked through a type ascription.
    let ascribed = r#"
use std::collections::HashMap;
pub fn f(m: HashMap<u32, u32>) -> u32 { m.iter().map(|(_, v)| v).sum() }
"#;
    assert_eq!(rules_fired("lib/src/a.rs", ascribed), ["determinism"]);

    // Binding tracked through a `let` initializer; `.keys()` flagged too.
    let inited = r#"
pub fn f() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1u32);
    for k in seen.iter() { let _ = k; }
}
"#;
    assert_eq!(rules_fired("lib/src/a.rs", inited), ["determinism"]);
}

#[test]
fn determinism_rule_quiet_on_ordered_collections_and_lookups() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
pub fn f(b: BTreeMap<u32, u32>, h: HashMap<u32, u32>) -> u32 {
    b.iter().map(|(_, v)| *v).sum::<u32>() + h.get(&1).copied().unwrap_or(0)
}
"#;
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

// --------------------------------------------------------------- unsafe

#[test]
fn unsafe_rule_fires_outside_the_budget() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert_eq!(rules_fired("lib/src/a.rs", src), ["unsafe"]);
}

#[test]
fn unsafe_rule_accepts_an_exact_budget_match() {
    let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    assert!(rules_fired("lib/src/pool.rs", src).is_empty());
}

#[test]
fn unsafe_rule_fires_on_count_drift_in_either_direction() {
    // More unsafe than budgeted.
    let two = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\npub fn g(p: *const u8) -> u8 { unsafe { *p } }";
    assert_eq!(rules_fired("lib/src/pool.rs", two), ["unsafe"]);
    // Less: the budget entry is stale and must be retired.
    assert_eq!(rules_fired("lib/src/pool.rs", "pub fn f() {}"), ["unsafe"]);
}

#[test]
fn unsafe_rule_exempts_test_targets() {
    let src = "unsafe impl Sync for W {}\nstruct W;";
    assert!(rules_fired("tests/a.rs", src).is_empty());
}

#[test]
fn unsafe_rule_has_no_inline_escape() {
    let src = "// lint: allow(unsafe) — nope\npub fn f(p: *const u8) -> u8 { unsafe { *p } }";
    let fired = rules_fired("lib/src/a.rs", src);
    // Both the bogus directive and the un-budgeted token are reported.
    assert_eq!(fired.len(), 2, "{fired:?}");
}

// --------------------------------------------------------------- output

#[test]
fn output_rule_fires_in_library_code_only() {
    let src = "pub fn f() { println!(\"x\"); eprintln!(\"y\"); }";
    assert_eq!(rules_fired("lib/src/a.rs", src), ["output", "output"]);
    assert!(rules_fired("lib/src/main.rs", src).is_empty());
    assert!(rules_fired("examples/a.rs", src).is_empty());
}

#[test]
fn output_rule_quiet_on_write_macros() {
    let src = r#"
use std::fmt::Write;
pub fn f(out: &mut String) { let _ = writeln!(out, "x"); }
"#;
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

// ------------------------------------------------------- inline allows

#[test]
fn inline_allow_suppresses_trailing_and_standalone_forms() {
    let trailing =
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic) — fixture proof";
    assert!(rules_fired("lib/src/a.rs", trailing).is_empty());

    let standalone = r#"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(panic) — fixture proof
    x.unwrap()
}
"#;
    assert!(rules_fired("lib/src/a.rs", standalone).is_empty());
}

#[test]
fn inline_allow_skips_interleaved_comment_lines() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.as_ref()
        // lint: allow(panic) — reason spanning
        // a continuation comment line
        .unwrap();
    0
}
"#;
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

#[test]
fn inline_allow_without_reason_is_a_violation() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(panic)";
    let vs = lint_file("lib/src/a.rs", src, &cfg());
    assert!(
        vs.iter().any(|v| v.message.contains("un-reasoned")),
        "{vs:?}"
    );
}

#[test]
fn unused_inline_allow_is_a_violation() {
    let src = "pub fn f() -> u32 { 1 } // lint: allow(panic) — suppresses nothing";
    let vs = lint_file("lib/src/a.rs", src, &cfg());
    assert!(vs.iter().any(|v| v.message.contains("unused")), "{vs:?}");
}

#[test]
fn inline_allow_covers_only_the_named_rule() {
    let src =
        "pub fn f() { println!(\"{:?}\", Some(1).unwrap()); } // lint: allow(panic) — fixture";
    assert_eq!(rules_fired("lib/src/a.rs", src), ["output"]);
}

// ------------------------------------------------------ lexer edge cases

#[test]
fn string_and_comment_contents_never_fire() {
    let src = r##"
pub fn f() -> String {
    // a comment mentioning x.unwrap() and panic! and println!
    /* nested /* block comment: Instant::now() */ thread_rng() */
    let a = "call .unwrap() or panic!(now)";
    let b = r#"raw with "quotes" and .expect("x") and unsafe"#;
    let c = 'u';
    format!("{a}{b}{c}")
}
"##;
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

#[test]
fn raw_string_fences_respected_around_real_violations() {
    // The raw string closes at its matching fence; the unwrap after it is
    // real code and must still fire.
    let src = r##"
pub fn f(x: Option<u32>) -> u32 {
    let _s = r#"inner " quote"#;
    x.unwrap()
}
"##;
    assert_eq!(rules_fired("lib/src/a.rs", src), ["panic"]);
}

#[test]
fn lifetimes_and_char_literals_disambiguated() {
    let src = r#"
pub struct Holder<'a> { s: &'a str }
pub fn f<'b>(h: &Holder<'b>) -> (char, usize) { ('\'', h.s.len()) }
"#;
    assert!(rules_fired("lib/src/a.rs", src).is_empty());
}

#[test]
fn doc_comments_are_not_suppression_directives() {
    // A doc comment that *looks* like an allow must not suppress anything.
    let src = r#"
/// lint: allow(panic) — doc text, not a directive
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
"#;
    assert_eq!(rules_fired("lib/src/a.rs", src), ["panic"]);
}

// ------------------------------------------------------- config errors

#[test]
fn config_rejects_unknown_rules_and_missing_justifications() {
    assert!(config::parse("[rules.nope]\npaths = [\"a\"]\n").is_err());
    assert!(config::parse("[[unsafe]]\nfile = \"a.rs\"\ncount = 1\n").is_err());
}
