//! Fixture proof for the cross-file semantic passes and the `--fix`
//! engine: layering and concurrency each fire, stay quiet on clean code,
//! and can be suppressed; fixes apply, are idempotent, and leave a tree
//! that re-lints clean.

use rapidviz_lint::{config, fix_plan, fixes, lint_file, lint_workspace, Config};
use std::path::{Path, PathBuf};

// ------------------------------------------------------------ harness

/// Builds a throwaway on-disk mini-workspace (the layering pass reads
/// `Cargo.toml`s and maps paths to crates by directory convention, so it
/// needs real files). Rebuilt from scratch on every call.
fn mini_workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&root);
    for (rel, content) in files {
        let full = root.join(rel);
        std::fs::create_dir_all(full.parent().expect("file has a parent")).expect("mkdir");
        std::fs::write(full, content).expect("write fixture file");
    }
    root
}

/// Lints a mini-workspace under `policy` and returns `rule: path` pairs.
fn workspace_violations(root: &Path, policy: &str) -> Vec<String> {
    let cfg = config::parse(policy).expect("fixture policy parses");
    lint_workspace(root, &cfg)
        .expect("workspace walk succeeds")
        .violations
        .into_iter()
        .map(|v| format!("{}: {}", v.rule, v.path))
        .collect()
}

const ROOT_MANIFEST: &str =
    "[package]\nname = \"facade\"\n\n[dependencies]\na = { path = \"crates/a\" }\n";
const A_MANIFEST: &str = "[package]\nname = \"a\"\n\n[dependencies]\nb = { path = \"../b\" }\n";
const B_MANIFEST: &str = "[package]\nname = \"b\"\n\n[dependencies]\n";

const LAYERED_POLICY: &str = r#"
[rules.layering]
crates = ["facade: a b", "a: b", "b:"]
"#;

// ------------------------------------------------------------ layering

#[test]
fn layering_quiet_on_a_declared_dag() {
    let root = mini_workspace(
        "lay_clean",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { a::f() }\n"),
            ("crates/a/Cargo.toml", A_MANIFEST),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { b::g() }\n"),
            ("crates/b/Cargo.toml", B_MANIFEST),
            ("crates/b/src/lib.rs", "pub fn g() -> u32 { 7 }\n"),
        ],
    );
    assert_eq!(
        workspace_violations(&root, LAYERED_POLICY),
        Vec::<String>::new()
    );
}

#[test]
fn layering_fires_on_an_undeclared_source_reference() {
    // `b` reaches *up* into `a` in code only — no Cargo.toml edge.
    let root = mini_workspace(
        "lay_code_ref",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { 1 }\n"),
            ("crates/a/Cargo.toml", A_MANIFEST),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { 2 }\n"),
            ("crates/b/Cargo.toml", B_MANIFEST),
            ("crates/b/src/lib.rs", "pub fn g() -> u32 { a::f() }\n"),
        ],
    );
    assert_eq!(
        workspace_violations(&root, LAYERED_POLICY),
        ["layering: crates/b/src/lib.rs"]
    );
}

#[test]
fn layering_fires_on_an_undeclared_manifest_edge() {
    // The Cargo.toml edge b -> a exists but the declared DAG says "b:".
    let b_manifest_with_a = "[package]\nname = \"b\"\n\n[dependencies]\na = { path = \"../a\" }\n";
    let root = mini_workspace(
        "lay_manifest_edge",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { 1 }\n"),
            ("crates/a/Cargo.toml", A_MANIFEST),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { 2 }\n"),
            ("crates/b/Cargo.toml", b_manifest_with_a),
            ("crates/b/src/lib.rs", "pub fn g() -> u32 { 3 }\n"),
        ],
    );
    assert_eq!(
        workspace_violations(&root, LAYERED_POLICY),
        ["layering: crates/b/Cargo.toml"]
    );
}

#[test]
fn layering_ignores_dev_dependency_edges() {
    // Cargo permits dev-only cycles (tests may depend on higher layers).
    let b_manifest_dev = "[package]\nname = \"b\"\n\n[dev-dependencies]\na = { path = \"../a\" }\n";
    let root = mini_workspace(
        "lay_dev_edge",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { 1 }\n"),
            ("crates/a/Cargo.toml", A_MANIFEST),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { 2 }\n"),
            ("crates/b/Cargo.toml", b_manifest_dev),
            ("crates/b/src/lib.rs", "pub fn g() -> u32 { 3 }\n"),
        ],
    );
    assert_eq!(
        workspace_violations(&root, LAYERED_POLICY),
        Vec::<String>::new()
    );
}

#[test]
fn layering_fires_on_a_crate_missing_from_the_declared_dag() {
    let policy_without_b = r#"
[rules.layering]
crates = ["facade: a", "a:"]
"#;
    let root = mini_workspace(
        "lay_undeclared_crate",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { 1 }\n"),
            ("crates/a/Cargo.toml", "[package]\nname = \"a\"\n"),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { 2 }\n"),
            ("crates/b/Cargo.toml", B_MANIFEST),
            ("crates/b/src/lib.rs", "pub fn g() -> u32 { 3 }\n"),
        ],
    );
    assert_eq!(
        workspace_violations(&root, policy_without_b),
        ["layering: crates/b/Cargo.toml"]
    );
}

#[test]
fn layering_detects_a_module_cycle_and_respects_allow_paths() {
    let files: &[(&str, &str)] = &[
        ("Cargo.toml", ROOT_MANIFEST),
        (
            "src/lib.rs",
            "pub mod query;\npub mod session;\npub fn top() -> u32 { 1 }\n",
        ),
        (
            "src/query.rs",
            "pub fn q() -> u32 { crate::session::s() }\npub fn q2() -> u32 { 1 }\n",
        ),
        (
            "src/session.rs",
            "pub fn s() -> u32 { 2 }\npub fn s2() -> u32 { crate::query::q2() }\n",
        ),
        ("crates/a/Cargo.toml", A_MANIFEST),
        ("crates/a/src/lib.rs", "pub fn f() -> u32 { b::g() }\n"),
        ("crates/b/Cargo.toml", B_MANIFEST),
        ("crates/b/src/lib.rs", "pub fn g() -> u32 { 3 }\n"),
    ];
    let root = mini_workspace("lay_module_cycle", files);
    let cfg = config::parse(LAYERED_POLICY).expect("policy parses");
    let report = lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "layering");
    assert!(
        v.message.contains("query") && v.message.contains("session"),
        "cycle message names its modules: {}",
        v.message
    );

    // The same tree under an allow that covers the cyclic files is clean.
    let allowed = r#"
[rules.layering]
crates = ["facade: a b", "a: b", "b:"]
allow = ["src"]
"#;
    assert_eq!(workspace_violations(&root, allowed), Vec::<String>::new());
}

#[test]
fn layering_source_reference_suppressed_by_reasoned_inline_allow() {
    let suppressed = "pub fn g() -> u32 {\n    // lint: allow(layering) — fixture: upward call quarantined here\n    a::f()\n}\n";
    let root = mini_workspace(
        "lay_inline_allow",
        &[
            ("Cargo.toml", ROOT_MANIFEST),
            ("src/lib.rs", "pub fn top() -> u32 { 1 }\n"),
            ("crates/a/Cargo.toml", A_MANIFEST),
            ("crates/a/src/lib.rs", "pub fn f() -> u32 { 2 }\n"),
            ("crates/b/Cargo.toml", B_MANIFEST),
            ("crates/b/src/lib.rs", suppressed),
        ],
    );
    assert_eq!(
        workspace_violations(&root, LAYERED_POLICY),
        Vec::<String>::new()
    );
}

// ---------------------------------------------------------- concurrency

/// A concurrency-only policy: two ordered locks, one scheduler-loop file.
fn ccfg() -> Config {
    config::parse(
        r#"
[rules.concurrency]
paths = ["lib/src"]
scheduler_loops = ["lib/src/sched.rs"]

[locks]
order = ["outer", "inner"]
"#,
    )
    .expect("concurrency policy parses")
}

fn concurrency_fired(path: &str, source: &str) -> Vec<String> {
    lint_file(path, source, &ccfg())
        .into_iter()
        .map(|v| v.rule.to_owned())
        .collect()
}

#[test]
fn concurrency_quiet_on_ordered_nesting_and_released_guards() {
    let src = r"
use std::sync::Mutex;
pub fn ordered(outer: &Mutex<u32>, inner: &Mutex<u32>) -> u32 {
    let a = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a + *b
}
pub fn released(outer: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let g = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let v = *g;
    drop(g);
    let _ = tx.send(v);
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), Vec::<String>::new());
}

#[test]
fn concurrency_fires_on_inverted_lock_order() {
    let src = r"
use std::sync::Mutex;
pub fn inverted(outer: &Mutex<u32>, inner: &Mutex<u32>) -> u32 {
    let b = inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let a = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a + *b
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), ["concurrency"]);
}

#[test]
fn concurrency_fires_on_same_lock_reacquisition() {
    let src = r"
use std::sync::Mutex;
pub fn twice(outer: &Mutex<u32>) -> u32 {
    let a = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a + *b
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), ["concurrency"]);
}

#[test]
fn concurrency_fires_on_guard_held_across_blocking_ops() {
    for blocking in ["tx.send(*g)", "rx.recv()", "h.join()"] {
        let src = format!(
            r"
use std::sync::Mutex;
pub fn f(
    outer: &Mutex<u32>,
    tx: &std::sync::mpsc::Sender<u32>,
    rx: &std::sync::mpsc::Receiver<u32>,
    h: std::thread::JoinHandle<()>,
) {{
    let g = outer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = {blocking};
    let _ = *g;
}}
"
        );
        // `rx.recv()` outside the scheduler file also trips confinement.
        let fired = concurrency_fired("lib/src/a.rs", &src);
        assert!(
            fired.iter().any(|r| r == "concurrency") && !fired.is_empty(),
            "{blocking}: {fired:?}"
        );
    }
}

#[test]
fn concurrency_fires_on_unregistered_lock_names() {
    let src = r"
use std::sync::Mutex;
pub fn f(mystery: &Mutex<u32>) -> u32 {
    *mystery.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), ["concurrency"]);
}

#[test]
fn timeoutless_recv_confined_to_scheduler_loops() {
    let src = r"
pub fn pump(rx: &std::sync::mpsc::Receiver<u32>) -> Option<u32> {
    rx.recv().ok()
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), ["concurrency"]);
    // The declared scheduler-loop file may block indefinitely.
    assert_eq!(
        concurrency_fired("lib/src/sched.rs", src),
        Vec::<String>::new()
    );
    // recv_timeout is the sanctioned alternative anywhere.
    let timed = r"
pub fn pump(rx: &std::sync::mpsc::Receiver<u32>) -> Option<u32> {
    rx.recv_timeout(std::time::Duration::from_millis(5)).ok()
}
";
    assert_eq!(
        concurrency_fired("lib/src/a.rs", timed),
        Vec::<String>::new()
    );
}

#[test]
fn concurrency_quiet_on_join_and_recv_lookalikes() {
    let src = r#"
pub fn lookalikes(parts: &[String], path: &std::path::Path) -> String {
    let joined = parts.join(", ");
    let p = path.join("sub");
    format!("{joined}{}", p.display())
}
"#;
    assert_eq!(concurrency_fired("lib/src/a.rs", src), Vec::<String>::new());
}

#[test]
fn concurrency_suppressed_by_reasoned_inline_allow() {
    let src = r"
use std::sync::Mutex;
pub fn f(inner: &Mutex<std::sync::mpsc::Receiver<u32>>) -> Option<u32> {
    let inner = inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // lint: allow(concurrency) — fixture: the mutex IS the queue handoff
    inner.recv().ok()
}
";
    assert_eq!(concurrency_fired("lib/src/a.rs", src), Vec::<String>::new());
}

// ------------------------------------------------------------ fix engine

/// A panic-enabled policy for fix-engine fixtures.
fn fcfg() -> Config {
    config::parse("[rules.panic]\npaths = [\"lib/src\"]\n").expect("fix policy parses")
}

/// Applies every fix the lint produces for `source` and returns the
/// rewritten text (asserting at least one fix existed).
fn apply_all(path: &str, source: &str) -> String {
    let violations = lint_file(path, source, &fcfg());
    let plan = fix_plan(&violations);
    let file_fixes = plan.get(path).expect("at least one fix planned");
    let (fixed, applied, skipped) = fixes::apply_to_source(source, file_fixes);
    assert!(applied > 0);
    assert_eq!(skipped, 0);
    fixed
}

#[test]
fn fix_rewrites_partial_cmp_unwrap_to_total_cmp() {
    let src = r#"
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
pub fn sort2(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("comparable"));
}
"#;
    let fixed = apply_all("lib/src/a.rs", src);
    assert!(fixed.contains("a.total_cmp(b));"), "{fixed}");
    assert!(!fixed.contains("partial_cmp"), "{fixed}");
    assert!(
        !fixed.contains("unwrap") && !fixed.contains("expect"),
        "{fixed}"
    );
}

#[test]
fn fix_removes_unreasoned_and_unused_allows() {
    // Both a reason-less allow and a reasoned-but-unused allow sit above
    // clean code; --fix deletes the comment lines outright.
    let src = "// lint: allow(panic)\npub fn f() -> u32 { 1 }\n// lint: allow(panic) — fixture: nothing here panics any more\npub fn g() -> u32 { 2 }\n";
    let fixed = apply_all("lib/src/a.rs", src);
    assert_eq!(fixed, "pub fn f() -> u32 { 1 }\npub fn g() -> u32 { 2 }\n");
}

#[test]
fn fixed_output_relints_clean_and_fixes_are_idempotent() {
    let src = r#"
// lint: allow(panic) — fixture: stale suppression
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
}
"#;
    let fixed = apply_all("lib/src/a.rs", src);

    // The rewritten tree carries no violations at all.
    let remaining = lint_file("lib/src/a.rs", &fixed, &fcfg());
    assert!(remaining.is_empty(), "{remaining:?}");

    // And therefore no fixes: a second --fix pass is the identity.
    let plan = fix_plan(&remaining);
    assert!(plan.is_empty());
    let (refixed, applied, skipped) = fixes::apply_to_source(&fixed, &[]);
    assert_eq!((refixed.as_str(), applied, skipped), (fixed.as_str(), 0, 0));
}

#[test]
fn judgment_shaped_violations_carry_no_fix() {
    // A bare .unwrap() on an Option has no mechanical rewrite; the
    // diagnostic must not pretend otherwise.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let violations = lint_file("lib/src/a.rs", src, &fcfg());
    assert_eq!(violations.len(), 1);
    assert!(violations[0].fix.is_none());
    assert!(fix_plan(&violations).is_empty());
}
