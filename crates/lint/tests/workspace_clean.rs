//! Tier-1 proof that the merged tree satisfies its own invariant policy:
//! the same check CI runs, wired into `cargo test` so a violation can never
//! land without flipping a test red locally first.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_committed_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = rapidviz_lint::load_config(&root.join("lint.toml")).expect("lint.toml loads");
    let report = rapidviz_lint::lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace invariant violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against silently linting the wrong directory: the workspace
    // has far more than this many .rs files.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn committed_policy_enables_the_semantic_passes() {
    // The cross-file passes only run when configured; this pins that the
    // committed lint.toml actually turns them on (a gutted config would
    // make `workspace_is_clean_under_the_committed_policy` vacuous).
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = rapidviz_lint::load_config(&root.join("lint.toml")).expect("lint.toml loads");
    assert!(
        cfg.layering.len() >= 9,
        "all first-party crates declared in [rules.layering], got {}",
        cfg.layering.len()
    );
    assert!(
        !cfg.lock_order.is_empty(),
        "[locks] order must name the workspace's mutexes"
    );
    assert!(
        !cfg.scheduler_loops.is_empty(),
        "scheduler_loops must name the blocking-recv files"
    );
}

#[test]
fn no_fixes_are_pending_on_the_committed_tree() {
    // The CI `--fix --check` gate, as a test: every committed violation
    // fix must already be applied (there are zero violations, so zero
    // fixes — this catches a future where suppressed-but-fixable
    // diagnostics linger).
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = rapidviz_lint::load_config(&root.join("lint.toml")).expect("lint.toml loads");
    let report = rapidviz_lint::lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    let plan = rapidviz_lint::fix_plan(&report.violations);
    assert!(plan.is_empty(), "pending --fix rewrites: {plan:?}");
}
