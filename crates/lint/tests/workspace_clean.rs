//! Tier-1 proof that the merged tree satisfies its own invariant policy:
//! the same check CI runs, wired into `cargo test` so a violation can never
//! land without flipping a test red locally first.

use std::path::Path;

#[test]
fn workspace_is_clean_under_the_committed_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = rapidviz_lint::load_config(&root.join("lint.toml")).expect("lint.toml loads");
    let report = rapidviz_lint::lint_workspace(&root, &cfg).expect("workspace walk succeeds");
    assert!(
        report.violations.is_empty(),
        "workspace invariant violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Guard against silently linting the wrong directory: the workspace
    // has far more than this many .rs files.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
