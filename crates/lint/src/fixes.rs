//! The `--fix` engine: machine-applicable rewrites carried by
//! diagnostics.
//!
//! A [`Fix`] is a byte-span replacement against the *original* source of
//! one file. Rules attach fixes only where the rewrite is mechanical and
//! behavior-preserving by construction (`partial_cmp(..).expect(..)` →
//! `total_cmp(..)`, deleting an unused or un-reasoned suppression
//! comment); anything judgment-shaped (threading a `Clock`, restructuring
//! a guard) stays a suggestion in the message.
//!
//! Application is conservative: fixes are sorted by span, overlapping
//! fixes after the first are skipped (re-running the lint picks them up
//! once the tree settles), and applying the same fix set twice is a
//! no-op because the violations it was derived from no longer exist —
//! the idempotence the CI `--fix --check` mode relies on.

/// One machine-applicable rewrite: replace `source[start..end]` with
/// `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Start byte offset (inclusive) in the file's original source.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// Replacement text (may be empty — a deletion).
    pub replacement: String,
    /// Short human-readable description printed by `--fix`.
    pub note: String,
}

/// Applies `fixes` to `source`. Returns the rewritten text plus counts of
/// applied and skipped (overlapping or out-of-bounds) fixes.
#[must_use]
pub fn apply_to_source(source: &str, fixes: &[Fix]) -> (String, usize, usize) {
    let mut sorted: Vec<&Fix> = fixes.iter().collect();
    sorted.sort_by_key(|f| (f.start, f.end));
    let mut out = String::with_capacity(source.len());
    let mut cursor = 0usize;
    let mut applied = 0usize;
    let mut skipped = 0usize;
    for f in sorted {
        if f.start < cursor || f.end < f.start || f.end > source.len() {
            skipped += 1;
            continue;
        }
        if !source.is_char_boundary(f.start) || !source.is_char_boundary(f.end) {
            skipped += 1;
            continue;
        }
        out.push_str(&source[cursor..f.start]);
        out.push_str(&f.replacement);
        cursor = f.end;
        applied += 1;
    }
    out.push_str(&source[cursor..]);
    (out, applied, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(start: usize, end: usize, replacement: &str) -> Fix {
        Fix {
            start,
            end,
            replacement: replacement.to_owned(),
            note: "test".to_owned(),
        }
    }

    #[test]
    fn replaces_and_deletes_in_order() {
        let src = "abc def ghi";
        let (out, applied, skipped) =
            apply_to_source(src, &[fix(8, 11, "X"), fix(0, 3, "Z"), fix(4, 8, "")]);
        assert_eq!(out, "Z X");
        assert_eq!((applied, skipped), (3, 0));
    }

    #[test]
    fn overlapping_fixes_are_skipped_not_corrupted() {
        let src = "abcdef";
        let (out, applied, skipped) = apply_to_source(src, &[fix(0, 4, "X"), fix(2, 6, "Y")]);
        assert_eq!(out, "Xef");
        assert_eq!((applied, skipped), (1, 1));
    }

    #[test]
    fn out_of_bounds_and_non_boundary_fixes_are_skipped() {
        let src = "héllo";
        let (out, _, skipped) = apply_to_source(src, &[fix(0, 99, "X"), fix(2, 2, "Y")]);
        assert_eq!(out, src);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn empty_fix_list_is_identity() {
        let (out, applied, skipped) = apply_to_source("unchanged", &[]);
        assert_eq!(out, "unchanged");
        assert_eq!((applied, skipped), (0, 0));
    }
}
