//! CLI front end: `rapidviz-lint --workspace` from the repo root is the
//! CI entry point; see the library docs for rules and suppressions.

use rapidviz_lint::{fix_plan, fixes, lint_file, lint_workspace, load_config, Config, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    files: Vec<String>,
    explain: bool,
    fix: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        config: None,
        files: Vec::new(),
        explain: false,
        fix: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--explain" => args.explain = true,
            "--fix" => args.fix = true,
            "--check" => args.check = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(f.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if args.check && !args.fix {
        return Err(format!("--check requires --fix\n{USAGE}"));
    }
    if !args.workspace && !args.explain && args.files.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "\
usage: rapidviz-lint --workspace [--root <dir>] [--config <lint.toml>]
       rapidviz-lint --workspace --fix [--check] [--root <dir>]
       rapidviz-lint [--root <dir>] <file.rs> [...]
       rapidviz-lint --explain

Lints the workspace's .rs files against the committed invariant policy
(lint.toml at the workspace root): panic-freedom on answer paths, clock
discipline, determinism, the unsafe budget, output discipline, crate
layering, and lock/channel concurrency discipline. Exits 1 on any
violation.

--fix applies the machine-applicable rewrites carried by diagnostics
(then reports what remains); --fix --check applies nothing and exits
non-zero if any fix would change the tree.";

/// Runs the configured lint once and returns (violations, files scanned).
fn run_lint(args: &Args, cfg: &Config) -> Result<(Vec<Violation>, usize), String> {
    if args.workspace {
        let r = lint_workspace(&args.root, cfg)?;
        Ok((r.violations, r.files_scanned))
    } else {
        let mut vs = Vec::new();
        for rel in &args.files {
            let full = args.root.join(rel);
            let source = std::fs::read_to_string(&full)
                .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
            vs.extend(lint_file(rel, &source, cfg));
        }
        Ok((vs, args.files.len()))
    }
}

/// Applies (or, in check mode, only plans) the fixes carried by
/// `violations`. Returns the number of files that changed (or would).
fn apply_fixes(root: &Path, violations: &[Violation], check: bool) -> Result<usize, String> {
    let plan = fix_plan(violations);
    let mut changed_files = 0usize;
    for (rel, file_fixes) in &plan {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let (fixed, applied, skipped) = fixes::apply_to_source(&source, file_fixes);
        if fixed == source {
            continue;
        }
        changed_files += 1;
        if check {
            println!("would fix {rel}: {applied} rewrite(s)");
        } else {
            std::fs::write(&full, &fixed)
                .map_err(|e| format!("cannot write {}: {e}", full.display()))?;
            println!("fixed {rel}: {applied} rewrite(s) applied");
        }
        if skipped > 0 {
            println!("  ({skipped} overlapping rewrite(s) deferred to the next run)");
        }
    }
    Ok(changed_files)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.explain {
        println!("{}", EXPLAIN.trim_start());
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let (mut violations, files_scanned) = match run_lint(&args, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.fix {
        match apply_fixes(&args.root, &violations, args.check) {
            Ok(0) => {}
            Ok(changed) if args.check => {
                eprintln!(
                    "error: {changed} file(s) would be rewritten by --fix — run \
                     `rapidviz-lint --workspace --fix` and commit the result"
                );
                return ExitCode::FAILURE;
            }
            Ok(_) => {
                // Re-lint the rewritten tree so the report below shows
                // what remains for a human (and proves idempotence: a
                // second --fix run finds nothing left to rewrite).
                match run_lint(&args, &cfg) {
                    Ok((vs, _)) => violations = vs,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("rapidviz-lint: {files_scanned} file(s) clean — all workspace invariants hold");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            violations.iter().map(|v| v.path.as_str()).collect();
        println!(
            "error: {} invariant violation(s) across {} file(s) ({} scanned)",
            violations.len(),
            files.len(),
            files_scanned
        );
        ExitCode::FAILURE
    }
}

const EXPLAIN: &str = r"
rapidviz-lint enforces seven rule families (see the crate docs for the
full story):

  panic         no .unwrap()/.expect()/panic!/todo!/unimplemented! in
                library code on the serving/scheduler/engine answer paths
  clock         no Instant::now()/SystemTime::now() outside the Clock
                abstraction and binaries — budgets stay simulatable
  determinism   no thread_rng/ambient random()/hash-collection iteration
                in answer-producing crates — answers replay bit-identically
  unsafe        every `unsafe` token must match a committed [[unsafe]]
                entry in lint.toml (file, exact count, justification)
  output        no println!/eprintln! in library crates — diagnostics go
                through Metrics or returned errors
  layering      first-party crate references and Cargo.toml edges must
                follow the [rules.layering] DAG (engine crates never
                depend on serving/sim/bench layers), and no crate may
                hold a crate::-import module cycle
  concurrency   every .lock() receiver registered in [locks]; nested
                acquisitions follow that order; no guard held across
                blocking send()/recv()/join(); timeout-less recv()
                confined to declared scheduler_loops files

Suppressions: per-rule path lists in lint.toml, or inline
  // lint: allow(<rule>) — <reason>
where the reason is mandatory and unused allows are violations.

--fix applies machine-applicable rewrites (partial_cmp().unwrap() →
total_cmp(), deleting unused/un-reasoned allows); --fix --check fails
if any fix is pending. Fixes are idempotent and the fixed tree re-lints
clean.";

#[cfg(test)]
mod tests {
    #[test]
    fn classify_is_reexported_for_tooling() {
        use rapidviz_lint::{classify, TargetClass};
        assert_eq!(classify("shims/rand/src/lib.rs"), TargetClass::Shim);
    }
}
