//! CLI front end: `rapidviz-lint --workspace` from the repo root is the
//! CI entry point; see the library docs for rules and suppressions.

use rapidviz_lint::{lint_file, lint_workspace, load_config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    files: Vec<String>,
    explain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        config: None,
        files: Vec::new(),
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--explain" => args.explain = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(f.to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if !args.workspace && !args.explain && args.files.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "\
usage: rapidviz-lint --workspace [--root <dir>] [--config <lint.toml>]
       rapidviz-lint [--root <dir>] <file.rs> [...]
       rapidviz-lint --explain

Lints the workspace's .rs files against the committed invariant policy
(lint.toml at the workspace root): panic-freedom on answer paths, clock
discipline, determinism, the unsafe budget, and output discipline.
Exits 1 on any violation.";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.explain {
        println!("{}", EXPLAIN.trim_start());
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let (violations, files_scanned) = if args.workspace {
        match lint_workspace(&args.root, &cfg) {
            Ok(r) => (r.violations, r.files_scanned),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut vs = Vec::new();
        for rel in &args.files {
            let full = args.root.join(rel);
            let source = match std::fs::read_to_string(&full) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", full.display());
                    return ExitCode::from(2);
                }
            };
            vs.extend(lint_file(rel, &source, &cfg));
        }
        (vs, args.files.len())
    };

    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("rapidviz-lint: {files_scanned} file(s) clean — all workspace invariants hold");
        ExitCode::SUCCESS
    } else {
        let files: std::collections::BTreeSet<&str> =
            violations.iter().map(|v| v.path.as_str()).collect();
        println!(
            "error: {} invariant violation(s) across {} file(s) ({} scanned)",
            violations.len(),
            files.len(),
            files_scanned
        );
        ExitCode::FAILURE
    }
}

const EXPLAIN: &str = r"
rapidviz-lint enforces five rule families (see the crate docs for the
full story):

  panic         no .unwrap()/.expect()/panic!/todo!/unimplemented! in
                library code on the serving/scheduler/engine answer paths
  clock         no Instant::now()/SystemTime::now() outside the Clock
                abstraction and binaries — budgets stay simulatable
  determinism   no thread_rng/ambient random()/hash-collection iteration
                in answer-producing crates — answers replay bit-identically
  unsafe        every `unsafe` token must match a committed [[unsafe]]
                entry in lint.toml (file, exact count, justification)
  output        no println!/eprintln! in library crates — diagnostics go
                through Metrics or returned errors

Suppressions: per-rule path lists in lint.toml, or inline
  // lint: allow(<rule>) — <reason>
where the reason is mandatory and unused allows are violations.";

#[cfg(test)]
mod tests {
    #[test]
    fn classify_is_reexported_for_tooling() {
        use rapidviz_lint::{classify, TargetClass};
        assert_eq!(classify("shims/rand/src/lib.rs"), TargetClass::Shim);
    }
}
