//! The rule families, the inline suppression mechanism, and the per-file
//! driver.
//!
//! Every rule works on the token stream from [`crate::lexer`]; nothing
//! here looks at raw text, so string-embedded `unwrap()` and commented-out
//! `Instant::now()` can never fire. See the crate docs for the rule
//! catalogue and the `// lint: allow(<rule>) — <reason>` escape hatch.

use crate::config::{Config, RULE_NAMES};
use crate::fixes::Fix;
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::model::{self, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule family (`panic`, `clock`, `determinism`, `unsafe`, `output`,
    /// `layering`, `concurrency`, or `allow` for suppression-discipline
    /// findings).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Byte span of the offending tokens in the original source, when the
    /// diagnostic is anchored to specific tokens.
    pub span: Option<(usize, usize)>,
    /// Machine-applicable rewrite, applied by `--fix`. Only attached when
    /// the rewrite is mechanical and behavior-preserving.
    pub fix: Option<Fix>,
}

impl Violation {
    /// A violation with no span or fix.
    #[must_use]
    pub fn new(path: &str, line: u32, col: u32, rule: &'static str, message: String) -> Self {
        Self {
            path: path.to_owned(),
            line,
            col,
            rule,
            message,
            span: None,
            fix: None,
        }
    }

    /// A violation anchored to one token (position and byte span).
    #[must_use]
    pub fn at(path: &str, tok: &Tok, rule: &'static str, message: String) -> Self {
        Self {
            span: Some((tok.byte, tok.byte_end)),
            ..Self::new(path, tok.line, tok.col, rule, message)
        }
    }

    /// Attaches a machine-applicable rewrite.
    #[must_use]
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.span = Some((fix.start, fix.end));
        self.fix = Some(fix);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )?;
        if self.fix.is_some() {
            write!(f, " [fixable]")?;
        }
        Ok(())
    }
}

/// What kind of compilation target a file belongs to, derived from its
/// workspace-relative path. Rules exempt whole classes: tests may panic,
/// binaries may read the wall clock, shims are vendored stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// Library code — the answer-producing paths; every rule applies.
    Library,
    /// Integration tests and in-crate `tests/` trees.
    Test,
    /// Criterion-style benches.
    Bench,
    /// Examples.
    Example,
    /// Binary entry points (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Vendored shim crates (`shims/*`) — exempt from style rules but not
    /// from the unsafe budget.
    Shim,
}

/// Classifies a workspace-relative, `/`-separated path.
#[must_use]
pub fn classify(path: &str) -> TargetClass {
    if path.starts_with("shims/") {
        TargetClass::Shim
    } else if path.starts_with("tests/") || path.contains("/tests/") {
        TargetClass::Test
    } else if path.starts_with("benches/") || path.contains("/benches/") {
        TargetClass::Bench
    } else if path.starts_with("examples/") || path.contains("/examples/") {
        TargetClass::Example
    } else if path.contains("/bin/") || path.ends_with("/main.rs") {
        TargetClass::Bin
    } else {
        TargetClass::Library
    }
}

pub(crate) fn under_any(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        path == p || (path.starts_with(p) && path[p.len()..].starts_with('/'))
    })
}

/// Lints one file's source. `path` is workspace-relative with `/`
/// separators; it drives target classification and rule scoping.
/// Workspace-model-dependent passes (source-level layering) are skipped;
/// use [`lint_file_with_model`] for the full set.
#[must_use]
pub fn lint_file(path: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let lexed = lex(source);
    lint_lexed(path, source, &lexed, cfg, None)
}

/// Lints one file with the workspace model available, enabling the
/// source-level crate-layering pass in addition to every single-file
/// rule.
#[must_use]
pub fn lint_file_with_model(
    path: &str,
    source: &str,
    cfg: &Config,
    model: &WorkspaceModel,
) -> Vec<Violation> {
    let lexed = lex(source);
    lint_lexed(path, source, &lexed, cfg, Some(model))
}

/// The per-file driver over an already-lexed source.
pub(crate) fn lint_lexed(
    path: &str,
    source: &str,
    lexed: &Lexed,
    cfg: &Config,
    model: Option<&WorkspaceModel>,
) -> Vec<Violation> {
    let class = classify(path);
    let in_test = test_regions(&lexed.tokens);
    let mut allows = parse_allows(path, source, lexed);
    let mut out = Vec::new();
    out.append(&mut allows.errors);

    let mut fired: Vec<(usize, Violation)> = Vec::new(); // (allow idx, v)
    let mut raw = Vec::new();

    if rule_applies(cfg, "panic", path, class, &[TargetClass::Library]) {
        panic_rule(path, source, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "clock", path, class, &[TargetClass::Library]) {
        clock_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "determinism", path, class, &[TargetClass::Library]) {
        determinism_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "output", path, class, &[TargetClass::Library]) {
        output_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(
        cfg,
        "unsafe",
        path,
        class,
        &[TargetClass::Library, TargetClass::Bin, TargetClass::Shim],
    ) {
        unsafe_rule(path, &lexed.tokens, cfg, &mut raw);
    }
    if rule_applies(
        cfg,
        "concurrency",
        path,
        class,
        &[TargetClass::Library, TargetClass::Bin],
    ) {
        concurrency_rule(path, &lexed.tokens, &in_test, cfg, &mut raw);
    }
    if let Some(model) = model {
        if rule_applies(
            cfg,
            "layering",
            path,
            class,
            &[TargetClass::Library, TargetClass::Bin],
        ) {
            layering_rule(path, &lexed.tokens, &in_test, cfg, model, &mut raw);
        }
    }

    // Apply inline suppressions: a violation on a line covered by an
    // allow for its rule is swallowed and marks that allow used.
    for v in raw {
        match allows.covering(v.rule, v.line) {
            Some(idx) => fired.push((idx, v)),
            None => out.push(v),
        }
    }
    let used: BTreeSet<usize> = fired.iter().map(|(i, _)| *i).collect();
    for (idx, a) in allows.directives.iter().enumerate() {
        if !used.contains(&idx) {
            out.push(
                Violation::new(
                    path,
                    a.line,
                    1,
                    "allow",
                    format!(
                        "unused suppression: `lint: allow({})` matches no violation on its \
                         target line",
                        a.rules.join(", ")
                    ),
                )
                .with_fix(comment_deletion_fix(
                    source,
                    a.byte,
                    a.byte_end,
                    "delete unused suppression comment",
                )),
            );
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// A fix deleting the comment at `byte..byte_end`, widened to swallow the
/// horizontal whitespace before it and — when the comment has the line to
/// itself — the line's trailing newline, so the deletion leaves no blank
/// line behind.
fn comment_deletion_fix(source: &str, byte: usize, byte_end: usize, note: &str) -> Fix {
    let bytes = source.as_bytes();
    let mut start = byte;
    while start > 0 && matches!(bytes[start - 1], b' ' | b'\t') {
        start -= 1;
    }
    let standalone = start == 0 || bytes[start - 1] == b'\n';
    let mut end = byte_end;
    if standalone && end < bytes.len() && bytes[end] == b'\n' {
        end += 1;
    }
    Fix {
        start,
        end,
        replacement: String::new(),
        note: note.to_owned(),
    }
}

pub(crate) fn rule_applies(
    cfg: &Config,
    rule: &str,
    path: &str,
    class: TargetClass,
    classes: &[TargetClass],
) -> bool {
    if !classes.contains(&class) {
        return false;
    }
    let rc = cfg.rule(rule);
    if !rc.paths.is_empty() && !under_any(path, &rc.paths) {
        return false;
    }
    !under_any(path, &rc.allow)
}

// ---------------------------------------------------------------------
// Inline suppressions
// ---------------------------------------------------------------------

struct AllowDirective {
    rules: Vec<String>,
    /// The source line the directive suppresses violations on.
    target_line: u32,
    /// The line the comment itself sits on (for unused-allow reports).
    line: u32,
    /// Byte span of the comment (for the `--fix` deletion rewrite).
    byte: usize,
    byte_end: usize,
}

struct Allows {
    directives: Vec<AllowDirective>,
    errors: Vec<Violation>,
}

impl Allows {
    fn covering(&self, rule: &str, line: u32) -> Option<usize> {
        self.directives
            .iter()
            .position(|d| d.target_line == line && d.rules.iter().any(|r| r == rule))
    }
}

/// Parses `// lint: allow(rule[, rule]) — reason` comments. A trailing
/// comment suppresses its own line; a standalone comment suppresses the
/// next line holding code. The reason (after `—`, `--`, or `-`) is
/// mandatory: an allow without one is itself a violation, so every
/// suppression in the tree carries its justification.
fn parse_allows(path: &str, source: &str, lexed: &Lexed) -> Allows {
    let mut directives = Vec::new();
    let mut errors = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut push_err = |msg: String| {
            errors.push(Violation::new(path, c.line, 1, "allow", msg));
        };
        let Some(rest) = rest.strip_prefix("allow") else {
            push_err(format!(
                "malformed lint directive {text:?} (expected `lint: allow(<rule>) — <reason>`)"
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some((inside, after)) = rest.strip_prefix('(').and_then(|s| s.split_once(')')) else {
            push_err(format!(
                "malformed lint directive {text:?} (missing rule list)"
            ));
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            push_err("suppression names no rule".to_owned());
            continue;
        }
        let mut bad = false;
        for r in &rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                push_err(format!(
                    "suppression names unknown rule {r:?} (expected one of {RULE_NAMES:?})"
                ));
                bad = true;
            }
            if r == "unsafe" {
                push_err(
                    "the unsafe budget cannot be suppressed inline — add a [[unsafe]] entry to lint.toml"
                        .to_owned(),
                );
                bad = true;
            }
        }
        if bad {
            continue;
        }
        let reason = after
            .trim_start()
            .trim_start_matches(['—', '–'])
            .trim_start_matches("--")
            .trim_start_matches('-')
            .trim_start_matches(':')
            .trim();
        if reason.is_empty() {
            errors.push(
                Violation::new(
                    path,
                    c.line,
                    1,
                    "allow",
                    format!(
                        "un-reasoned suppression: `lint: allow({})` must carry `— <reason>`",
                        rules.join(", ")
                    ),
                )
                .with_fix(comment_deletion_fix(
                    source,
                    c.byte,
                    c.byte_end,
                    "delete un-reasoned suppression comment",
                )),
            );
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            // The next line holding any code token.
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        directives.push(AllowDirective {
            rules,
            target_line,
            line: c.line,
            byte: c.byte,
            byte_end: c.byte_end,
        });
    }
    Allows { directives, errors }
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Marks tokens inside `#[test]` / `#[cfg(test)]`-gated items so rules
/// skip in-file unit-test modules and functions. `#[cfg(not(test))]` is
/// *not* a test gate. Returns one flag per token.
pub(crate) fn test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            if attr_gates_test(&tokens[i + 2..close]) {
                // Skip any further attributes between this one and the item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return flags,
                    }
                }
                // The gated item runs to its closing brace (fn/mod body)
                // or to a `;` (out-of-line `mod tests;`), whichever comes
                // first at nesting depth zero.
                let mut k = j;
                let mut end = None;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        end = Some(k);
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        end = matching(tokens, k, '{', '}');
                        break;
                    }
                    k += 1;
                }
                let end = end.unwrap_or(tokens.len() - 1);
                for f in flags.iter_mut().take(end + 1).skip(i) {
                    *f = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    flags
}

/// Whether an attribute's tokens (between `#[` and `]`) gate the item to
/// test builds: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, or a
/// path ending in `::test`. `not(test)` does not gate.
fn attr_gates_test(attr: &[Tok]) -> bool {
    let Some(first) = attr.first() else {
        return false;
    };
    if first.is_ident("test") {
        return true;
    }
    if !(first.is_ident("cfg") || first.text.ends_with("test")) {
        // `#[tokio::test]`-style: idents `tokio` `::` `test`.
        let is_path_test = attr
            .windows(2)
            .any(|w| w[0].is_punct(':') && w[1].is_ident("test"));
        if !is_path_test {
            return false;
        }
    }
    let mut negated_depth: Option<usize> = None;
    let mut depth = 0usize;
    for (i, t) in attr.iter().enumerate() {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth = depth.saturating_sub(1);
                if negated_depth.is_some_and(|d| depth < d) {
                    negated_depth = None;
                }
            }
            _ => {}
        }
        if t.is_ident("not") && attr.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            negated_depth.get_or_insert(depth + 1);
        }
        if t.is_ident("test") && i > 0 && negated_depth.is_none() {
            return true;
        }
    }
    false
}

/// Index of the punct matching `open` at `start` (which must hold `open`).
fn matching(tokens: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule: panic
// ---------------------------------------------------------------------

fn panic_rule(
    path: &str,
    source: &str,
    tokens: &[Tok],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                let mut v = Violation::at(
                    path,
                    t,
                    "panic",
                    format!(
                        ".{}() on an answer path — return a structured error, take a \
                         let-else graceful path, or justify with `lint: allow(panic)`",
                        t.text
                    ),
                );
                if let Some(fix) = total_cmp_fix(source, tokens, i) {
                    v = v.with_fix(fix);
                }
                out.push(v);
            }
            "panic" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(Violation::at(
                    path,
                    t,
                    "panic",
                    format!(
                        "{}! on an answer path — serving, scheduler, and engine code must \
                         degrade gracefully, not abort",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// The mechanical `partial_cmp(..).unwrap()/.expect(..)` → `total_cmp(..)`
/// rewrite: exact for float comparisons (where `partial_cmp` on a
/// non-NaN-total type is the only reason the `Option` exists), and the
/// shape every float sort in this workspace used before `total_cmp`.
/// `tokens[i]` is the `unwrap`/`expect` ident; the fix replaces from the
/// `partial_cmp` ident through the closing paren of the panic call.
fn total_cmp_fix(source: &str, tokens: &[Tok], i: usize) -> Option<Fix> {
    // Walk back over `) . unwrap` to the `(` matching the partial_cmp
    // call, then require the ident before it to be `partial_cmp`.
    if !tokens.get(i.checked_sub(2)?)?.is_punct(')') {
        return None;
    }
    // Find the `(` matching tokens[i-2] by scanning backward.
    let mut depth = 0usize;
    let mut open = None;
    for j in (0..=i - 2).rev() {
        if tokens[j].is_punct(')') {
            depth += 1;
        } else if tokens[j].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                open = Some(j);
                break;
            }
        }
    }
    let open = open?;
    let callee = tokens.get(open.checked_sub(1)?)?;
    if !callee.is_ident("partial_cmp") {
        return None;
    }
    // End of the rewrite: the `)` closing the unwrap/expect call.
    let close = matching(tokens, i + 1, '(', ')')?;
    let args = source.get(tokens[open].byte..tokens[i - 2].byte_end)?;
    Some(Fix {
        start: callee.byte,
        end: tokens[close].byte_end,
        replacement: format!("total_cmp{args}"),
        note: "replace partial_cmp().unwrap()/expect() with total_cmp()".to_owned(),
    })
}

// ---------------------------------------------------------------------
// Rule: clock
// ---------------------------------------------------------------------

fn clock_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            // Suggestion-only: threading a Clock is a design change, so
            // no machine fix is attached.
            out.push(Violation::at(
                path,
                t,
                "clock",
                format!(
                    "{}::now() outside the Clock abstraction — budgets and deadlines \
                     must stay simulatable; thread a `Clock` (SystemClock in \
                     production) or justify with `lint: allow(clock)`",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------

/// Method names whose visit order on a hash collection is
/// iteration-order-sensitive.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

fn determinism_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    // Pass 1: names lexically bound to HashMap/HashSet in this file —
    // type ascriptions (`links: HashMap<…>`, incl. struct fields and
    // params) and `let` initializers (`let m = HashMap::new()`).
    let mut hash_bound: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut let_candidate: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("let") {
            let mut j = i + 1;
            while tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let_candidate = tokens
                .get(j)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        } else if t.is_punct(';') {
            let_candidate = None;
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            // Type-ascription form: `name :` then `&`/`mut` sugar, then us.
            let mut j = i;
            while j > 0
                && (tokens[j - 1].is_punct('&')
                    || tokens[j - 1].is_ident("mut")
                    || tokens[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
            }
            if j >= 2 && tokens[j - 1].is_punct(':') && !tokens[j - 2].is_punct(':') {
                if tokens[j - 2].kind == TokKind::Ident {
                    hash_bound
                        .entry(tokens[j - 2].text.clone())
                        .or_insert((t.line, t.col));
                }
            } else if let Some(name) = let_candidate.take() {
                hash_bound.entry(name).or_insert((t.line, t.col));
            }
        }
    }
    // Pass 2: order-sensitive iteration over any tracked binding.
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("thread_rng") {
            out.push(Violation::at(
                path,
                t,
                "determinism",
                "thread_rng in answer-producing code — every RNG must be a \
                 seeded StdRng so results replay bit-identically"
                    .to_owned(),
            ));
            continue;
        }
        if t.is_ident("random")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && (tokens[i - 1].is_punct('.') || tokens[i - 1].is_ident("fn")))
        {
            out.push(Violation::at(
                path,
                t,
                "determinism",
                "ambient random() in answer-producing code — draw from a \
                 seeded, session-owned RNG instead"
                    .to_owned(),
            ));
            continue;
        }
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens[i - 2].kind == TokKind::Ident
            && hash_bound.contains_key(&tokens[i - 2].text)
        {
            out.push(Violation::at(
                path,
                t,
                "determinism",
                format!(
                    "`{}.{}()` iterates a hash collection — iteration order is \
                     nondeterministic; use a BTreeMap/sorted keys, or justify \
                     order-independence with `lint: allow(determinism)`",
                    tokens[i - 2].text,
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: output
// ---------------------------------------------------------------------

fn output_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if (t.is_ident("println")
            || t.is_ident("eprintln")
            || t.is_ident("print")
            || t.is_ident("eprint"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Violation::at(
                path,
                t,
                "output",
                format!(
                    "{}! in library code — diagnostics go through Metrics or a \
                     returned error, never straight to the process streams",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unsafe budget
// ---------------------------------------------------------------------

fn unsafe_rule(path: &str, tokens: &[Tok], cfg: &Config, out: &mut Vec<Violation>) {
    let sites: Vec<&Tok> = tokens.iter().filter(|t| t.is_ident("unsafe")).collect();
    let budget = cfg.unsafe_budget.iter().find(|e| e.file == path);
    let budgeted = budget.map_or(0, |e| e.count);
    if sites.len() == budgeted {
        return;
    }
    let (line, col) = sites.first().map_or((1, 1), |t| (t.line, t.col));
    let message = match budget {
        None => format!(
            "{} unbudgeted `unsafe` token(s) — every unsafe needs a reviewed \
             [[unsafe]] entry (file, count, justification) in lint.toml",
            sites.len()
        ),
        Some(e) => format!(
            "unsafe budget mismatch: found {} token(s) but lint.toml budgets {} — \
             update the manifest entry deliberately, with its justification",
            sites.len(),
            e.count
        ),
    };
    out.push(Violation::new(path, line, col, "unsafe", message));
}

// ---------------------------------------------------------------------
// Rule: layering (source level)
// ---------------------------------------------------------------------

/// A first-party crate reference (`use rapidviz_serve::…`) must be
/// admitted by the `[rules.layering]` DAG for the referencing crate.
/// Manifest-level edges and module cycles are checked once per run at the
/// workspace level; this pass catches the source reference itself, which
/// fires even before `Cargo.toml` changes make the dependency real.
fn layering_rule(
    path: &str,
    tokens: &[Tok],
    in_test: &[bool],
    cfg: &Config,
    model: &WorkspaceModel,
    out: &mut Vec<Violation>,
) {
    if cfg.layering.is_empty() {
        return;
    }
    let Some(krate) = model.crate_of(path) else {
        return; // shims participate in no layering contract
    };
    let Some(allowed) = cfg.layering.get(&krate.name) else {
        return; // undeclared crate: reported once at the workspace level
    };
    for u in model::crate_uses(tokens, in_test, &model.idents) {
        if u.name == krate.name || allowed.contains(&u.name) {
            continue;
        }
        out.push(Violation::new(
            path,
            u.line,
            u.col,
            "layering",
            format!(
                "crate `{}` references `{}`, which the [rules.layering] DAG does not \
                 admit — lower layers must not reach up; either the dependency is \
                 wrong or the DAG needs a reviewed edge",
                krate.name, u.name
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// Rule: concurrency (guard lifetimes, lock order, channel discipline)
// ---------------------------------------------------------------------

/// One tracked `.lock()` acquisition and the token range its guard lives
/// for.
struct GuardSite {
    /// Receiver name (`client_threads` in `self.client_threads.lock()`).
    name: String,
    /// Token index of the `lock` ident.
    tok: usize,
    /// Last token index (inclusive) at which the guard is still held.
    end: usize,
}

/// Token-level intra-function guard-lifetime analysis:
///
/// * every `.lock()` receiver must appear in the `[locks]` order manifest
///   (when one is committed);
/// * nested acquisitions must move strictly later in that order
///   (re-acquiring the same name is self-deadlock);
/// * a held guard must not cross a blocking `.send(…)`, zero-arg
///   `.recv()`, or zero-arg `.join()` — drop first;
/// * zero-arg blocking `.recv()` is confined to the files declared as
///   `scheduler_loops`.
///
/// Guard extents are heuristic but conservative in the directions that
/// matter: a `let`-bound guard (a `.lock()` at paren depth zero of the
/// initializer) lives to the end of its enclosing block or an explicit
/// `drop(name)`; any other `.lock()` is a temporary dying at its
/// statement's end. Guards returned to a caller (`fn lock(..) -> Guard`)
/// are out of scope for an intra-function analysis — the sanitizer CI job
/// is the dynamic backstop for exactly that residue.
fn concurrency_rule(
    path: &str,
    tokens: &[Tok],
    in_test: &[bool],
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    let scheduler = cfg.scheduler_loops.iter().any(|p| p == path);
    let order: Vec<&str> = cfg.lock_order.iter().map(|e| e.name.as_str()).collect();

    // Brace structure: matching `}` per `{`, innermost enclosing `{` per
    // token.
    let mut brace_match: BTreeMap<usize, usize> = BTreeMap::new();
    let mut enclosing: Vec<Option<usize>> = vec![None; tokens.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        enclosing[i] = stack.last().copied();
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                brace_match.insert(open, i);
            }
        }
    }

    let mut guards: Vec<GuardSite> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i]
            || !t.is_ident("lock")
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let receiver = tokens
            .get(i.wrapping_sub(2))
            .filter(|r| r.kind == TokKind::Ident)
            .map(|r| r.text.clone());
        let Some(name) = receiver else {
            out.push(Violation::at(
                path,
                t,
                "concurrency",
                ".lock() on an unnamed receiver — bind the mutex to a named local \
                 or field first so the acquisition is auditable against [locks]"
                    .to_owned(),
            ));
            continue;
        };
        if !order.is_empty() && !order.contains(&name.as_str()) {
            out.push(Violation::at(
                path,
                t,
                "concurrency",
                format!(
                    "lock `{name}` is not registered in the [locks] order manifest — \
                     add it at the position matching its nesting discipline"
                ),
            ));
        }
        let binding = let_binding_of(tokens, i);
        let end = if is_let_bound(tokens, i) {
            enclosing[i]
                .and_then(|open| brace_match.get(&open).copied())
                .unwrap_or(tokens.len() - 1)
        } else {
            statement_end(tokens, i)
        };
        // An explicit drop(name) releases the guard early.
        let end = match &binding {
            Some(b) => (i..=end)
                .find(|&j| {
                    tokens[j].is_ident("drop")
                        && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
                        && tokens.get(j + 2).is_some_and(|n| n.is_ident(b))
                        && tokens.get(j + 3).is_some_and(|n| n.is_punct(')'))
                })
                .unwrap_or(end),
            None => end,
        };
        guards.push(GuardSite { name, tok: i, end });
    }

    // Nested acquisitions against the committed order.
    for (gi, g) in guards.iter().enumerate() {
        for h in guards.iter().skip(gi + 1) {
            if h.tok > g.end {
                break;
            }
            let ht = &tokens[h.tok];
            if h.name == g.name {
                out.push(Violation::at(
                    path,
                    ht,
                    "concurrency",
                    format!(
                        "lock `{}` re-acquired while already held — self-deadlock on a \
                         non-reentrant Mutex",
                        h.name
                    ),
                ));
                continue;
            }
            let (go, ho) = (
                order.iter().position(|n| *n == g.name),
                order.iter().position(|n| *n == h.name),
            );
            if let (Some(go), Some(ho)) = (go, ho) {
                if ho <= go {
                    out.push(Violation::at(
                        path,
                        ht,
                        "concurrency",
                        format!(
                            "lock `{}` acquired while holding `{}` — violates the \
                             committed [locks] order ({})",
                            h.name,
                            g.name,
                            order.join(" → ")
                        ),
                    ));
                }
            }
        }
        // Blocking operations under a held guard.
        for j in g.tok + 1..=g.end.min(tokens.len() - 1) {
            if in_test[j] {
                continue;
            }
            if let Some(op) = blocking_op(tokens, j) {
                out.push(Violation::at(
                    path,
                    &tokens[j],
                    "concurrency",
                    format!(
                        "guard `{}` held across blocking `{op}` — drop the guard \
                         (end its scope or drop(…) it) before blocking",
                        g.name
                    ),
                ));
            }
        }
    }

    // Blocking recv() confinement, independent of guards.
    for (j, t) in tokens.iter().enumerate() {
        if in_test[j] || scheduler {
            continue;
        }
        if t.is_ident("recv")
            && j > 0
            && tokens[j - 1].is_punct('.')
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(j + 2).is_some_and(|n| n.is_punct(')'))
        {
            out.push(Violation::at(
                path,
                t,
                "concurrency",
                "blocking recv() without a timeout outside a declared scheduler loop — \
                 use recv_timeout(…) so shutdown can always make progress, or declare \
                 this file in [rules.concurrency] scheduler_loops"
                    .to_owned(),
            ));
        }
    }
}

/// The blocking operation at token `j`, if any: `.send(…)` (any arity —
/// rendezvous and bounded channels block), zero-arg `.recv()`, or
/// zero-arg `.join()` (the zero-arg requirement keeps `Vec::join(sep)` /
/// `Path::join(p)` quiet). `Condvar::wait` is *not* blocking-while-held
/// in the deadlock sense: it atomically releases the guard.
fn blocking_op(tokens: &[Tok], j: usize) -> Option<&'static str> {
    let t = &tokens[j];
    if t.kind != TokKind::Ident || j == 0 || !tokens[j - 1].is_punct('.') {
        return None;
    }
    let open = tokens.get(j + 1)?.is_punct('(');
    if !open {
        return None;
    }
    let zero_arg = tokens.get(j + 2).is_some_and(|n| n.is_punct(')'));
    match t.text.as_str() {
        "send" => Some("send()"),
        "recv" if zero_arg => Some("recv()"),
        "join" if zero_arg => Some("join()"),
        _ => None,
    }
}

/// Whether the `.lock()` whose `lock` ident sits at `i` is bound by a
/// `let` — i.e. the statement starts with `let` and the call occurs at
/// paren/bracket depth zero of the initializer, so the guard outlives the
/// statement. `std::mem::take(&mut *m.lock()…)` is depth ≥ 1: a
/// temporary that dies at the statement's semicolon.
fn is_let_bound(tokens: &[Tok], i: usize) -> bool {
    let Some(s) = statement_start(tokens, i) else {
        return false;
    };
    if !tokens[s].is_ident("let") {
        return false;
    }
    let Some(eq) = assign_token(tokens, s, i) else {
        return false;
    };
    let mut depth = 0i32;
    for t in &tokens[eq + 1..i] {
        match t.kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// The `let`-bound variable name for the lock at `i`, when the pattern is
/// a plain identifier (`let g = m.lock()…` / `let mut g = …`). Tuple or
/// enum patterns return `None` — the guard is still tracked, only the
/// `drop(name)` early release cannot be matched.
fn let_binding_of(tokens: &[Tok], i: usize) -> Option<String> {
    if !is_let_bound(tokens, i) {
        return None;
    }
    let s = statement_start(tokens, i)?;
    let mut j = s + 1;
    while tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = tokens.get(j).filter(|t| t.kind == TokKind::Ident)?;
    // `let g = …` or `let g: Type = …`, but not `let (a, b) = …`.
    Some(name.text.clone())
}

/// Index of the first token of the statement containing `i`: the token
/// after the nearest preceding `;`, `{`, or `}`.
fn statement_start(tokens: &[Tok], i: usize) -> Option<usize> {
    let mut s = 0usize;
    for j in (0..i).rev() {
        if matches!(tokens[j].kind, TokKind::Punct(';' | '{' | '}')) {
            s = j + 1;
            break;
        }
    }
    (s < tokens.len()).then_some(s)
}

/// The assignment `=` of a `let` statement starting at `s`, scanning to
/// `limit`: a `=` at bracket depth zero that is not part of a compound
/// operator (`==`, `<=`, `=>`, …ruled out by byte adjacency — `Vec<u8> =`
/// has whitespace between `>` and `=`, `>=` does not).
fn assign_token(tokens: &[Tok], s: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in s..limit {
        match tokens[j].kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']' | '}') => depth -= 1,
            TokKind::Punct('=') if depth == 0 => {
                let glued_prev = j > s
                    && tokens[j - 1].byte_end == tokens[j].byte
                    && matches!(
                        tokens[j - 1].kind,
                        TokKind::Punct(
                            '=' | '<' | '>' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                        )
                    );
                let glued_next = tokens.get(j + 1).is_some_and(|n| {
                    n.byte == tokens[j].byte_end && matches!(n.kind, TokKind::Punct('=' | '>'))
                });
                if !glued_prev && !glued_next {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// End (inclusive) of the statement a temporary guard lives for: the next
/// `;` at relative depth zero, or the `}` that closes the enclosing block
/// first (a tail expression's temporaries die at the block's end).
fn statement_end(tokens: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        match t.kind {
            TokKind::Punct('(' | '[' | '{') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokKind::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Receiver names of every `.lock()` site in a token stream — feeds the
/// workspace-level stale-`[locks]`-entry check.
#[must_use]
pub fn lock_names(tokens: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("lock")
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens[i - 2].kind == TokKind::Ident
        {
            out.insert(tokens[i - 2].text.clone());
        }
    }
    out
}

/// Manifest entries whose file was never seen (or no longer holds any
/// `unsafe`) are stale; called once per run over all scanned files.
#[must_use]
pub fn stale_budget_entries(cfg: &Config, seen_files: &BTreeSet<String>) -> Vec<Violation> {
    cfg.unsafe_budget
        .iter()
        .filter(|e| !seen_files.contains(&e.file))
        .map(|e| {
            Violation::new(
                &e.file,
                1,
                1,
                "unsafe",
                "stale [[unsafe]] manifest entry: file not found in the workspace".to_owned(),
            )
        })
        .collect()
}
