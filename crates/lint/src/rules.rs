//! The five rule families, the inline suppression mechanism, and the
//! per-file driver.
//!
//! Every rule works on the token stream from [`crate::lexer`]; nothing
//! here looks at raw text, so string-embedded `unwrap()` and commented-out
//! `Instant::now()` can never fire. See the crate docs for the rule
//! catalogue and the `// lint: allow(<rule>) — <reason>` escape hatch.

use crate::config::{Config, RULE_NAMES};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule family (`panic`, `clock`, `determinism`, `unsafe`, `output`,
    /// or `allow` for suppression-discipline findings).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// What kind of compilation target a file belongs to, derived from its
/// workspace-relative path. Rules exempt whole classes: tests may panic,
/// binaries may read the wall clock, shims are vendored stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// Library code — the answer-producing paths; every rule applies.
    Library,
    /// Integration tests and in-crate `tests/` trees.
    Test,
    /// Criterion-style benches.
    Bench,
    /// Examples.
    Example,
    /// Binary entry points (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Vendored shim crates (`shims/*`) — exempt from style rules but not
    /// from the unsafe budget.
    Shim,
}

/// Classifies a workspace-relative, `/`-separated path.
#[must_use]
pub fn classify(path: &str) -> TargetClass {
    if path.starts_with("shims/") {
        TargetClass::Shim
    } else if path.starts_with("tests/") || path.contains("/tests/") {
        TargetClass::Test
    } else if path.starts_with("benches/") || path.contains("/benches/") {
        TargetClass::Bench
    } else if path.starts_with("examples/") || path.contains("/examples/") {
        TargetClass::Example
    } else if path.contains("/bin/") || path.ends_with("/main.rs") {
        TargetClass::Bin
    } else {
        TargetClass::Library
    }
}

fn under_any(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        path == p || (path.starts_with(p) && path[p.len()..].starts_with('/'))
    })
}

/// Lints one file's source. `path` is workspace-relative with `/`
/// separators; it drives target classification and rule scoping.
#[must_use]
pub fn lint_file(path: &str, source: &str, cfg: &Config) -> Vec<Violation> {
    let class = classify(path);
    let lexed = lex(source);
    let in_test = test_regions(&lexed.tokens);
    let mut allows = parse_allows(path, &lexed);
    let mut out = Vec::new();
    out.append(&mut allows.errors);

    let mut fired: Vec<(usize, Violation)> = Vec::new(); // (allow idx or USIZE::MAX, v)
    let mut raw = Vec::new();

    if rule_applies(cfg, "panic", path, class, &[TargetClass::Library]) {
        panic_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "clock", path, class, &[TargetClass::Library]) {
        clock_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "determinism", path, class, &[TargetClass::Library]) {
        determinism_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(cfg, "output", path, class, &[TargetClass::Library]) {
        output_rule(path, &lexed.tokens, &in_test, &mut raw);
    }
    if rule_applies(
        cfg,
        "unsafe",
        path,
        class,
        &[TargetClass::Library, TargetClass::Bin, TargetClass::Shim],
    ) {
        unsafe_rule(path, &lexed.tokens, cfg, &mut raw);
    }

    // Apply inline suppressions: a violation on a line covered by an
    // allow for its rule is swallowed and marks that allow used.
    for v in raw {
        match allows.covering(v.rule, v.line) {
            Some(idx) => fired.push((idx, v)),
            None => out.push(v),
        }
    }
    let used: BTreeSet<usize> = fired.iter().map(|(i, _)| *i).collect();
    for (idx, a) in allows.directives.iter().enumerate() {
        if !used.contains(&idx) {
            out.push(Violation {
                path: path.to_owned(),
                line: a.line,
                col: 1,
                rule: "allow",
                message: format!(
                    "unused suppression: `lint: allow({})` matches no violation on its target line",
                    a.rules.join(", ")
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn rule_applies(
    cfg: &Config,
    rule: &str,
    path: &str,
    class: TargetClass,
    classes: &[TargetClass],
) -> bool {
    if !classes.contains(&class) {
        return false;
    }
    let rc = cfg.rule(rule);
    if !rc.paths.is_empty() && !under_any(path, &rc.paths) {
        return false;
    }
    !under_any(path, &rc.allow)
}

// ---------------------------------------------------------------------
// Inline suppressions
// ---------------------------------------------------------------------

struct AllowDirective {
    rules: Vec<String>,
    /// The source line the directive suppresses violations on.
    target_line: u32,
    /// The line the comment itself sits on (for unused-allow reports).
    line: u32,
}

struct Allows {
    directives: Vec<AllowDirective>,
    errors: Vec<Violation>,
}

impl Allows {
    fn covering(&self, rule: &str, line: u32) -> Option<usize> {
        self.directives
            .iter()
            .position(|d| d.target_line == line && d.rules.iter().any(|r| r == rule))
    }
}

/// Parses `// lint: allow(rule[, rule]) — reason` comments. A trailing
/// comment suppresses its own line; a standalone comment suppresses the
/// next line holding code. The reason (after `—`, `--`, or `-`) is
/// mandatory: an allow without one is itself a violation, so every
/// suppression in the tree carries its justification.
fn parse_allows(path: &str, lexed: &Lexed) -> Allows {
    let mut directives = Vec::new();
    let mut errors = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut push_err = |msg: String| {
            errors.push(Violation {
                path: path.to_owned(),
                line: c.line,
                col: 1,
                rule: "allow",
                message: msg,
            });
        };
        let Some(rest) = rest.strip_prefix("allow") else {
            push_err(format!(
                "malformed lint directive {text:?} (expected `lint: allow(<rule>) — <reason>`)"
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some((inside, after)) = rest.strip_prefix('(').and_then(|s| s.split_once(')')) else {
            push_err(format!(
                "malformed lint directive {text:?} (missing rule list)"
            ));
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            push_err("suppression names no rule".to_owned());
            continue;
        }
        let mut bad = false;
        for r in &rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                push_err(format!(
                    "suppression names unknown rule {r:?} (expected one of {RULE_NAMES:?})"
                ));
                bad = true;
            }
            if r == "unsafe" {
                push_err(
                    "the unsafe budget cannot be suppressed inline — add a [[unsafe]] entry to lint.toml"
                        .to_owned(),
                );
                bad = true;
            }
        }
        if bad {
            continue;
        }
        let reason = after
            .trim_start()
            .trim_start_matches(['—', '–'])
            .trim_start_matches("--")
            .trim_start_matches('-')
            .trim_start_matches(':')
            .trim();
        if reason.is_empty() {
            push_err(format!(
                "un-reasoned suppression: `lint: allow({})` must carry `— <reason>`",
                rules.join(", ")
            ));
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            // The next line holding any code token.
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        directives.push(AllowDirective {
            rules,
            target_line,
            line: c.line,
        });
    }
    Allows { directives, errors }
}

// ---------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------

/// Marks tokens inside `#[test]` / `#[cfg(test)]`-gated items so rules
/// skip in-file unit-test modules and functions. `#[cfg(not(test))]` is
/// *not* a test gate. Returns one flag per token.
fn test_regions(tokens: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(tokens, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            if attr_gates_test(&tokens[i + 2..close]) {
                // Skip any further attributes between this one and the item.
                let mut j = close + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(tokens, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return flags,
                    }
                }
                // The gated item runs to its closing brace (fn/mod body)
                // or to a `;` (out-of-line `mod tests;`), whichever comes
                // first at nesting depth zero.
                let mut k = j;
                let mut end = None;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        end = Some(k);
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        end = matching(tokens, k, '{', '}');
                        break;
                    }
                    k += 1;
                }
                let end = end.unwrap_or(tokens.len() - 1);
                for f in flags.iter_mut().take(end + 1).skip(i) {
                    *f = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    flags
}

/// Whether an attribute's tokens (between `#[` and `]`) gate the item to
/// test builds: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`, or a
/// path ending in `::test`. `not(test)` does not gate.
fn attr_gates_test(attr: &[Tok]) -> bool {
    let Some(first) = attr.first() else {
        return false;
    };
    if first.is_ident("test") {
        return true;
    }
    if !(first.is_ident("cfg") || first.text.ends_with("test")) {
        // `#[tokio::test]`-style: idents `tokio` `::` `test`.
        let is_path_test = attr
            .windows(2)
            .any(|w| w[0].is_punct(':') && w[1].is_ident("test"));
        if !is_path_test {
            return false;
        }
    }
    let mut negated_depth: Option<usize> = None;
    let mut depth = 0usize;
    for (i, t) in attr.iter().enumerate() {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth = depth.saturating_sub(1);
                if negated_depth.is_some_and(|d| depth < d) {
                    negated_depth = None;
                }
            }
            _ => {}
        }
        if t.is_ident("not") && attr.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            negated_depth.get_or_insert(depth + 1);
        }
        if t.is_ident("test") && i > 0 && negated_depth.is_none() {
            return true;
        }
    }
    false
}

/// Index of the punct matching `open` at `start` (which must hold `open`).
fn matching(tokens: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule: panic
// ---------------------------------------------------------------------

fn panic_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let fire = |message: String| Violation {
            path: path.to_owned(),
            line: t.line,
            col: t.col,
            rule: "panic",
            message,
        };
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(fire(format!(
                    ".{}() on an answer path — return a structured error, take a \
                     let-else graceful path, or justify with `lint: allow(panic)`",
                    t.text
                )));
            }
            "panic" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(fire(format!(
                    "{}! on an answer path — serving, scheduler, and engine code must \
                     degrade gracefully, not abort",
                    t.text
                )));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Rule: clock
// ---------------------------------------------------------------------

fn clock_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(Violation {
                path: path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "clock",
                message: format!(
                    "{}::now() outside the Clock abstraction — budgets and deadlines \
                     must stay simulatable; thread a `Clock` (SystemClock in \
                     production) or justify with `lint: allow(clock)`",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------

/// Method names whose visit order on a hash collection is
/// iteration-order-sensitive.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

fn determinism_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    // Pass 1: names lexically bound to HashMap/HashSet in this file —
    // type ascriptions (`links: HashMap<…>`, incl. struct fields and
    // params) and `let` initializers (`let m = HashMap::new()`).
    let mut hash_bound: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut let_candidate: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("let") {
            let mut j = i + 1;
            while tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let_candidate = tokens
                .get(j)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        } else if t.is_punct(';') {
            let_candidate = None;
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            // Type-ascription form: `name :` then `&`/`mut` sugar, then us.
            let mut j = i;
            while j > 0
                && (tokens[j - 1].is_punct('&')
                    || tokens[j - 1].is_ident("mut")
                    || tokens[j - 1].kind == TokKind::Lifetime)
            {
                j -= 1;
            }
            if j >= 2 && tokens[j - 1].is_punct(':') && !tokens[j - 2].is_punct(':') {
                if tokens[j - 2].kind == TokKind::Ident {
                    hash_bound
                        .entry(tokens[j - 2].text.clone())
                        .or_insert((t.line, t.col));
                }
            } else if let Some(name) = let_candidate.take() {
                hash_bound.entry(name).or_insert((t.line, t.col));
            }
        }
    }
    // Pass 2: order-sensitive iteration over any tracked binding.
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("thread_rng") {
            out.push(Violation {
                path: path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "determinism",
                message: "thread_rng in answer-producing code — every RNG must be a \
                          seeded StdRng so results replay bit-identically"
                    .to_owned(),
            });
            continue;
        }
        if t.is_ident("random")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && (tokens[i - 1].is_punct('.') || tokens[i - 1].is_ident("fn")))
        {
            out.push(Violation {
                path: path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "determinism",
                message: "ambient random() in answer-producing code — draw from a \
                          seeded, session-owned RNG instead"
                    .to_owned(),
            });
            continue;
        }
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens[i - 2].kind == TokKind::Ident
            && hash_bound.contains_key(&tokens[i - 2].text)
        {
            out.push(Violation {
                path: path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "determinism",
                message: format!(
                    "`{}.{}()` iterates a hash collection — iteration order is \
                     nondeterministic; use a BTreeMap/sorted keys, or justify \
                     order-independence with `lint: allow(determinism)`",
                    tokens[i - 2].text,
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: output
// ---------------------------------------------------------------------

fn output_rule(path: &str, tokens: &[Tok], in_test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if (t.is_ident("println")
            || t.is_ident("eprintln")
            || t.is_ident("print")
            || t.is_ident("eprint"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Violation {
                path: path.to_owned(),
                line: t.line,
                col: t.col,
                rule: "output",
                message: format!(
                    "{}! in library code — diagnostics go through Metrics or a \
                     returned error, never straight to the process streams",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unsafe budget
// ---------------------------------------------------------------------

fn unsafe_rule(path: &str, tokens: &[Tok], cfg: &Config, out: &mut Vec<Violation>) {
    let sites: Vec<&Tok> = tokens.iter().filter(|t| t.is_ident("unsafe")).collect();
    let budget = cfg.unsafe_budget.iter().find(|e| e.file == path);
    let budgeted = budget.map_or(0, |e| e.count);
    if sites.len() == budgeted {
        return;
    }
    let (line, col) = sites.first().map_or((1, 1), |t| (t.line, t.col));
    let message = match budget {
        None => format!(
            "{} unbudgeted `unsafe` token(s) — every unsafe needs a reviewed \
             [[unsafe]] entry (file, count, justification) in lint.toml",
            sites.len()
        ),
        Some(e) => format!(
            "unsafe budget mismatch: found {} token(s) but lint.toml budgets {} — \
             update the manifest entry deliberately, with its justification",
            sites.len(),
            e.count
        ),
    };
    out.push(Violation {
        path: path.to_owned(),
        line,
        col,
        rule: "unsafe",
        message,
    });
}

/// Manifest entries whose file was never seen (or no longer holds any
/// `unsafe`) are stale; called once per run over all scanned files.
#[must_use]
pub fn stale_budget_entries(cfg: &Config, seen_files: &BTreeSet<String>) -> Vec<Violation> {
    cfg.unsafe_budget
        .iter()
        .filter(|e| !seen_files.contains(&e.file))
        .map(|e| Violation {
            path: e.file.clone(),
            line: 1,
            col: 1,
            rule: "unsafe",
            message: "stale [[unsafe]] manifest entry: file not found in the workspace".to_owned(),
        })
        .collect()
}
