//! The workspace model: which crates exist, how they may depend on each
//! other, and which crate each source file belongs to.
//!
//! Built once per `--workspace` run from the first-party `Cargo.toml`s
//! (a minimal manifest reader — package name plus `[dependencies]` /
//! `[dev-dependencies]` keys with their line numbers; everything else is
//! skipped). Shim crates under `shims/` are vendored stand-ins and are
//! excluded: they participate in no layering contract.
//!
//! The model powers the `layering` rule family both at the manifest
//! level (every declared first-party dependency edge must be admitted by
//! the `[rules.layering]` DAG in `lint.toml`) and at the source level
//! (a `use rapidviz_serve::…` token inside `crates/stats` is a layering
//! violation even before the manifest changes), plus module-cycle
//! detection within each crate.

use crate::graph::Adjacency;
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;
use std::path::Path;

/// One first-party dependency edge as written in a manifest.
#[derive(Debug, Clone)]
pub struct DepRef {
    /// Package name of the dependency (`rapidviz-stats`).
    pub name: String,
    /// 1-based line in the manifest where the edge is declared.
    pub line: u32,
    /// Whether the edge sits in `[dev-dependencies]` — dev edges are
    /// exempt from layering (cargo itself permits dev-only cycles, and
    /// the workspace uses one: the facade's tests drive `sim`/`serve`).
    pub dev: bool,
}

/// One first-party crate.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name (`rapidviz-serve`).
    pub name: String,
    /// The name as it appears in Rust source paths (`rapidviz_serve`).
    pub ident: String,
    /// Workspace-relative directory ("" for the root crate).
    pub dir: String,
    /// Workspace-relative manifest path.
    pub manifest: String,
    /// First-party dependency edges (shims and external deps dropped).
    pub deps: Vec<DepRef>,
}

/// The parsed workspace: every first-party crate plus lookup maps.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// All first-party crates, sorted by package name.
    pub crates: Vec<CrateInfo>,
    /// Source ident (`rapidviz_serve`) → package name (`rapidviz-serve`).
    pub idents: BTreeMap<String, String>,
}

impl WorkspaceModel {
    /// Builds the model by reading the root manifest and every
    /// `crates/*/Cargo.toml` under `root`.
    ///
    /// # Errors
    ///
    /// Propagates manifest read errors; a directory without a readable
    /// `Cargo.toml` under `crates/` is an error (the workspace owns that
    /// namespace), missing root `[package]` is not (virtual workspace).
    pub fn build(root: &Path) -> Result<Self, String> {
        let mut manifests: Vec<(String, String)> = Vec::new(); // (dir, text)
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let text = std::fs::read_to_string(&root_manifest)
                .map_err(|e| format!("{}: {e}", root_manifest.display()))?;
            manifests.push((String::new(), text));
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut dirs: Vec<String> = Vec::new();
            let entries = std::fs::read_dir(&crates_dir).map_err(|e| format!("crates/: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("crates/: {e}"))?;
                if entry.path().is_dir() {
                    dirs.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
            dirs.sort();
            for d in dirs {
                let manifest = crates_dir.join(&d).join("Cargo.toml");
                let text = std::fs::read_to_string(&manifest)
                    .map_err(|e| format!("{}: {e}", manifest.display()))?;
                manifests.push((format!("crates/{d}"), text));
            }
        }

        let mut crates = Vec::new();
        for (dir, text) in &manifests {
            if let Some(info) = parse_manifest(dir, text) {
                crates.push(info);
            }
        }
        // Drop dependency edges that point outside the first-party set
        // (rand/proptest/criterion shims, hypothetical registry deps).
        let names: Vec<String> = crates.iter().map(|c| c.name.clone()).collect();
        for c in &mut crates {
            c.deps.retain(|d| names.contains(&d.name));
        }
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        let idents = crates
            .iter()
            .map(|c| (c.ident.clone(), c.name.clone()))
            .collect();
        Ok(Self { crates, idents })
    }

    /// The crate owning a workspace-relative `/`-separated source path:
    /// `crates/<dir>/…` → that crate, `shims/…` → none, anything else
    /// (`src/`, `tests/`, `benches/`, `examples/`) → the root crate.
    #[must_use]
    pub fn crate_of(&self, path: &str) -> Option<&CrateInfo> {
        if path.starts_with("shims/") {
            return None;
        }
        let best = self.crates.iter().filter(|c| !c.dir.is_empty()).find(|c| {
            path.strip_prefix(c.dir.as_str())
                .is_some_and(|r| r.starts_with('/'))
        });
        best.or_else(|| self.crates.iter().find(|c| c.dir.is_empty()))
    }

    /// Look up a crate by package name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Parses one manifest. Returns `None` when the file declares no
/// `[package]` (a virtual workspace root).
fn parse_manifest(dir: &str, text: &str) -> Option<CrateInfo> {
    #[derive(PartialEq)]
    enum Sect {
        Other,
        Package,
        Deps,
        DevDeps,
    }
    let mut sect = Sect::Other;
    let mut name: Option<String> = None;
    let mut deps = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            sect = match line {
                "[package]" => Sect::Package,
                "[dependencies]" => Sect::Deps,
                "[dev-dependencies]" => Sect::DevDeps,
                _ => Sect::Other,
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match sect {
            Sect::Package if key == "name" => {
                name = Some(value.trim().trim_matches('"').to_owned());
            }
            Sect::Deps | Sect::DevDeps => {
                // `rapidviz-stats.workspace = true` or `rapidviz = { … }`.
                let dep = key.split('.').next().unwrap_or(key).trim();
                if !dep.is_empty() {
                    deps.push(DepRef {
                        name: dep.to_owned(),
                        line: lineno,
                        dev: sect == Sect::DevDeps,
                    });
                }
            }
            _ => {}
        }
    }
    let name = name?;
    let manifest = if dir.is_empty() {
        "Cargo.toml".to_owned()
    } else {
        format!("{dir}/Cargo.toml")
    };
    Some(CrateInfo {
        ident: name.replace('-', "_"),
        name,
        dir: dir.to_owned(),
        manifest,
        deps,
    })
}

/// The top-level module a source file contributes to within its crate:
/// `src/lib.rs` / `src/main.rs` → `None` (the crate root), `src/foo.rs`
/// and everything under `src/foo/` → `Some("foo")`. Files outside `src/`
/// (tests, benches, examples, bins) → `None` — they are separate
/// compilation targets, not modules of the library.
#[must_use]
pub fn top_module(crate_dir: &str, path: &str) -> Option<String> {
    let rel = if crate_dir.is_empty() {
        path
    } else {
        path.strip_prefix(crate_dir)?.strip_prefix('/')?
    };
    let rel = rel.strip_prefix("src/")?;
    if rel.contains("bin/") {
        return None;
    }
    match rel.split_once('/') {
        Some((first, _)) => Some(first.to_owned()),
        None => {
            let stem = rel.strip_suffix(".rs")?;
            if stem == "lib" || stem == "main" {
                None
            } else {
                Some(stem.to_owned())
            }
        }
    }
}

/// A reference from source tokens to another first-party crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateUse {
    /// Package name of the referenced crate.
    pub name: String,
    /// 1-based line of the reference.
    pub line: u32,
    /// 1-based column of the reference.
    pub col: u32,
}

/// Extracts references to other first-party crates from a token stream:
/// `rapidviz_serve::…` path roots and `extern crate rapidviz_serve`.
/// Tokens flagged in `in_test` are skipped (a `#[cfg(test)]` module may
/// use dev-dependencies, which layering exempts).
#[must_use]
pub fn crate_uses(
    tokens: &[Tok],
    in_test: &[bool],
    idents: &BTreeMap<String, String>,
) -> Vec<CrateUse> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let Some(name) = idents.get(&t.text) else {
            continue;
        };
        let path_root = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            // `foo::rapidviz_serve` would be a member access, not a root.
            && !(i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':'));
        let extern_crate =
            i >= 2 && tokens[i - 1].is_ident("crate") && tokens[i - 2].is_ident("extern");
        if path_root || extern_crate {
            out.push(CrateUse {
                name: name.clone(),
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

/// Extracts the top-level modules referenced via `crate::<mod>` paths,
/// skipping test-flagged tokens. Only idents that name actual top-level
/// modules matter to the caller; dangling names are filtered there.
#[must_use]
pub fn module_refs(tokens: &[Tok], in_test: &[bool]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] || !t.is_ident("crate") {
            continue;
        }
        // `crate :: ident`, but not `extern crate` or `…::crate` (which
        // cannot occur — `crate` is only a path root or a visibility).
        if i >= 1 && tokens[i - 1].is_ident("extern") {
            continue;
        }
        if tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            if let Some(target) = tokens.get(i + 3).filter(|n| n.kind == TokKind::Ident) {
                out.push(target.text.clone());
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the per-crate module graph (top-level module → referenced
/// top-level modules) from per-file module references. The crate root
/// (lib.rs) is excluded as a node: the root declaring its modules and
/// modules reaching root items (`crate::Error`) is the normal shape, not
/// a cycle.
#[must_use]
pub fn module_graph(file_refs: &[(Option<String>, Vec<String>)]) -> Adjacency {
    let mut graph: Adjacency = BTreeMap::new();
    for (module, _) in file_refs {
        if let Some(m) = module {
            graph.entry(m.clone()).or_default();
        }
    }
    let known: Vec<String> = graph.keys().cloned().collect();
    for (module, refs) in file_refs {
        let Some(m) = module else {
            continue;
        };
        for r in refs {
            if r != m && known.contains(r) {
                let edges = graph.entry(m.clone()).or_default();
                if !edges.contains(r) {
                    edges.push(r.clone());
                }
            }
        }
    }
    for edges in graph.values_mut() {
        edges.sort_unstable();
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn top_module_mapping() {
        assert_eq!(top_module("", "src/lib.rs"), None);
        assert_eq!(top_module("", "src/main.rs"), None);
        assert_eq!(top_module("", "src/query.rs"), Some("query".to_owned()));
        assert_eq!(
            top_module("crates/core", "crates/core/src/sampler/mod.rs"),
            Some("sampler".to_owned())
        );
        assert_eq!(
            top_module("crates/core", "crates/core/src/sampler/draws.rs"),
            Some("sampler".to_owned())
        );
        assert_eq!(
            top_module("crates/serve", "crates/serve/src/bin/rapidviz-serve.rs"),
            None
        );
        assert_eq!(top_module("crates/core", "crates/core/tests/pool.rs"), None);
        assert_eq!(top_module("crates/core", "crates/stats/src/lib.rs"), None);
    }

    #[test]
    fn crate_uses_finds_path_roots_not_doc_or_member_refs() {
        let idents: BTreeMap<String, String> =
            [("rapidviz_serve".to_owned(), "rapidviz-serve".to_owned())].into();
        let src = "use rapidviz_serve::Server;\nlet x = other::rapidviz_serve::y;\n/// doc about rapidviz_serve::Server\nfn f() {}";
        let lexed = lex(src);
        let flags = vec![false; lexed.tokens.len()];
        let uses = crate_uses(&lexed.tokens, &flags, &idents);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].line, 1);
    }

    #[test]
    fn module_refs_sees_crate_paths_and_skips_extern() {
        let src =
            "use crate::query::QueryAnswer;\nextern crate foo;\nfn f() -> crate::session::Id { }";
        let lexed = lex(src);
        let flags = vec![false; lexed.tokens.len()];
        assert_eq!(module_refs(&lexed.tokens, &flags), ["query", "session"]);
    }

    #[test]
    fn module_graph_excludes_root_and_dangling() {
        let refs = vec![
            (None, vec!["query".to_owned()]), // lib.rs
            (
                Some("query".to_owned()),
                vec!["session".to_owned(), "Error".to_owned()],
            ),
            (Some("session".to_owned()), vec![]),
        ];
        let g = module_graph(&refs);
        assert_eq!(g["query"], ["session"]);
        assert!(g["session"].is_empty());
        assert!(!g.contains_key("Error"));
    }

    #[test]
    fn manifest_parser_reads_names_and_dep_lines() {
        let info = parse_manifest(
            "crates/demo",
            "[package]\nname = \"rapidviz-demo\"\n\n[dependencies]\nrand.workspace = true\nrapidviz-stats.workspace = true\nrapidviz = { path = \"../..\" }\n\n[dev-dependencies]\nproptest.workspace = true\n",
        )
        .expect("package");
        assert_eq!(info.name, "rapidviz-demo");
        assert_eq!(info.ident, "rapidviz_demo");
        assert_eq!(info.manifest, "crates/demo/Cargo.toml");
        let names: Vec<(&str, bool)> = info.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            [
                ("rand", false),
                ("rapidviz-stats", false),
                ("rapidviz", false),
                ("proptest", true)
            ]
        );
        assert!(parse_manifest("", "[workspace]\nmembers = []\n").is_none());
    }
}
