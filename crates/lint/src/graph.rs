//! Small deterministic graph utilities for the workspace model.
//!
//! Both layering passes reduce to the same question — does this directed
//! graph contain a cycle, and if so, which one? Adjacency is kept in
//! `BTreeMap`/sorted form throughout so reports are byte-identical run to
//! run (determinism is itself one of the linted invariants; the linter
//! holds itself to it).

use std::collections::BTreeMap;

/// A directed graph over string node names.
pub type Adjacency = BTreeMap<String, Vec<String>>;

/// Finds one cycle in `graph` and returns it as a node path
/// `[a, b, …, a]` (first node repeated at the end), or `None` if the
/// graph is acyclic. Edges to nodes absent from the map are ignored —
/// callers decide separately whether dangling references are errors.
///
/// Deterministic: nodes and edges are visited in sorted order, so the
/// same graph always reports the same cycle.
#[must_use]
pub fn find_cycle(graph: &Adjacency) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        OnPath,
        Done,
    }
    let mut state: BTreeMap<&str, State> = graph
        .keys()
        .map(|k| (k.as_str(), State::Unvisited))
        .collect();

    for start in graph.keys() {
        if state[start.as_str()] != State::Unvisited {
            continue;
        }
        // Iterative DFS: (node, next edge index) frames plus the explicit
        // path for cycle extraction.
        let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
        let mut path: Vec<&str> = vec![start.as_str()];
        state.insert(start.as_str(), State::OnPath);
        while let Some((node, next)) = stack.pop() {
            let edges = &graph[node];
            if next < edges.len() {
                stack.push((node, next + 1));
                let dep = edges[next].as_str();
                match state.get(dep).copied() {
                    Some(State::OnPath) => {
                        // Cycle: slice the path from the first occurrence
                        // of `dep` and close the loop.
                        let from = path.iter().position(|n| *n == dep).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            path[from..].iter().map(|s| (*s).to_owned()).collect();
                        cycle.push(dep.to_owned());
                        return Some(cycle);
                    }
                    Some(State::Unvisited) => {
                        state.insert(dep, State::OnPath);
                        stack.push((dep, 0));
                        path.push(dep);
                    }
                    Some(State::Done) | None => {}
                }
            } else {
                state.insert(node, State::Done);
                path.pop();
            }
        }
    }
    None
}

/// Strongly connected components with more than one node (i.e. the
/// mutually-recursive clusters), each sorted internally, components
/// sorted by first element. Tarjan's algorithm, iterative.
///
/// Single-node self-loops are also reported (a module importing itself
/// is still a cycle).
#[must_use]
pub fn cyclic_sccs(graph: &Adjacency) -> Vec<Vec<String>> {
    struct Tarjan<'g> {
        graph: &'g Adjacency,
        index: BTreeMap<&'g str, usize>,
        lowlink: BTreeMap<&'g str, usize>,
        on_stack: BTreeMap<&'g str, bool>,
        stack: Vec<&'g str>,
        next_index: usize,
        out: Vec<Vec<String>>,
    }

    impl<'g> Tarjan<'g> {
        fn visit(&mut self, root: &'g str) {
            // Frame: (node, next edge index).
            let mut frames: Vec<(&'g str, usize)> = vec![(root, 0)];
            self.index.insert(root, self.next_index);
            self.lowlink.insert(root, self.next_index);
            self.next_index += 1;
            self.stack.push(root);
            self.on_stack.insert(root, true);

            while let Some((node, next)) = frames.pop() {
                let edges = &self.graph[node];
                if next < edges.len() {
                    frames.push((node, next + 1));
                    let dep = edges[next].as_str();
                    let Some(dep_key) = self.graph.get_key_value(dep).map(|(k, _)| k.as_str())
                    else {
                        continue; // dangling edge: not part of the graph
                    };
                    if let Some(&di) = self.index.get(dep_key) {
                        if self.on_stack.get(dep_key).copied().unwrap_or(false) {
                            let low = (*self.lowlink.get(node).unwrap_or(&0)).min(di);
                            self.lowlink.insert(node, low);
                        }
                    } else {
                        self.index.insert(dep_key, self.next_index);
                        self.lowlink.insert(dep_key, self.next_index);
                        self.next_index += 1;
                        self.stack.push(dep_key);
                        self.on_stack.insert(dep_key, true);
                        frames.push((dep_key, 0));
                    }
                } else {
                    // Node finished: fold lowlink into the parent frame,
                    // and pop an SCC if this is its root.
                    if let Some(&(parent, _)) = frames.last() {
                        let low = (*self.lowlink.get(parent).unwrap_or(&0)).min(self.lowlink[node]);
                        self.lowlink.insert(parent, low);
                    }
                    if self.lowlink[node] == self.index[node] {
                        let mut comp = Vec::new();
                        while let Some(top) = self.stack.pop() {
                            self.on_stack.insert(top, false);
                            comp.push(top.to_owned());
                            if top == node {
                                break;
                            }
                        }
                        let self_loop =
                            comp.len() == 1 && self.graph[node].iter().any(|d| d == node);
                        if comp.len() > 1 || self_loop {
                            comp.sort_unstable();
                            self.out.push(comp);
                        }
                    }
                }
            }
        }
    }

    let mut t = Tarjan {
        graph,
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeMap::new(),
        stack: Vec::new(),
        next_index: 0,
        out: Vec::new(),
    };
    for node in graph.keys() {
        if !t.index.contains_key(node.as_str()) {
            t.visit(node);
        }
    }
    t.out.sort_unstable();
    t.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(&str, &[&str])]) -> Adjacency {
        edges
            .iter()
            .map(|(n, deps)| {
                (
                    (*n).to_owned(),
                    deps.iter().map(|d| (*d).to_owned()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let g = graph(&[("a", &["b", "c"]), ("b", &["c"]), ("c", &[])]);
        assert!(find_cycle(&g).is_none());
        assert!(cyclic_sccs(&g).is_empty());
    }

    #[test]
    fn two_node_cycle_is_found_and_closed() {
        let g = graph(&[("a", &["b"]), ("b", &["a"])]);
        let cycle = find_cycle(&g).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        assert_eq!(cyclic_sccs(&g), vec![vec!["a".to_owned(), "b".to_owned()]]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(&[("a", &["a"])]);
        assert!(find_cycle(&g).is_some());
        assert_eq!(cyclic_sccs(&g), vec![vec!["a".to_owned()]]);
    }

    #[test]
    fn dangling_edges_are_ignored() {
        let g = graph(&[("a", &["ghost"])]);
        assert!(find_cycle(&g).is_none());
        assert!(cyclic_sccs(&g).is_empty());
    }

    #[test]
    fn diamond_is_not_a_cycle_but_back_edge_is() {
        let diamond = graph(&[("a", &["b", "c"]), ("b", &["d"]), ("c", &["d"]), ("d", &[])]);
        assert!(find_cycle(&diamond).is_none());
        let back = graph(&[("a", &["b"]), ("b", &["c"]), ("c", &["a"]), ("d", &["a"])]);
        let cycle = find_cycle(&back).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        let sccs = cyclic_sccs(&back);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], ["a", "b", "c"]);
    }

    #[test]
    fn deterministic_output_across_runs() {
        let g = graph(&[
            ("m1", &["m2", "m3"]),
            ("m2", &["m1"]),
            ("m3", &["m4"]),
            ("m4", &["m3"]),
        ]);
        let a = cyclic_sccs(&g);
        let b = cyclic_sccs(&g);
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                vec!["m1".to_owned(), "m2".to_owned()],
                vec!["m3".to_owned(), "m4".to_owned()]
            ]
        );
    }
}
