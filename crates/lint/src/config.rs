//! `lint.toml` — the committed, auditable policy for every rule.
//!
//! The file lives at the workspace root and is parsed with a small strict
//! TOML subset reader (tables, arrays of tables, string / integer /
//! string-array values, `#` comments). Strictness is the point: an
//! unknown table or key is a hard error, so a typo can never silently
//! widen an allowlist.
//!
//! # Grammar
//!
//! ```toml
//! # Per-rule scoping. `paths` are enforcement roots (the rule applies
//! # only under them; omitted or empty = everywhere), `allow` are path
//! # prefixes exempted wholesale — each allow entry is a standing,
//! # reviewed suppression, so keep them few and commented.
//! [rules.panic]
//! paths = ["crates/serve/src", "src"]
//! allow = []
//!
//! [rules.clock]
//! allow = ["crates/core/src/clock.rs"]
//!
//! # The crate-layering DAG: each entry is "crate: dep dep ...", naming
//! # the complete set of first-party crates it may depend on. A crate or
//! # source-level reference outside this set is a layering violation.
//! # The declared graph must itself be acyclic (validated at parse time).
//! [rules.layering]
//! crates = ["stats:", "core: stats", "serve: rapidviz stats"]
//!
//! # Concurrency discipline: `scheduler_loops` are the only files allowed
//! # to call a blocking, timeout-less `recv()`.
//! [rules.concurrency]
//! scheduler_loops = ["crates/serve/src/server.rs"]
//!
//! # The committed lock-acquisition order. Every `.lock()` receiver name
//! # in scoped code must appear here, and nested acquisitions must happen
//! # in list order. Entries no lock uses are stale (a violation).
//! [locks]
//! order = ["client_threads", "receiver"]
//!
//! # The unsafe budget: every file holding `unsafe` tokens must have an
//! # entry whose count matches exactly and whose justification is
//! # non-empty. A new `unsafe` anywhere fails the lint until a reviewer
//! # budgets it here.
//! [[unsafe]]
//! file = "crates/core/src/pool.rs"
//! count = 1
//! justification = "scoped-task lifetime erasure; see the SAFETY comment"
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Names of the seven enforced rule families.
pub const RULE_NAMES: [&str; 7] = [
    "panic",
    "clock",
    "determinism",
    "unsafe",
    "output",
    "layering",
    "concurrency",
];

/// Per-rule path scoping.
#[derive(Debug, Default, Clone)]
pub struct RuleCfg {
    /// Enforcement roots (path prefixes, `/`-separated, relative to the
    /// workspace root). Empty means the rule applies everywhere its
    /// target-class policy admits.
    pub paths: Vec<String>,
    /// Exempted path prefixes — reviewed, standing suppressions.
    pub allow: Vec<String>,
}

/// One committed `unsafe` budget entry.
#[derive(Debug, Clone)]
pub struct UnsafeEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Exact number of `unsafe` tokens the file is budgeted for.
    pub count: usize,
    /// Why the unsafe is held (non-empty, enforced at parse time).
    pub justification: String,
}

/// One lock name in the committed global acquisition order.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// Receiver name of the `Mutex` field or binding (`client_threads` in
    /// `self.client_threads.lock()`).
    pub name: String,
    /// `lint.toml` line of the `order` key (for stale-entry reports).
    pub line: u32,
}

/// The parsed policy.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleCfg>,
    /// The unsafe budget manifest.
    pub unsafe_budget: Vec<UnsafeEntry>,
    /// Declared crate-dependency DAG: crate name → first-party crates it
    /// may depend on. Empty map disables the cargo-layer check.
    pub layering: BTreeMap<String, Vec<String>>,
    /// Files whose code may call a blocking, timeout-less `recv()`.
    pub scheduler_loops: Vec<String>,
    /// The committed lock-acquisition order, outermost first.
    pub lock_order: Vec<LockEntry>,
}

impl Config {
    /// Scoping for `rule`, defaulting to "applies everywhere, no allows".
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleCfg {
        self.rules.get(rule).cloned().unwrap_or_default()
    }
}

/// A parse or validation error with its `lint.toml` line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for whole-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the policy from `lint.toml` text.
///
/// # Errors
///
/// Fails on unknown tables/keys, malformed values, an unknown rule name,
/// an empty unsafe justification, or a duplicate unsafe file entry.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if inner.trim() != "unsafe" {
                return Err(err(lineno, format!("unknown array-of-tables [[{inner}]]")));
            }
            flush_unsafe(&mut cfg, &mut section, lineno)?;
            section = Section::Unsafe {
                file: None,
                count: None,
                justification: None,
                line: lineno,
            };
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush_unsafe(&mut cfg, &mut section, lineno)?;
            if inner.trim() == "locks" {
                section = Section::Locks;
                continue;
            }
            let Some(rule) = inner.trim().strip_prefix("rules.") else {
                return Err(err(lineno, format!("unknown table [{inner}]")));
            };
            if !RULE_NAMES.contains(&rule) {
                return Err(err(
                    lineno,
                    format!("unknown rule {rule:?} (expected one of {RULE_NAMES:?})"),
                ));
            }
            section = Section::Rule(rule.to_owned());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim();
        let mut value = value.trim().to_owned();
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, next) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(next).trim());
                if value.trim_end().ends_with(']') {
                    break;
                }
            }
        }
        apply_key(&mut cfg, &mut section, key, value.trim(), lineno)?;
    }
    flush_unsafe(&mut cfg, &mut section, 0)?;
    validate_layering(&cfg)?;
    validate_locks(&cfg)?;
    Ok(cfg)
}

enum Section {
    None,
    Rule(String),
    Locks,
    Unsafe {
        file: Option<String>,
        count: Option<usize>,
        justification: Option<String>,
        line: u32,
    },
}

/// The declared layering graph must reference only declared crates and be
/// acyclic — a cyclic "DAG" would make the layer check vacuous.
fn validate_layering(cfg: &Config) -> Result<(), ConfigError> {
    for (krate, deps) in &cfg.layering {
        for dep in deps {
            if dep == krate {
                return Err(err(
                    0,
                    format!("[rules.layering] crate {krate:?} depends on itself"),
                ));
            }
            if !cfg.layering.contains_key(dep) {
                return Err(err(
                    0,
                    format!("[rules.layering] crate {krate:?} names undeclared dep {dep:?}"),
                ));
            }
        }
    }
    // DFS cycle check over the declared edges.
    for start in cfg.layering.keys() {
        let mut stack = vec![(start.as_str(), 0usize)];
        let mut on_path = vec![start.as_str()];
        while let Some((node, next)) = stack.pop() {
            let deps = &cfg.layering[node];
            if next < deps.len() {
                stack.push((node, next + 1));
                let dep = deps[next].as_str();
                if on_path.contains(&dep) {
                    return Err(err(
                        0,
                        format!("[rules.layering] declared graph has a cycle through {dep:?}"),
                    ));
                }
                stack.push((dep, 0));
                on_path.push(dep);
            } else {
                on_path.pop();
            }
        }
    }
    Ok(())
}

fn validate_locks(cfg: &Config) -> Result<(), ConfigError> {
    for (i, entry) in cfg.lock_order.iter().enumerate() {
        if entry.name.is_empty() {
            return Err(err(entry.line, "[locks] order entry is empty"));
        }
        if cfg.lock_order[..i].iter().any(|e| e.name == entry.name) {
            return Err(err(
                entry.line,
                format!("duplicate [locks] order entry {:?}", entry.name),
            ));
        }
    }
    Ok(())
}

fn apply_key(
    cfg: &mut Config,
    section: &mut Section,
    key: &str,
    value: &str,
    lineno: u32,
) -> Result<(), ConfigError> {
    match section {
        Section::None => Err(err(lineno, format!("key {key:?} outside any table"))),
        Section::Rule(rule) => {
            let entry = cfg.rules.entry(rule.clone()).or_default();
            match key {
                "paths" => {
                    entry.paths = parse_string_array(value, lineno)?;
                    Ok(())
                }
                "allow" => {
                    entry.allow = parse_string_array(value, lineno)?;
                    Ok(())
                }
                "crates" if rule == "layering" => {
                    for item in parse_string_array(value, lineno)? {
                        let Some((name, deps)) = item.split_once(':') else {
                            return Err(err(
                                lineno,
                                format!("layering entry {item:?} is not \"crate: dep dep ...\""),
                            ));
                        };
                        let name = name.trim().to_owned();
                        let deps: Vec<String> =
                            deps.split_whitespace().map(str::to_owned).collect();
                        if name.is_empty() {
                            return Err(err(lineno, "layering entry has an empty crate name"));
                        }
                        if cfg.layering.insert(name.clone(), deps).is_some() {
                            return Err(err(
                                lineno,
                                format!("duplicate layering entry for crate {name:?}"),
                            ));
                        }
                    }
                    Ok(())
                }
                "scheduler_loops" if rule == "concurrency" => {
                    cfg.scheduler_loops = parse_string_array(value, lineno)?;
                    Ok(())
                }
                other => Err(err(
                    lineno,
                    format!("unknown key {other:?} in [rules.{rule}]"),
                )),
            }
        }
        Section::Locks => match key {
            "order" => {
                cfg.lock_order = parse_string_array(value, lineno)?
                    .into_iter()
                    .map(|name| LockEntry { name, line: lineno })
                    .collect();
                Ok(())
            }
            other => Err(err(
                lineno,
                format!("unknown key {other:?} in [locks] (expected order)"),
            )),
        },
        Section::Unsafe {
            file,
            count,
            justification,
            ..
        } => match key {
            "file" => {
                *file = Some(parse_string(value, lineno)?);
                Ok(())
            }
            "count" => {
                *count = Some(value.parse::<usize>().map_err(|_| {
                    err(lineno, format!("count must be an integer, got {value:?}"))
                })?);
                Ok(())
            }
            "justification" => {
                *justification = Some(parse_string(value, lineno)?);
                Ok(())
            }
            other => Err(err(
                lineno,
                format!("unknown key {other:?} in [[unsafe]] (expected file/count/justification)"),
            )),
        },
    }
}

fn flush_unsafe(cfg: &mut Config, section: &mut Section, lineno: u32) -> Result<(), ConfigError> {
    if let Section::Unsafe {
        file,
        count,
        justification,
        line,
    } = std::mem::replace(section, Section::None)
    {
        let entry_line = if lineno == 0 { line } else { line.min(lineno) };
        let file = file.ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `file`"))?;
        let count = count.ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `count`"))?;
        let justification = justification
            .ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `justification`"))?;
        if justification.trim().is_empty() {
            return Err(err(
                entry_line,
                format!("[[unsafe]] entry for {file:?} has an empty justification"),
            ));
        }
        if cfg.unsafe_budget.iter().any(|e| e.file == file) {
            return Err(err(
                entry_line,
                format!("duplicate [[unsafe]] entry for {file:?}"),
            ));
        }
        cfg.unsafe_budget.push(UnsafeEntry {
            file,
            count,
            justification,
        });
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got {value:?}")))?;
    // Minimal escape handling; paths and prose need none of the exotic ones.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected an array, got {value:?}")))?;
    let mut out = Vec::new();
    for item in split_top_level(inner) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_policy() {
        let cfg = parse(
            r#"
# comment
[rules.panic]
paths = ["crates/serve/src", "src"] # trailing comment
allow = []

[rules.clock]
allow = [
    "crates/core/src/clock.rs",
    "crates/bench/src",
]

[[unsafe]]
file = "crates/core/src/pool.rs"
count = 1
justification = "scoped-task lifetime erasure"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.rule("panic").paths, ["crates/serve/src", "src"]);
        assert_eq!(
            cfg.rule("clock").allow,
            ["crates/core/src/clock.rs", "crates/bench/src"]
        );
        assert_eq!(cfg.unsafe_budget.len(), 1);
        assert_eq!(cfg.unsafe_budget[0].count, 1);
    }

    #[test]
    fn empty_justification_is_rejected() {
        let e = parse("[[unsafe]]\nfile = \"a.rs\"\ncount = 1\njustification = \"  \"\n")
            .expect_err("must reject");
        assert!(e.message.contains("empty justification"), "{e}");
    }

    #[test]
    fn missing_manifest_fields_are_rejected() {
        assert!(parse("[[unsafe]]\nfile = \"a.rs\"\ncount = 1\n").is_err());
        assert!(parse("[[unsafe]]\nfile = \"a.rs\"\njustification = \"j\"\n").is_err());
    }

    #[test]
    fn unknown_rule_and_keys_are_rejected() {
        assert!(parse("[rules.nonsense]\npaths = []\n").is_err());
        assert!(parse("[rules.panic]\npath = []\n").is_err());
        assert!(parse("[other]\nx = 1\n").is_err());
    }

    #[test]
    fn duplicate_unsafe_files_are_rejected() {
        let text = "[[unsafe]]\nfile = \"a.rs\"\ncount = 1\njustification = \"j\"\n\
                    [[unsafe]]\nfile = \"a.rs\"\ncount = 2\njustification = \"k\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[rules.panic]\nallow = [\"weird#path.rs\"]\n").expect("parses");
        assert_eq!(cfg.rule("panic").allow, ["weird#path.rs"]);
    }

    #[test]
    fn parses_layering_locks_and_scheduler_loops() {
        let cfg = parse(
            r#"
[rules.layering]
crates = [
    "stats:",
    "core: stats",
    "serve: core stats",
]

[rules.concurrency]
paths = ["crates/serve/src"]
scheduler_loops = ["crates/serve/src/server.rs"]

[locks]
order = ["client_threads", "receiver"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.layering["core"], ["stats"]);
        assert!(cfg.layering["stats"].is_empty());
        assert_eq!(cfg.scheduler_loops, ["crates/serve/src/server.rs"]);
        let names: Vec<&str> = cfg.lock_order.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["client_threads", "receiver"]);
    }

    #[test]
    fn layering_graph_must_be_declared_and_acyclic() {
        // Undeclared dep.
        assert!(parse("[rules.layering]\ncrates = [\"core: ghost\"]\n").is_err());
        // Self-dep.
        assert!(parse("[rules.layering]\ncrates = [\"core: core\"]\n").is_err());
        // Two-crate cycle.
        let e = parse("[rules.layering]\ncrates = [\"a: b\", \"b: a\"]\n").expect_err("cycle");
        assert!(e.message.contains("cycle"), "{e}");
        // Entry without the colon separator.
        assert!(parse("[rules.layering]\ncrates = [\"stats\"]\n").is_err());
        // Duplicate crate.
        assert!(parse("[rules.layering]\ncrates = [\"a:\", \"a:\"]\n").is_err());
    }

    #[test]
    fn lock_order_rejects_duplicates_and_unknown_keys() {
        assert!(parse("[locks]\norder = [\"m\", \"m\"]\n").is_err());
        assert!(parse("[locks]\nordering = [\"m\"]\n").is_err());
        // `crates`/`scheduler_loops` are rule-specific keys.
        assert!(parse("[rules.panic]\ncrates = [\"a:\"]\n").is_err());
        assert!(parse("[rules.panic]\nscheduler_loops = []\n").is_err());
    }
}
