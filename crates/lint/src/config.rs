//! `lint.toml` — the committed, auditable policy for every rule.
//!
//! The file lives at the workspace root and is parsed with a small strict
//! TOML subset reader (tables, arrays of tables, string / integer /
//! string-array values, `#` comments). Strictness is the point: an
//! unknown table or key is a hard error, so a typo can never silently
//! widen an allowlist.
//!
//! # Grammar
//!
//! ```toml
//! # Per-rule scoping. `paths` are enforcement roots (the rule applies
//! # only under them; omitted or empty = everywhere), `allow` are path
//! # prefixes exempted wholesale — each allow entry is a standing,
//! # reviewed suppression, so keep them few and commented.
//! [rules.panic]
//! paths = ["crates/serve/src", "src"]
//! allow = []
//!
//! [rules.clock]
//! allow = ["crates/core/src/clock.rs"]
//!
//! # The unsafe budget: every file holding `unsafe` tokens must have an
//! # entry whose count matches exactly and whose justification is
//! # non-empty. A new `unsafe` anywhere fails the lint until a reviewer
//! # budgets it here.
//! [[unsafe]]
//! file = "crates/core/src/pool.rs"
//! count = 1
//! justification = "scoped-task lifetime erasure; see the SAFETY comment"
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// Names of the five enforced rule families.
pub const RULE_NAMES: [&str; 5] = ["panic", "clock", "determinism", "unsafe", "output"];

/// Per-rule path scoping.
#[derive(Debug, Default, Clone)]
pub struct RuleCfg {
    /// Enforcement roots (path prefixes, `/`-separated, relative to the
    /// workspace root). Empty means the rule applies everywhere its
    /// target-class policy admits.
    pub paths: Vec<String>,
    /// Exempted path prefixes — reviewed, standing suppressions.
    pub allow: Vec<String>,
}

/// One committed `unsafe` budget entry.
#[derive(Debug, Clone)]
pub struct UnsafeEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// Exact number of `unsafe` tokens the file is budgeted for.
    pub count: usize,
    /// Why the unsafe is held (non-empty, enforced at parse time).
    pub justification: String,
}

/// The parsed policy.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleCfg>,
    /// The unsafe budget manifest.
    pub unsafe_budget: Vec<UnsafeEntry>,
}

impl Config {
    /// Scoping for `rule`, defaulting to "applies everywhere, no allows".
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleCfg {
        self.rules.get(rule).cloned().unwrap_or_default()
    }
}

/// A parse or validation error with its `lint.toml` line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for whole-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the policy from `lint.toml` text.
///
/// # Errors
///
/// Fails on unknown tables/keys, malformed values, an unknown rule name,
/// an empty unsafe justification, or a duplicate unsafe file entry.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if inner.trim() != "unsafe" {
                return Err(err(lineno, format!("unknown array-of-tables [[{inner}]]")));
            }
            flush_unsafe(&mut cfg, &mut section, lineno)?;
            section = Section::Unsafe {
                file: None,
                count: None,
                justification: None,
                line: lineno,
            };
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush_unsafe(&mut cfg, &mut section, lineno)?;
            let Some(rule) = inner.trim().strip_prefix("rules.") else {
                return Err(err(lineno, format!("unknown table [{inner}]")));
            };
            if !RULE_NAMES.contains(&rule) {
                return Err(err(
                    lineno,
                    format!("unknown rule {rule:?} (expected one of {RULE_NAMES:?})"),
                ));
            }
            section = Section::Rule(rule.to_owned());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim();
        let mut value = value.trim().to_owned();
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, next) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(next).trim());
                if value.trim_end().ends_with(']') {
                    break;
                }
            }
        }
        apply_key(&mut cfg, &mut section, key, value.trim(), lineno)?;
    }
    flush_unsafe(&mut cfg, &mut section, 0)?;
    Ok(cfg)
}

enum Section {
    None,
    Rule(String),
    Unsafe {
        file: Option<String>,
        count: Option<usize>,
        justification: Option<String>,
        line: u32,
    },
}

fn apply_key(
    cfg: &mut Config,
    section: &mut Section,
    key: &str,
    value: &str,
    lineno: u32,
) -> Result<(), ConfigError> {
    match section {
        Section::None => Err(err(lineno, format!("key {key:?} outside any table"))),
        Section::Rule(rule) => {
            let entry = cfg.rules.entry(rule.clone()).or_default();
            match key {
                "paths" => {
                    entry.paths = parse_string_array(value, lineno)?;
                    Ok(())
                }
                "allow" => {
                    entry.allow = parse_string_array(value, lineno)?;
                    Ok(())
                }
                other => Err(err(
                    lineno,
                    format!("unknown key {other:?} in [rules.{rule}] (expected paths/allow)"),
                )),
            }
        }
        Section::Unsafe {
            file,
            count,
            justification,
            ..
        } => match key {
            "file" => {
                *file = Some(parse_string(value, lineno)?);
                Ok(())
            }
            "count" => {
                *count = Some(value.parse::<usize>().map_err(|_| {
                    err(lineno, format!("count must be an integer, got {value:?}"))
                })?);
                Ok(())
            }
            "justification" => {
                *justification = Some(parse_string(value, lineno)?);
                Ok(())
            }
            other => Err(err(
                lineno,
                format!("unknown key {other:?} in [[unsafe]] (expected file/count/justification)"),
            )),
        },
    }
}

fn flush_unsafe(cfg: &mut Config, section: &mut Section, lineno: u32) -> Result<(), ConfigError> {
    if let Section::Unsafe {
        file,
        count,
        justification,
        line,
    } = std::mem::replace(section, Section::None)
    {
        let entry_line = if lineno == 0 { line } else { line.min(lineno) };
        let file = file.ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `file`"))?;
        let count = count.ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `count`"))?;
        let justification = justification
            .ok_or_else(|| err(entry_line, "[[unsafe]] entry missing `justification`"))?;
        if justification.trim().is_empty() {
            return Err(err(
                entry_line,
                format!("[[unsafe]] entry for {file:?} has an empty justification"),
            ));
        }
        if cfg.unsafe_budget.iter().any(|e| e.file == file) {
            return Err(err(
                entry_line,
                format!("duplicate [[unsafe]] entry for {file:?}"),
            ));
        }
        cfg.unsafe_budget.push(UnsafeEntry {
            file,
            count,
            justification,
        });
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got {value:?}")))?;
    // Minimal escape handling; paths and prose need none of the exotic ones.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected an array, got {value:?}")))?;
    let mut out = Vec::new();
    for item in split_top_level(inner) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_policy() {
        let cfg = parse(
            r#"
# comment
[rules.panic]
paths = ["crates/serve/src", "src"] # trailing comment
allow = []

[rules.clock]
allow = [
    "crates/core/src/clock.rs",
    "crates/bench/src",
]

[[unsafe]]
file = "crates/core/src/pool.rs"
count = 1
justification = "scoped-task lifetime erasure"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.rule("panic").paths, ["crates/serve/src", "src"]);
        assert_eq!(
            cfg.rule("clock").allow,
            ["crates/core/src/clock.rs", "crates/bench/src"]
        );
        assert_eq!(cfg.unsafe_budget.len(), 1);
        assert_eq!(cfg.unsafe_budget[0].count, 1);
    }

    #[test]
    fn empty_justification_is_rejected() {
        let e = parse("[[unsafe]]\nfile = \"a.rs\"\ncount = 1\njustification = \"  \"\n")
            .expect_err("must reject");
        assert!(e.message.contains("empty justification"), "{e}");
    }

    #[test]
    fn missing_manifest_fields_are_rejected() {
        assert!(parse("[[unsafe]]\nfile = \"a.rs\"\ncount = 1\n").is_err());
        assert!(parse("[[unsafe]]\nfile = \"a.rs\"\njustification = \"j\"\n").is_err());
    }

    #[test]
    fn unknown_rule_and_keys_are_rejected() {
        assert!(parse("[rules.nonsense]\npaths = []\n").is_err());
        assert!(parse("[rules.panic]\npath = []\n").is_err());
        assert!(parse("[other]\nx = 1\n").is_err());
    }

    #[test]
    fn duplicate_unsafe_files_are_rejected() {
        let text = "[[unsafe]]\nfile = \"a.rs\"\ncount = 1\njustification = \"j\"\n\
                    [[unsafe]]\nfile = \"a.rs\"\ncount = 2\njustification = \"k\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[rules.panic]\nallow = [\"weird#path.rs\"]\n").expect("parses");
        assert_eq!(cfg.rule("panic").allow, ["weird#path.rs"]);
    }
}
