//! A token-level Rust lexer — the foundation every rule walks.
//!
//! Rules must never fire on text inside string literals, char literals, or
//! comments (`"calls unwrap()"` in a log message is not a panic site), and
//! must correctly see through the constructs a regex-over-text scanner
//! trips on: raw strings with arbitrary `#` fences, byte/C-string
//! prefixes, nested block comments, lifetimes vs char literals, and raw
//! identifiers. The lexer produces a flat token stream with 1-based
//! line/column positions plus the line comments (rule suppressions ride in
//! `// lint: allow(...)` comments, so those are kept, not discarded).
//!
//! This is a *lexer*, not a parser: rules pattern-match short token
//! windows (`.` `unwrap` `(`, `Instant` `::` `now`). That is exactly the
//! altitude the enforced invariants live at — no type information is
//! needed to know `panic!` appears in a source file.

/// What a token is. Literal payloads are not retained — no rule needs the
/// contents of a string, only the fact that it *is* a string (and hence
/// inert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, `r#match` → `match`).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct(char),
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexed token with its source position (1-based line and column) and
/// byte span (half-open, into the original source) — the span is what
/// lets a diagnostic carry a machine-applicable rewrite for `--fix`.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifiers).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Byte offset of the token's first byte in the source.
    pub byte: usize,
    /// Byte offset one past the token's last byte.
    pub byte_end: usize,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `// …` line comment (doc comments `///`/`//!` are excluded — a
/// suppression must be a plain comment, not part of rendered docs).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Comment text after the leading `//`, untrimmed.
    pub text: String,
    /// 1-based source line the comment sits on.
    pub line: u32,
    /// Whether any code token precedes the comment on its own line (a
    /// *trailing* comment annotates that line; a standalone comment
    /// annotates the next line that holds code).
    pub trailing: bool,
    /// Byte offset of the leading `//`.
    pub byte: usize,
    /// Byte offset one past the comment's last byte (excluding the
    /// newline).
    pub byte_end: usize,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Tok>,
    /// All plain line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes `source` into tokens and line comments. Invalid input (say, an
/// unterminated string) never panics — the lexer consumes to end of input
/// and returns what it saw; rustc is the authority on well-formedness.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    byte: usize,
    out: Lexed,
    /// Tokens already seen on the current source line (resets at `\n`) —
    /// this is what distinguishes a trailing comment from a standalone one.
    tokens_on_line: bool,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            byte: 0,
            out: Lexed::default(),
            tokens_on_line: false,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.tokens_on_line = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32, byte: usize) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
            byte,
            byte_end: self.byte,
        });
        self.tokens_on_line = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col, byte) = (self.line, self.col, self.byte);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, byte),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col, byte),
                '\'' => self.char_or_lifetime(line, col, byte),
                c if c.is_ascii_digit() => self.number(line, col, byte),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line, col, byte),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), String::new(), line, col, byte);
                }
            }
        }
        self.out
    }

    /// `// …` to end of line. Doc comments (`///`, `//!`) are dropped.
    fn line_comment(&mut self, line: u32, byte: usize) {
        self.bump();
        self.bump(); // the two slashes
        let doc = matches!(self.peek(0), Some('/' | '!'));
        // `////…` separators are plain comments again, not docs.
        let doc = doc && !(self.peek(0) == Some('/') && self.peek(1) == Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if !doc {
            self.out.comments.push(LineComment {
                text,
                line,
                trailing: self.tokens_on_line,
                byte,
                byte_end: self.byte,
            });
        }
    }

    /// `/* … */` with nesting, per the Rust grammar.
    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
    }

    /// A `"…"` string with escapes.
    fn string(&mut self, line: u32, col: u32, byte: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line, col, byte);
    }

    /// A raw string after its prefix: `#`* `"` … `"` `#`*(same count).
    fn raw_string(&mut self, line: u32, col: u32, byte: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: lex the ident without the fence.
            self.ident_body(line, col, byte);
            return;
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line, col, byte);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, line: u32, col: u32, byte: usize) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        self.bump();
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line, col, byte);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // `'x'`
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, String::new(), line, col, byte);
                } else {
                    // `'lifetime`
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, String::new(), line, col, byte);
                }
            }
            _ => {
                // Something like `'('` or a stray quote; consume one char
                // and, if present, the closing quote.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line, col, byte);
            }
        }
    }

    /// A numeric literal. Precision is unimportant (no rule reads
    /// numbers), but the lexer must not swallow a `..` range operator.
    fn number(&mut self, line: u32, col: u32, byte: usize) {
        while let Some(c) = self.peek(0) {
            if c == '.' {
                if self.peek(1) == Some('.') {
                    break; // range operator, not a decimal point
                }
                if !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                    break; // method call on a literal, e.g. `1.max(2)`
                }
                self.bump();
            } else if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, String::new(), line, col, byte);
    }

    /// An identifier, unless it turns out to be a literal prefix
    /// (`r"…"`, `b'…'`, `br#"…"#`, `c"…"`).
    fn ident_or_prefixed(&mut self, line: u32, col: u32, byte: usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"' | '#')) => self.raw_string(line, col, byte),
            ("b" | "c", Some('"')) => self.string(line, col, byte),
            ("b", Some('\'')) => self.char_or_lifetime(line, col, byte),
            _ => self.push(TokKind::Ident, text, line, col, byte),
        }
    }

    /// Body of a raw identifier `r#ident` — emitted as a plain ident so
    /// `r#unsafe` (were it legal) still counts as the `unsafe` it names.
    fn ident_body(&mut self, line: u32, col: u32, byte: usize) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident, text, line, col, byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn string_embedded_code_is_inert() {
        let src = r#"let msg = "never call unwrap() or Instant::now here";"#;
        assert_eq!(idents(src), ["let", "msg"]);
    }

    #[test]
    fn raw_strings_with_fences_are_inert() {
        let src = r###"let s = r#"contains "quotes" and unwrap() and # marks"#; s.len()"###;
        assert_eq!(idents(src), ["let", "s", "s", "len"]);
    }

    #[test]
    fn byte_and_cstr_prefixes_are_strings() {
        let src = r##"let a = b"unwrap()"; let b2 = c"panic!"; let d = br#"x"#;"##;
        let lexed = lex(src);
        let strings = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strings, 3);
        assert_eq!(idents(src), ["let", "a", "let", "b2", "let", "d"]);
    }

    #[test]
    fn nested_block_comments_skip_cleanly() {
        let src = "a /* outer /* inner unwrap() */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
    }

    #[test]
    fn unterminated_block_comment_consumes_to_eof() {
        let src = "a /* never closed unwrap()";
        assert_eq!(idents(src), ["a"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let q = '\''; let n = '\n'; let bs = '\\';";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 3);
        assert_eq!(idents(src), ["let", "q", "let", "n", "let", "bs"]);
    }

    #[test]
    fn unicode_char_literal_vs_lifetime() {
        let src = "let c = 'é'; fn g<'static_ish>() {}";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        assert_eq!(idents("let r#match = 1; r#fn()"), ["let", "match", "fn"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let src = "for i in 0..10 { let x = 1.5_f64.max(2.0); }";
        assert!(idents(src).contains(&"max".to_owned()));
        let dots = lex(src).tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3, "two range dots plus one method dot");
    }

    #[test]
    fn doc_comments_are_not_suppression_comments() {
        let lexed = lex("/// lint: allow(panic) — nope\n//! lint: allow(clock) — nope\n// real\nx");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, " real");
        assert!(!lexed.comments[0].trailing);
    }

    #[test]
    fn trailing_comment_is_marked_trailing() {
        let lexed = lex("let x = 1; // lint: allow(panic) — reason\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn byte_spans_slice_back_to_the_source() {
        let src = "let étoile = cmp.partial_cmp(&y); // trailing";
        let lexed = lex(src);
        for t in lexed.tokens.iter().filter(|t| t.kind == TokKind::Ident) {
            assert_eq!(&src[t.byte..t.byte_end], t.text);
        }
        assert_eq!(lexed.comments.len(), 1);
        let c = &lexed.comments[0];
        assert_eq!(&src[c.byte..c.byte_end], "// trailing");
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
