//! # rapidviz-lint — the workspace invariant linter
//!
//! Every guarantee this workspace makes — byte-identical wire answers,
//! bit-frozen certified orderings, single-seed simulation repro — rests on
//! invariants rustc and clippy cannot see: no wall-clock reads outside the
//! [`Clock`] abstraction, no panics on answer paths, no hash-iteration
//! nondeterminism in answer-producing code. This crate enforces them as a
//! std-only static analyzer with a real token-level Rust lexer
//! ([`lexer`]): strings, raw strings with `#` fences, char literals vs
//! lifetimes, and nested block comments are all understood, so a
//! `"message mentioning unwrap()"` can never fire a rule.
//!
//! [`Clock`]: ../rapidviz_core/clock/trait.Clock.html
//!
//! # The rule families
//!
//! | rule | what fires | where it applies |
//! |------|------------|------------------|
//! | `panic` | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!` | library code under `[rules.panic] paths` (the serving / scheduler / engine answer paths) |
//! | `clock` | `Instant::now()`, `SystemTime::now()` | all library code except `[rules.clock] allow` (the `Clock` impls and measurement harnesses) |
//! | `determinism` | `thread_rng`, ambient `random()`, and `.iter()` / `.keys()` / `.values()` / `.drain()` (and `_mut` / `into_` variants) on bindings lexically typed or initialized as `HashMap` / `HashSet` | library code under `[rules.determinism] paths` (answer-producing crates) |
//! | `unsafe` | any `unsafe` token not matching a committed `[[unsafe]]` manifest entry (file + exact count + justification) | library, binary, and shim code |
//! | `output` | `println!`, `eprintln!` (and `print!` / `eprint!`) | all library code — diagnostics go through `Metrics` or returned errors |
//! | `layering` | a first-party crate reference (`use other_crate::…`, `other_crate::path`, `extern crate`) or `Cargo.toml` dependency edge outside the `[rules.layering]` DAG; a crate missing from the DAG; a stale DAG entry; a `crate::`-import **module cycle** within one crate | library and binary code; manifest/cycle checks run once per workspace |
//! | `concurrency` | a `.lock()` receiver not named in `[locks] order`; nested guards acquired against that order (or the same lock twice — self-deadlock); a guard held across blocking `send()` / `recv()` / `join()`; a timeout-less `recv()` outside the declared `scheduler_loops` files | library and binary code under `[rules.concurrency] paths` |
//!
//! The last two are **cross-file semantic passes**: `lint_workspace`
//! builds a [`model::WorkspaceModel`] once per run — the nine first-party
//! `Cargo.toml`s parsed into a crate-dependency graph, every file mapped
//! to its crate by directory convention — and checks both the declared
//! manifest edges and the actual source-level references against the
//! committed DAG ([`graph`] supplies the deterministic cycle/SCC
//! machinery). Lock discipline is intra-function guard-lifetime analysis
//! on the token stream: a `let`-bound guard lives to its enclosing block
//! (or an explicit `drop`), a temporary dies at its statement's end, and
//! every blocking call inside that span is checked.
//!
//! Tests (`tests/` trees **and** in-file `#[test]` / `#[cfg(test)]`
//! items, detected at the token level with brace matching), benches,
//! examples, and binaries are exempt from the style rules; shims
//! (`shims/*`, vendored stand-ins) are exempt from everything except the
//! unsafe budget. `#[cfg(not(test))]` does *not* exempt.
//!
//! # Suppression is explicit and auditable
//!
//! Two mechanisms, both reviewed in version control:
//!
//! 1. **`lint.toml` path scoping** (see [`config`] for the grammar):
//!    per-rule `paths` enforcement roots and `allow` exemption prefixes,
//!    plus the `[[unsafe]]` budget manifest whose `justification` is
//!    mandatory and whose `count` must match the file exactly — a new
//!    `unsafe` anywhere fails CI until a reviewer budgets it. The
//!    semantic passes add three committed tables: `[rules.layering]
//!    crates = ["name: dep dep"]` (the full crate DAG, validated acyclic
//!    at parse time), `[rules.concurrency] scheduler_loops` (the only
//!    files allowed a timeout-less `recv()`), and `[locks] order`
//!    (the global lock-acquisition order; stale entries are violations).
//! 2. **Inline allows** for single sites:
//!
//!    ```text
//!    let x = risky(); // lint: allow(panic) — bounded by the N check above
//!    ```
//!
//!    A trailing comment suppresses its own line; a standalone
//!    `// lint: allow(…) — reason` comment suppresses the next line
//!    holding code. The reason after the dash is **mandatory** — an
//!    un-reasoned allow is itself a violation — and so is usefulness: an
//!    allow that suppresses nothing is reported as unused, so stale
//!    escapes cannot accumulate. The unsafe budget deliberately has no
//!    inline form.
//!
//! # Diagnostics and exit status
//!
//! Violations print rustc-style, one per line, sorted:
//!
//! ```text
//! crates/serve/src/server.rs:202:44: [panic] .expect() on an answer path — …
//! error: 1 invariant violation across 1 file
//! ```
//!
//! The binary exits non-zero on any violation. The full-workspace run —
//! lexing every `.rs` file once, building the workspace model, and
//! running both the per-file rules and the graph passes — completes in
//! well under a second, so it also runs inside tier-1 as this crate's
//! `workspace_clean` integration test.
//!
//! # `--fix`: machine-applicable rewrites
//!
//! Diagnostics whose repair is mechanical and behavior-preserving carry a
//! byte-span [`Fix`] (rendered with a trailing `[fixable]` marker):
//! `partial_cmp(..).unwrap()` / `.expect(..)` → `total_cmp(..)`, and
//! deletion of un-reasoned or unused inline allows. `--fix` applies them
//! (overlaps are deferred to the next run, never spliced), re-lints, and
//! reports what remains; the rewrites are idempotent and the fixed tree
//! re-lints clean. `--fix --check` rewrites nothing and exits non-zero if
//! any fix is pending — the CI gate that keeps fixable diagnostics from
//! lingering. Judgment-shaped repairs (threading a [`Clock`],
//! restructuring a guard, re-layering a crate) never get a fix.
//!
//! # CLI
//!
//! ```text
//! rapidviz-lint --workspace [--root <dir>] [--config <path>]
//! rapidviz-lint --workspace --fix [--check] [--root <dir>]
//! rapidviz-lint [--root <dir>] <file.rs> […]
//! ```

pub mod config;
pub mod fixes;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;

pub use config::{Config, ConfigError};
pub use fixes::Fix;
pub use model::WorkspaceModel;
pub use rules::{classify, lint_file, lint_file_with_model, TargetClass, Violation};

use lexer::Lexed;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".github"];

/// Recursively collects every `.rs` file under `root`, returned as
/// workspace-relative `/`-separated paths, sorted for stable output.
///
/// # Errors
///
/// Propagates directory-walk I/O errors with the offending path.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel_to_string(rel));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_to_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Outcome of a workspace run.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All violations, sorted by path, then position.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints every `.rs` file under `root` against `cfg`: each file is lexed
/// once and run through every per-file rule (with the workspace model
/// available, so source-level layering fires), then the whole-workspace
/// passes run — manifest-level layering edges, per-crate module cycles,
/// stale `[[unsafe]]` and `[locks]` entries.
///
/// # Errors
///
/// Propagates walk, read, and manifest-parse I/O errors.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, String> {
    let files = collect_rs_files(root)?;
    let model = WorkspaceModel::build(root)?;
    let mut sources: Vec<(String, String, Lexed)> = Vec::with_capacity(files.len());
    for rel in &files {
        let full: PathBuf = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source =
            std::fs::read_to_string(&full).map_err(|e| format!("{}: {e}", full.display()))?;
        let lexed = lexer::lex(&source);
        sources.push((rel.clone(), source, lexed));
    }

    let mut violations = Vec::new();
    let mut seen = BTreeSet::new();
    for (rel, source, lexed) in &sources {
        violations.extend(rules::lint_lexed(rel, source, lexed, cfg, Some(&model)));
        seen.insert(rel.clone());
    }
    violations.extend(rules::stale_budget_entries(cfg, &seen));
    violations.extend(workspace_passes(cfg, &model, &sources));
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(WorkspaceReport {
        violations,
        files_scanned: files.len(),
    })
}

/// The once-per-run passes that need the whole workspace in view.
fn workspace_passes(
    cfg: &Config,
    model: &WorkspaceModel,
    sources: &[(String, String, Lexed)],
) -> Vec<Violation> {
    let mut out = Vec::new();

    if !cfg.layering.is_empty() {
        // Manifest-level edges against the declared DAG.
        for c in &model.crates {
            let Some(allowed) = cfg.layering.get(&c.name) else {
                out.push(Violation::new(
                    &c.manifest,
                    1,
                    1,
                    "layering",
                    format!(
                        "crate `{}` is not declared in [rules.layering] — every \
                         first-party crate needs a committed place in the DAG",
                        c.name
                    ),
                ));
                continue;
            };
            for d in &c.deps {
                if d.dev || allowed.contains(&d.name) {
                    continue;
                }
                out.push(Violation::new(
                    &c.manifest,
                    d.line,
                    1,
                    "layering",
                    format!(
                        "manifest dependency on `{}` is not admitted by the \
                         [rules.layering] DAG for `{}` — either the edge is a \
                         layering break or the DAG needs a reviewed update",
                        d.name, c.name
                    ),
                ));
            }
        }
        // Declared crates that no longer exist are stale policy.
        for name in cfg.layering.keys() {
            if model.by_name(name).is_none() {
                out.push(Violation::new(
                    "lint.toml",
                    1,
                    1,
                    "layering",
                    format!(
                        "stale [rules.layering] entry: crate `{name}` not found in \
                         the workspace"
                    ),
                ));
            }
        }
        // Module cycles within each crate (crate::-import graph at
        // top-level-module granularity; test-gated imports exempt).
        let layer_allow = cfg.rule("layering").allow;
        for c in &model.crates {
            let mut file_refs: Vec<(Option<String>, Vec<String>)> = Vec::new();
            for (rel, _, lexed) in sources {
                if model.crate_of(rel).is_none_or(|k| k.name != c.name) {
                    continue;
                }
                if rules::under_any(rel, &layer_allow) {
                    continue;
                }
                let in_test = rules::test_regions(&lexed.tokens);
                file_refs.push((
                    model::top_module(&c.dir, rel),
                    model::module_refs(&lexed.tokens, &in_test),
                ));
            }
            let module_graph = model::module_graph(&file_refs);
            let src_dir = if c.dir.is_empty() {
                "src".to_owned()
            } else {
                format!("{}/src", c.dir)
            };
            for scc in graph::cyclic_sccs(&module_graph) {
                out.push(Violation::new(
                    &src_dir,
                    1,
                    1,
                    "layering",
                    format!(
                        "module cycle within crate `{}`: {} — the crate::-imports \
                         form a loop; move the shared items into one of the \
                         modules (or a lower one) and re-export",
                        c.name,
                        scc.join(" ↔ ")
                    ),
                ));
            }
        }
    }

    // Stale [locks] entries: a committed lock name no scoped .lock()
    // site uses keeps reviewers auditing a phantom.
    if !cfg.lock_order.is_empty() {
        let mut seen_locks = BTreeSet::new();
        for (rel, _, lexed) in sources {
            let class = rules::classify(rel);
            if rules::rule_applies(
                cfg,
                "concurrency",
                rel,
                class,
                &[TargetClass::Library, TargetClass::Bin],
            ) {
                seen_locks.extend(rules::lock_names(&lexed.tokens));
            }
        }
        for e in &cfg.lock_order {
            if !seen_locks.contains(&e.name) {
                out.push(Violation::new(
                    "lint.toml",
                    e.line,
                    1,
                    "concurrency",
                    format!(
                        "stale [locks] entry `{}`: no .lock() site in scoped code \
                         uses this name",
                        e.name
                    ),
                ));
            }
        }
    }
    out
}

/// Groups the fixes carried by `violations` per file path, preserving
/// report order within each file — the unit `--fix` hands to
/// [`fixes::apply_to_source`]. (Lives here rather than in [`fixes`] so
/// the fix engine stays below [`rules`] in the module graph — the
/// module-cycle pass of this very linter holds its own crate to that.)
#[must_use]
pub fn fix_plan(violations: &[Violation]) -> std::collections::BTreeMap<String, Vec<Fix>> {
    let mut by_file: std::collections::BTreeMap<String, Vec<Fix>> =
        std::collections::BTreeMap::new();
    for v in violations {
        if let Some(f) = &v.fix {
            by_file.entry(v.path.clone()).or_default().push(f.clone());
        }
    }
    by_file
}

/// Loads `lint.toml` from `path`.
///
/// # Errors
///
/// Fails on missing file or any parse/validation error, already formatted
/// for display.
pub fn load_config(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}
