//! # rapidviz-lint — the workspace invariant linter
//!
//! Every guarantee this workspace makes — byte-identical wire answers,
//! bit-frozen certified orderings, single-seed simulation repro — rests on
//! invariants rustc and clippy cannot see: no wall-clock reads outside the
//! [`Clock`] abstraction, no panics on answer paths, no hash-iteration
//! nondeterminism in answer-producing code. This crate enforces them as a
//! std-only static analyzer with a real token-level Rust lexer
//! ([`lexer`]): strings, raw strings with `#` fences, char literals vs
//! lifetimes, and nested block comments are all understood, so a
//! `"message mentioning unwrap()"` can never fire a rule.
//!
//! [`Clock`]: ../rapidviz_core/clock/trait.Clock.html
//!
//! # The rule families
//!
//! | rule | what fires | where it applies |
//! |------|------------|------------------|
//! | `panic` | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!` | library code under `[rules.panic] paths` (the serving / scheduler / engine answer paths) |
//! | `clock` | `Instant::now()`, `SystemTime::now()` | all library code except `[rules.clock] allow` (the `Clock` impls and measurement harnesses) |
//! | `determinism` | `thread_rng`, ambient `random()`, and `.iter()` / `.keys()` / `.values()` / `.drain()` (and `_mut` / `into_` variants) on bindings lexically typed or initialized as `HashMap` / `HashSet` | library code under `[rules.determinism] paths` (answer-producing crates) |
//! | `unsafe` | any `unsafe` token not matching a committed `[[unsafe]]` manifest entry (file + exact count + justification) | library, binary, and shim code |
//! | `output` | `println!`, `eprintln!` (and `print!` / `eprint!`) | all library code — diagnostics go through `Metrics` or returned errors |
//!
//! Tests (`tests/` trees **and** in-file `#[test]` / `#[cfg(test)]`
//! items, detected at the token level with brace matching), benches,
//! examples, and binaries are exempt from the style rules; shims
//! (`shims/*`, vendored stand-ins) are exempt from everything except the
//! unsafe budget. `#[cfg(not(test))]` does *not* exempt.
//!
//! # Suppression is explicit and auditable
//!
//! Two mechanisms, both reviewed in version control:
//!
//! 1. **`lint.toml` path scoping** (see [`config`] for the grammar):
//!    per-rule `paths` enforcement roots and `allow` exemption prefixes,
//!    plus the `[[unsafe]]` budget manifest whose `justification` is
//!    mandatory and whose `count` must match the file exactly — a new
//!    `unsafe` anywhere fails CI until a reviewer budgets it.
//! 2. **Inline allows** for single sites:
//!
//!    ```text
//!    let x = risky(); // lint: allow(panic) — bounded by the N check above
//!    ```
//!
//!    A trailing comment suppresses its own line; a standalone
//!    `// lint: allow(…) — reason` comment suppresses the next line
//!    holding code. The reason after the dash is **mandatory** — an
//!    un-reasoned allow is itself a violation — and so is usefulness: an
//!    allow that suppresses nothing is reported as unused, so stale
//!    escapes cannot accumulate. The unsafe budget deliberately has no
//!    inline form.
//!
//! # Diagnostics and exit status
//!
//! Violations print rustc-style, one per line, sorted:
//!
//! ```text
//! crates/serve/src/server.rs:202:44: [panic] .expect() on an answer path — …
//! error: 1 invariant violation across 1 file
//! ```
//!
//! The binary exits non-zero on any violation. The full-workspace run
//! lexes every `.rs` file in well under a second, so it also runs inside
//! tier-1 as this crate's `workspace_clean` integration test.
//!
//! # CLI
//!
//! ```text
//! rapidviz-lint --workspace [--root <dir>] [--config <path>]
//! rapidviz-lint [--root <dir>] <file.rs> […]
//! ```

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use rules::{classify, lint_file, TargetClass, Violation};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".github"];

/// Recursively collects every `.rs` file under `root`, returned as
/// workspace-relative `/`-separated paths, sorted for stable output.
///
/// # Errors
///
/// Propagates directory-walk I/O errors with the offending path.
pub fn collect_rs_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel_to_string(rel));
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_to_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Outcome of a workspace run.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All violations, sorted by path, then position.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints every `.rs` file under `root` against `cfg`.
///
/// # Errors
///
/// Propagates walk and read I/O errors.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<WorkspaceReport, String> {
    let files = collect_rs_files(root)?;
    let mut violations = Vec::new();
    let mut seen = BTreeSet::new();
    for rel in &files {
        let full: PathBuf = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let source =
            std::fs::read_to_string(&full).map_err(|e| format!("{}: {e}", full.display()))?;
        violations.extend(rules::lint_file(rel, &source, cfg));
        seen.insert(rel.clone());
    }
    violations.extend(rules::stale_budget_entries(cfg, &seen));
    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(WorkspaceReport {
        violations,
        files_scanned: files.len(),
    })
}

/// Loads `lint.toml` from `path`.
///
/// # Errors
///
/// Fails on missing file or any parse/validation error, already formatted
/// for display.
pub fn load_config(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}
