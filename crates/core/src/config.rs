//! Algorithm configuration.

use rapidviz_stats::{EpsilonSchedule, SamplingMode};

/// What to do when an inactive group's interval begins overlapping again
/// because another group's estimate moved (the corner case discussed after
/// Algorithm 1 in §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactivationPolicy {
    /// Option (a): groups never return to the active set. This preserves the
    /// optimality guarantees and is the paper's (and our) default.
    #[default]
    Never,
    /// Option (b): inactive groups may be re-activated. Sound but forfeits
    /// the sample-complexity optimality proof; exposed for the ablation
    /// benchmarks.
    Allow,
}

/// Shared configuration for every algorithm in this crate.
///
/// `c` and `δ` are the two parameters Problem 1 requires; everything else
/// defaults to the paper's experimental choices (`κ = 1`, sampling without
/// replacement, no resolution relaxation, no heuristic shrinking,
/// reactivation policy (a)).
#[derive(Debug, Clone)]
pub struct AlgoConfig {
    /// Upper bound `c` on any individual value (values live in `[0, c]`).
    pub c: f64,
    /// Failure probability `δ`: ordering is correct w.p. `≥ 1 − δ`.
    pub delta: f64,
    /// Minimum resolution `r` (Problem 2). `None` = exact ordering
    /// (Problem 1); `Some(r)` stops refining once `ε_m < r/4`.
    pub resolution: Option<f64>,
    /// Epoch base `κ ≥ 1` of the anytime schedule (footnote †; paper uses 1).
    pub kappa: f64,
    /// With or without replacement (§3.6).
    pub mode: SamplingMode,
    /// Heuristic confidence-shrink factor `h ≥ 1` (Figures 5a/5b). `1.0`
    /// (no shrinking) preserves the correctness guarantee.
    pub heuristic_factor: f64,
    /// Reactivation policy for the §3.1 corner case.
    pub reactivation: ReactivationPolicy,
    /// Record a per-round interval trace (Table 1). Costs O(k) memory per
    /// round — only enable for small illustrative runs.
    pub record_trace: bool,
    /// Record a history point (active count + estimate snapshot) every this
    /// many rounds (Figures 5c / 6a). `0` disables history.
    pub history_every: u64,
    /// Hard cap on rounds, as a runaway guard for with-replacement runs on
    /// adversarial data. `u64::MAX` = no cap. Without replacement the
    /// schedule's exhaustion collapse bounds rounds by `max_i n_i` already.
    pub max_rounds: u64,
    /// Samples drawn per active group per round (default 1, the paper's
    /// Algorithm 1). Larger batches amortize the per-round overlap
    /// bookkeeping at the cost of up to `b − 1` overshoot samples per
    /// group; the anytime bound is checked at the post-batch `m`, so
    /// correctness is unaffected. Ablated in the benches.
    pub samples_per_round: u64,
    /// Hard cap on samples drawn from any single group. Matters for
    /// IREFINE, whose per-phase batches quadruple: a batch that would
    /// exceed the remaining budget retires the group instead (the run is
    /// marked truncated). `u64::MAX` = no cap.
    pub max_samples_per_group: u64,
    /// Minimum `samples_per_round × active groups` at which a round's
    /// per-group draw loop fans out across the persistent worker pool.
    /// Only consulted when the crate is built with the `parallel` feature.
    /// Dispatch costs one channel send per worker (the pool threads spawn
    /// once and park between rounds), so even narrow rounds can profit;
    /// the default guards only the tiniest rounds, where per-group RNG
    /// seeding would dominate the draws themselves.
    pub parallel_threshold: u64,
}

impl AlgoConfig {
    /// Paper-default configuration for values in `[0, c]` and failure
    /// probability `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0` or `δ ∉ (0, 1)`.
    #[must_use]
    pub fn new(c: f64, delta: f64) -> Self {
        assert!(c > 0.0, "range c must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        Self {
            c,
            delta,
            resolution: None,
            kappa: 1.0,
            mode: SamplingMode::WithoutReplacement,
            heuristic_factor: 1.0,
            reactivation: ReactivationPolicy::Never,
            record_trace: false,
            history_every: 0,
            max_rounds: u64::MAX,
            max_samples_per_group: u64::MAX,
            samples_per_round: 1,
            parallel_threshold: 256,
        }
    }

    /// Sets the minimum resolution `r` (the `-R` algorithm variants).
    ///
    /// # Panics
    ///
    /// Panics if `r <= 0`.
    #[must_use]
    pub fn with_resolution(mut self, r: f64) -> Self {
        assert!(r > 0.0, "resolution must be positive");
        self.resolution = Some(r);
        self
    }

    /// Sets the sampling mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SamplingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the heuristic shrink factor (≥ 1).
    #[must_use]
    pub fn with_heuristic_factor(mut self, h: f64) -> Self {
        assert!(h >= 1.0, "heuristic factor must be >= 1");
        self.heuristic_factor = h;
        self
    }

    /// Sets the epoch base κ (≥ 1).
    #[must_use]
    pub fn with_kappa(mut self, kappa: f64) -> Self {
        assert!(kappa >= 1.0, "kappa must be >= 1");
        self.kappa = kappa;
        self
    }

    /// Sets the reactivation policy.
    #[must_use]
    pub fn with_reactivation(mut self, policy: ReactivationPolicy) -> Self {
        self.reactivation = policy;
        self
    }

    /// Enables per-round trace recording (Table 1).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables history recording every `n` rounds (Figures 5c/6a).
    #[must_use]
    pub fn with_history_every(mut self, n: u64) -> Self {
        self.history_every = n;
        self
    }

    /// Caps the number of rounds.
    #[must_use]
    pub fn with_max_rounds(mut self, cap: u64) -> Self {
        self.max_rounds = cap;
        self
    }

    /// Caps the samples drawn from any single group.
    #[must_use]
    pub fn with_max_samples_per_group(mut self, cap: u64) -> Self {
        self.max_samples_per_group = cap;
        self
    }

    /// Sets the per-round batch size (>= 1).
    #[must_use]
    pub fn with_samples_per_round(mut self, b: u64) -> Self {
        assert!(b >= 1, "batch size must be at least 1");
        self.samples_per_round = b;
        self
    }

    /// Sets the minimum per-round draw count that triggers the parallel
    /// fan-out (`parallel` feature only).
    #[must_use]
    pub fn with_parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Builds the ε-schedule this configuration induces for `k` groups.
    #[must_use]
    pub fn schedule(&self, k: usize) -> EpsilonSchedule {
        EpsilonSchedule::with_options(
            self.c,
            self.delta,
            k,
            self.kappa,
            self.mode,
            self.heuristic_factor,
        )
    }

    /// The ε threshold below which the resolution relaxation allows
    /// termination (`r/4`, §3.6), or `None` without a resolution.
    #[must_use]
    pub fn resolution_epsilon(&self) -> Option<f64> {
        self.resolution.map(|r| r / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AlgoConfig::new(100.0, 0.05);
        assert_eq!(c.kappa, 1.0);
        assert_eq!(c.mode, SamplingMode::WithoutReplacement);
        assert_eq!(c.heuristic_factor, 1.0);
        assert_eq!(c.reactivation, ReactivationPolicy::Never);
        assert_eq!(c.resolution, None);
        assert_eq!(c.resolution_epsilon(), None);
    }

    #[test]
    fn builder_chain() {
        let c = AlgoConfig::new(100.0, 0.05)
            .with_resolution(1.0)
            .with_mode(SamplingMode::WithReplacement)
            .with_heuristic_factor(2.0)
            .with_kappa(1.5)
            .with_reactivation(ReactivationPolicy::Allow)
            .with_trace()
            .with_history_every(10)
            .with_max_rounds(1000);
        assert_eq!(c.resolution, Some(1.0));
        assert_eq!(c.resolution_epsilon(), Some(0.25));
        assert_eq!(c.mode, SamplingMode::WithReplacement);
        assert!(c.record_trace);
        assert_eq!(c.history_every, 10);
        assert_eq!(c.max_rounds, 1000);
    }

    #[test]
    fn batch_size_builder() {
        let c = AlgoConfig::new(1.0, 0.05).with_samples_per_round(16);
        assert_eq!(c.samples_per_round, 16);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn rejects_zero_batch() {
        let _ = AlgoConfig::new(1.0, 0.05).with_samples_per_round(0);
    }

    #[test]
    fn schedule_inherits_options() {
        let c = AlgoConfig::new(50.0, 0.1).with_heuristic_factor(4.0);
        let s = c.schedule(10);
        assert_eq!(s.c(), 50.0);
        assert_eq!(s.delta(), 0.1);
        assert_eq!(s.k(), 10);
        assert_eq!(s.heuristic_factor(), 4.0);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_bad_resolution() {
        let _ = AlgoConfig::new(1.0, 0.05).with_resolution(0.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let _ = AlgoConfig::new(1.0, 0.0);
    }
}
