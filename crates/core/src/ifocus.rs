//! IFOCUS — Algorithm 1, the paper's primary contribution.
//!
//! Round structure (after one bootstrap sample per group):
//!
//! 1. `m ← m + 1`; recompute the anytime ε (line 6);
//! 2. draw one fresh sample from every **active** group (lines 7–9);
//! 3. deactivate every active group whose interval `[ν_i − ε, ν_i + ε]` is
//!    disjoint from the union of the other active groups' intervals
//!    (lines 10–12), iterating to a fixpoint so cascaded separations
//!    resolve within the round;
//! 4. stop when no group is active.
//!
//! With [`crate::AlgoConfig::resolution`] set this is **IFOCUS-R**
//! (Problem 2): the loop additionally stops as soon as `ε_m < r/4`, which
//! bounds the total sample count by a constant independent of the data size
//! (the flat curves of Figure 3a).
//!
//! Correctness: Theorem 3.5 (ordering holds w.p. `≥ 1 − δ`). Sample
//! complexity: `O(c²·Σ_i (log(k/δ) + log log(1/η_i)) / η_i²)` (Theorem 3.6),
//! optimal up to the `log log` term by the Theorem 3.8 lower bound.

use crate::config::AlgoConfig;
use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use crate::runner::{AlgorithmStepper, OrderingAlgorithm, Snapshot, StepOutcome};
use crate::saved::{RestoreError, SavedStepper};
use crate::state::FocusState;
use rand::RngCore;

/// The IFOCUS algorithm (and IFOCUS-R when a resolution is configured).
///
/// ```
/// use rapidviz_core::{AlgoConfig, IFocus, group::VecGroup, is_correctly_ordered};
/// use rand::SeedableRng;
///
/// let mut groups = vec![
///     VecGroup::new("slow", vec![20.0; 5_000]),
///     VecGroup::new("fast", vec![80.0; 5_000]),
/// ];
/// let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let result = algo.run(&mut groups, &mut rng);
/// assert!(result.estimates[0] < result.estimates[1]);
/// assert!(result.total_samples() < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct IFocus {
    config: AlgoConfig,
}

impl IFocus {
    /// Creates the algorithm with the given configuration.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AlgoConfig {
        &self.config
    }

    /// Begins a resumable run: bootstrap sample (one draw per group,
    /// Algorithm 1 lines 1–3) plus the round-1 separation check. Drive the
    /// returned stepper with [`AlgorithmStepper::step`] over the **same**
    /// groups and RNG; a fixed-seed `start`/`step`/`finish` drive is
    /// byte-identical to [`IFocus::run`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusStepper {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        // Round-1 bookkeeping: check separation immediately (a dataset can
        // already be resolved after one sample per group only when the
        // resolution cut-off fires; ε at m = 1 is otherwise huge).
        if state.resolution_reached() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        IFocusStepper { state }
    }

    /// Runs IFOCUS over the groups to completion — a thin loop over
    /// [`IFocus::start`] and [`AlgorithmStepper::step`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// The IFOCUS state machine: one [`AlgorithmStepper::step`] call per round
/// (draw a batch from every active group, recompute ε, run the deactivation
/// fixpoint).
#[derive(Debug)]
pub struct IFocusStepper {
    state: FocusState,
}

impl IFocusStepper {
    /// Total samples drawn so far (cheaper than a full snapshot — used by
    /// session budget checks every round).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.state.total_samples()
    }
}

impl AlgorithmStepper for IFocusStepper {
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        let state = &mut self.state;
        if !state.any_active() {
            return StepOutcome::Converged;
        }
        if state.m >= state.config.max_rounds {
            state.truncated = true;
            return StepOutcome::BudgetExhausted;
        }
        let batch = state.config.samples_per_round;
        state.m += batch;
        // One draw_batch call per active group (and, over threshold with
        // the `parallel` feature, one worker-pool fan-out per round)
        // instead of `batch` single draws; the selection index list is
        // rebuilt in the state's reusable scratch buffer.
        state.draw_round_selected(false, groups, rng, batch);
        if state.resolution_reached() || state.all_active_exhausted() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        if state.any_active() {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }

    fn snapshot(&self) -> Snapshot {
        self.state.snapshot()
    }

    fn approx_bytes(&self) -> usize {
        self.state.approx_bytes()
    }

    fn save(&self) -> Option<SavedStepper> {
        Some(SavedStepper::Focus(self.state.save_core()))
    }

    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        match saved {
            SavedStepper::Focus(core) => self.state.restore_core(core),
            other => Err(RestoreError::WrongKind {
                expected: "focus",
                got: other.kind(),
            }),
        }
    }

    fn finish(self) -> RunResult {
        self.state.finish()
    }
}

impl OrderingAlgorithm for IFocus {
    type Stepper = IFocusStepper;

    fn name(&self) -> String {
        if self.config.resolution.is_some() {
            "ifocusr".to_owned()
        } else {
            "ifocus".to_owned()
        }
    }

    fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusStepper {
        IFocus::start(self, groups, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReactivationPolicy;
    use crate::group::VecGroup;
    use crate::ordering::{is_correctly_ordered, is_correctly_ordered_with_resolution};
    use rand::{Rng, SeedableRng};
    use rapidviz_stats::SamplingMode;

    /// Groups of two-point values with the given means over [0, 100].
    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    fn true_means(groups: &[VecGroup]) -> Vec<f64> {
        groups.iter().map(|g| g.true_mean().unwrap()).collect()
    }

    #[test]
    fn orders_well_separated_groups() {
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 50_000, 1);
        let truths = true_means(&groups);
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
        assert!(
            result.total_samples() < 3 * 50_000,
            "should sample less than the dataset"
        );
        assert!(!result.truncated);
    }

    #[test]
    fn focuses_samples_on_contentious_groups() {
        // Groups 0/1 nearly tied; group 2 far away: group 2 should receive
        // far fewer samples.
        let mut groups = two_point_groups(&[40.0, 43.0, 90.0], 100_000, 3);
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let result = algo.run(&mut groups, &mut rng);
        assert!(
            result.samples_per_group[2] * 4 < result.samples_per_group[0],
            "far group sampled {} vs contentious {}",
            result.samples_per_group[2],
            result.samples_per_group[0]
        );
        assert!(
            result.samples_per_group[2] * 4 < result.samples_per_group[1],
            "far group over-sampled"
        );
    }

    #[test]
    fn resolution_variant_samples_less() {
        // The 60/60.8 near-tie forces plain IFOCUS down to ε < 0.4, while
        // the r = 5 relaxation stops at ε < 1.25.
        let mut g1 = two_point_groups(&[30.0, 35.0, 60.0, 60.8, 90.0], 100_000, 5);
        let mut g2 = g1.clone();
        let plain = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let relaxed = IFocus::new(AlgoConfig::new(100.0, 0.05).with_resolution(5.0));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(6);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(6);
        let r_plain = plain.run(&mut g1, &mut rng1);
        let r_relaxed = relaxed.run(&mut g2, &mut rng2);
        assert!(
            r_relaxed.total_samples() < r_plain.total_samples(),
            "resolution should reduce sampling: {} vs {}",
            r_relaxed.total_samples(),
            r_plain.total_samples()
        );
        let truths = true_means(&g1);
        assert!(is_correctly_ordered_with_resolution(
            &r_relaxed.estimates,
            &truths,
            5.0
        ));
    }

    #[test]
    fn accuracy_over_many_seeds() {
        // δ = 0.2 but empirically the algorithm should essentially never
        // mis-order (the paper observes 100% accuracy).
        let mut failures = 0;
        let trials = 30;
        for seed in 0..trials {
            let mut groups = two_point_groups(&[25.0, 50.0, 75.0], 20_000, 100 + seed);
            let truths = true_means(&groups);
            let algo = IFocus::new(AlgoConfig::new(100.0, 0.2));
            let mut rng = rand::rngs::StdRng::seed_from_u64(200 + seed);
            let result = algo.run(&mut groups, &mut rng);
            if !is_correctly_ordered(&result.estimates, &truths) {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "{failures}/{trials} runs mis-ordered");
    }

    #[test]
    fn single_group_terminates_immediately() {
        let mut groups = vec![VecGroup::new("only", vec![1.0, 2.0, 3.0])];
        let algo = IFocus::new(AlgoConfig::new(10.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let result = algo.run(&mut groups, &mut rng);
        // A lone interval overlaps nothing: one sample and done.
        assert_eq!(result.total_samples(), 1);
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn identical_groups_exhaust_without_replacement() {
        // Equal true means: separation never happens; without replacement
        // the groups exhaust and the run still terminates.
        let mut groups = vec![
            VecGroup::new("a", vec![50.0; 500]),
            VecGroup::new("b", vec![50.0; 500]),
        ];
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
        assert!(result.total_samples() <= 1000);
        assert!((result.estimates[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn with_replacement_mode_works() {
        let mut groups = two_point_groups(&[20.0, 80.0], 10_000, 9);
        let truths = true_means(&groups);
        let algo =
            IFocus::new(AlgoConfig::new(100.0, 0.05).with_mode(SamplingMode::WithReplacement));
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
    }

    #[test]
    fn max_rounds_truncates() {
        let mut groups = two_point_groups(&[49.0, 51.0], 1_000_000, 11);
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05).with_max_rounds(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let result = algo.run(&mut groups, &mut rng);
        assert!(result.truncated);
        assert!(result.rounds <= 10);
    }

    #[test]
    fn trace_records_activity_transitions() {
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 20_000, 13);
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05).with_trace());
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let result = algo.run(&mut groups, &mut rng);
        let trace = result.trace.as_ref().expect("trace enabled");
        assert!(!trace.is_empty());
        // All groups eventually deactivate.
        let deact = trace.deactivation_rounds();
        assert!(deact.iter().all(Option::is_some));
        // Trace-implied cost equals measured cost.
        assert_eq!(trace.implied_sample_cost(), result.total_samples());
    }

    #[test]
    fn history_is_monotone() {
        let mut groups = two_point_groups(&[10.0, 45.0, 55.0, 90.0], 50_000, 15);
        let algo = IFocus::new(AlgoConfig::new(100.0, 0.05).with_history_every(5));
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        let result = algo.run(&mut groups, &mut rng);
        let history = result.history.as_ref().expect("history enabled");
        let series = history.active_groups_series();
        assert!(!series.is_empty());
        // Samples grow, active groups never grow (policy (a)).
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 0, "ends with no active groups");
    }

    #[test]
    fn reactivation_allow_still_correct() {
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 20_000, 17);
        let truths = true_means(&groups);
        let algo =
            IFocus::new(AlgoConfig::new(100.0, 0.05).with_reactivation(ReactivationPolicy::Allow));
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
    }

    #[test]
    fn heuristic_factor_reduces_samples() {
        let mut g1 = two_point_groups(&[30.0, 40.0, 70.0], 100_000, 19);
        let mut g2 = g1.clone();
        let honest = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let shrunk = IFocus::new(AlgoConfig::new(100.0, 0.05).with_heuristic_factor(4.0));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(20);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(20);
        let r_honest = honest.run(&mut g1, &mut rng1);
        let r_shrunk = shrunk.run(&mut g2, &mut rng2);
        assert!(
            r_shrunk.total_samples() < r_honest.total_samples() / 2,
            "aggressive shrinking should slash sampling: {} vs {}",
            r_shrunk.total_samples(),
            r_honest.total_samples()
        );
    }

    #[test]
    fn batched_rounds_still_correct_and_cheaper_bookkeeping() {
        let mut g1 = two_point_groups(&[20.0, 50.0, 80.0], 100_000, 23);
        let mut g2 = g1.clone();
        let truths = true_means(&g1);
        let single = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let batched = IFocus::new(AlgoConfig::new(100.0, 0.05).with_samples_per_round(64));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(24);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(24);
        let r1 = single.run(&mut g1, &mut rng1);
        let r64 = batched.run(&mut g2, &mut rng2);
        assert!(is_correctly_ordered(&r64.estimates, &truths));
        // Batch overshoot is bounded: within one batch per group of the
        // single-sample cost, modulo randomness.
        assert!(
            (r64.total_samples() as f64) < 1.5 * r1.total_samples() as f64 + 3.0 * 64.0,
            "batched {} vs single {}",
            r64.total_samples(),
            r1.total_samples()
        );
    }

    /// The pre-batching IFOCUS round loop, verbatim: one `state.draw` call
    /// per sample. Guards the acceptance criterion that the batched
    /// pipeline is byte-identical for a fixed seed.
    fn reference_ifocus(
        config: &AlgoConfig,
        groups: &mut [VecGroup],
        rng: &mut rand::rngs::StdRng,
    ) -> crate::result::RunResult {
        let mut state = FocusState::initialize(config, groups, rng);
        if state.resolution_reached() {
            state.deactivate_all();
        } else {
            state.standard_deactivation();
        }
        state.record();
        while state.any_active() {
            if state.m >= config.max_rounds {
                state.truncated = true;
                break;
            }
            let batch = config.samples_per_round;
            state.m += batch;
            for i in 0..state.k() {
                if state.active[i] && !state.exhausted[i] {
                    for _ in 0..batch {
                        state.draw(i, &mut groups[i], rng);
                    }
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                state.standard_deactivation();
            }
            state.record();
        }
        state.finish()
    }

    #[test]
    fn batched_pipeline_matches_single_draw_reference() {
        // Byte-identical results vs the pre-batching per-draw loop, at batch
        // size 1 AND at larger batches (draw_batch replays the same RNG
        // stream). Skipped under the `parallel` feature, whose fan-out
        // intentionally re-seeds per group.
        if cfg!(feature = "parallel") {
            return;
        }
        for batch in [1u64, 16] {
            let mut g1 = two_point_groups(&[20.0, 45.0, 55.0, 80.0], 30_000, 90);
            let mut g2 = g1.clone();
            let config = AlgoConfig::new(100.0, 0.05).with_samples_per_round(batch);
            let mut rng1 = rand::rngs::StdRng::seed_from_u64(91);
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(91);
            let result = IFocus::new(config.clone()).run(&mut g1, &mut rng1);
            let reference = reference_ifocus(&config, &mut g2, &mut rng2);
            assert_eq!(result.estimates, reference.estimates, "batch {batch}");
            assert_eq!(
                result.samples_per_group, reference.samples_per_group,
                "batch {batch}"
            );
            assert_eq!(result.rounds, reference.rounds, "batch {batch}");
            assert_eq!(result.truncated, reference.truncated, "batch {batch}");
        }
    }

    /// Under the parallel feature, a threshold-0 run must (a) produce a
    /// correct ordering and (b) be bit-identical across repeated runs with
    /// the same seed (thread scheduling must not leak into results).
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_rounds_deterministic_and_correct() {
        let make = || two_point_groups(&[20.0, 45.0, 55.0, 80.0], 50_000, 95);
        let truths = true_means(&make());
        let config = AlgoConfig::new(100.0, 0.05)
            .with_samples_per_round(32)
            .with_parallel_threshold(1);
        let run = |groups: &mut Vec<VecGroup>| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(96);
            IFocus::new(config.clone()).run(groups, &mut rng)
        };
        let r1 = run(&mut make());
        let r2 = run(&mut make());
        assert_eq!(
            r1.estimates, r2.estimates,
            "parallel run must be deterministic"
        );
        assert_eq!(r1.samples_per_group, r2.samples_per_group);
        assert!(is_correctly_ordered(&r1.estimates, &truths));
    }

    #[test]
    fn save_restore_resumes_bit_identically() {
        // With-replacement mode keeps the groups stateless, so stepper
        // state + RNG words are the complete resumable state. Checkpoint
        // after a few rounds, rebuild a fresh stepper (whose bootstrap
        // draws come from a throwaway RNG), restore, and the remaining
        // rounds must replay bit-identically.
        let make = || two_point_groups(&[20.0, 45.0, 55.0, 80.0], 30_000, 300);
        let config = AlgoConfig::new(100.0, 0.05).with_mode(SamplingMode::WithReplacement);
        let mut g1 = make();
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        let mut original = IFocus::new(config.clone()).start(&mut g1, &mut rng);
        for _ in 0..3 {
            let _ = original.step(&mut g1, &mut rng);
        }
        let saved = original.save().expect("ifocus steppers are resumable");
        let rng_words = rng.state();
        while original.step(&mut g1, &mut rng).is_running() {}
        let uninterrupted = original.finish();

        let mut g2 = make();
        let mut throwaway = rand::rngs::StdRng::seed_from_u64(0);
        let mut resumed = IFocus::new(config).start(&mut g2, &mut throwaway);
        resumed.restore(&saved).expect("shape matches");
        let mut rng2 = rand::rngs::StdRng::from_state(rng_words);
        while resumed.step(&mut g2, &mut rng2).is_running() {}
        let replayed = resumed.finish();

        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&uninterrupted.estimates), bits(&replayed.estimates));
        assert_eq!(uninterrupted.samples_per_group, replayed.samples_per_group);
        assert_eq!(uninterrupted.rounds, replayed.rounds);
        assert_eq!(uninterrupted.truncated, replayed.truncated);
    }

    #[test]
    fn restore_rejects_wrong_kind_and_shape() {
        use crate::saved::{RestoreError, SavedScan, SavedStepper};
        let mut groups = two_point_groups(&[20.0, 80.0], 1_000, 310);
        let mut rng = rand::rngs::StdRng::seed_from_u64(311);
        let mut stepper = IFocus::new(AlgoConfig::new(100.0, 0.05)).start(&mut groups, &mut rng);
        let wrong_kind = SavedStepper::Scan(SavedScan {
            estimates: vec![0.0; 2],
            samples: vec![0; 2],
            next_group: 0,
        });
        assert!(matches!(
            stepper.restore(&wrong_kind),
            Err(RestoreError::WrongKind {
                expected: "focus",
                ..
            })
        ));
        let mut wrong_shape = stepper.save().unwrap();
        if let SavedStepper::Focus(core) = &mut wrong_shape {
            core.active.push(true);
        }
        assert!(matches!(
            stepper.restore(&wrong_shape),
            Err(RestoreError::LengthMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn algorithm_name_reflects_resolution() {
        use crate::runner::OrderingAlgorithm;
        assert_eq!(IFocus::new(AlgoConfig::new(1.0, 0.05)).name(), "ifocus");
        assert_eq!(
            IFocus::new(AlgoConfig::new(1.0, 0.05).with_resolution(0.01)).name(),
            "ifocusr"
        );
    }
}
