//! Injectable time source for wall-clock budgets.
//!
//! Session deadlines and timeouts compare "now" against an [`Instant`]
//! captured at planning time. Reading `Instant::now()` directly would make
//! those comparisons unrepeatable — a deterministic simulation could never
//! replay a deadline tripping between two specific rounds. [`Clock`]
//! abstracts the read: production code uses [`SystemClock`] (the default,
//! zero-cost), tests and the simulation harness use [`SimulatedClock`] and
//! advance time explicitly, so a deadline passing *between* quanta is a
//! scriptable, replayable event rather than a race.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A source of "now". Implementations must be cheap to query — budget
/// checks read the clock before every round.
pub trait Clock: fmt::Debug + Send + Sync {
    /// The current instant according to this clock.
    fn now(&self) -> Instant;
}

/// The real wall clock: [`Instant::now`]. Stateless and free to copy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A manually advanced clock for deterministic tests and simulation.
///
/// Reports a fixed base instant (captured at construction) plus an offset
/// that only moves when [`SimulatedClock::advance`] /
/// [`SimulatedClock::set_elapsed`] are called — time never passes on its
/// own. Clones share the same offset, so the clock handed to a query
/// builder and the one held by the test driver stay in lockstep.
///
/// ```
/// use rapidviz_core::clock::{Clock, SimulatedClock};
/// use std::time::Duration;
///
/// let clock = SimulatedClock::new();
/// let t0 = clock.now();
/// clock.advance(Duration::from_secs(5));
/// assert_eq!(clock.now() - t0, Duration::from_secs(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimulatedClock {
    inner: Arc<SimulatedClockInner>,
}

#[derive(Debug)]
struct SimulatedClockInner {
    base: Instant,
    offset: Mutex<Duration>,
}

impl Default for SimulatedClockInner {
    fn default() -> Self {
        Self {
            base: Instant::now(),
            offset: Mutex::new(Duration::ZERO),
        }
    }
}

impl SimulatedClock {
    /// A fresh clock at elapsed time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        let mut offset = self.lock_offset();
        *offset += delta;
    }

    /// Sets the elapsed time since construction to exactly `elapsed`.
    /// Unlike [`SimulatedClock::advance`] this can move time backwards —
    /// replay drivers use it to pin each step to a recorded timestamp.
    pub fn set_elapsed(&self, elapsed: Duration) {
        let mut offset = self.lock_offset();
        *offset = elapsed;
    }

    /// The elapsed time since construction.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        *self.lock_offset()
    }

    fn lock_offset(&self) -> std::sync::MutexGuard<'_, Duration> {
        // A poisoned offset is still a valid Duration; recover it.
        self.inner
            .offset
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Clock for SimulatedClock {
    fn now(&self) -> Instant {
        self.inner.base + *self.lock_offset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_moves_forward() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn simulated_clock_only_moves_when_told() {
        let clock = SimulatedClock::new();
        let t0 = clock.now();
        assert_eq!(clock.now(), t0);
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now() - t0, Duration::from_millis(250));
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.elapsed(), Duration::from_millis(500));
    }

    #[test]
    fn clones_share_the_offset() {
        let clock = SimulatedClock::new();
        let peer = clock.clone();
        clock.advance(Duration::from_secs(1));
        assert_eq!(peer.elapsed(), Duration::from_secs(1));
        peer.set_elapsed(Duration::from_millis(10));
        assert_eq!(clock.elapsed(), Duration::from_millis(10));
    }

    #[test]
    fn set_elapsed_can_rewind() {
        let clock = SimulatedClock::new();
        clock.advance(Duration::from_secs(9));
        clock.set_elapsed(Duration::from_secs(2));
        assert_eq!(clock.elapsed(), Duration::from_secs(2));
    }
}
