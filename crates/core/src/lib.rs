//! # rapidviz-core
//!
//! The paper's primary contribution: query-processing algorithms that return
//! per-group aggregate estimates whose **ordering** matches the true
//! ordering with probability `1 − δ`, while sampling as little as possible.
//!
//! ## Algorithms
//!
//! * [`ifocus::IFocus`] — Algorithm 1. One extra sample per *active* group
//!   per round; a group deactivates when its anytime confidence interval no
//!   longer overlaps any other active group's. Provably correct
//!   (Theorem 3.5) and sample-optimal up to an additive `log log(1/η)` term
//!   (Theorems 3.6 & 3.8). The resolution relaxation (`IFOCUS-R`,
//!   Problem 2) is the same struct with [`config::AlgoConfig::resolution`]
//!   set: sampling stops once `ε_m < r/4`.
//! * [`irefine::IRefine`] — Algorithm 3. Halves every active group's
//!   confidence interval per phase using fresh Chernoff–Hoeffding estimates
//!   (Algorithm 2); simpler but suboptimal by a `log(1/η)` factor
//!   (Theorem 3.10).
//! * [`roundrobin::RoundRobin`] — the baseline: conventional round-robin
//!   stratified sampling instrumented with the same confidence machinery so
//!   it stops with the same guarantee.
//! * [`scan::ExactScan`] — exhaustive read; exact answer, zero risk,
//!   maximal cost.
//!
//! All four implement [`runner::OrderingAlgorithm`] over any collection of
//! [`group::GroupSource`]s, so the experiment harness can swap them freely.
//!
//! ## Extensions (§6)
//!
//! The [`extensions`] module implements every variant the paper describes:
//! trend-line / choropleth adjacency ordering, top-t, allowed mistakes,
//! value accuracy, partial results, `SUM` (known and unknown group sizes),
//! `COUNT`, multiple aggregates, and the no-index setting. Selection
//! predicates and multiple group-bys are handled in the storage layer
//! (`rapidviz-needletail`) since they only change which rows are eligible.
//!
//! ## Instrumentation
//!
//! Runs can record a per-round [`trace::Trace`] (reproducing the paper's
//! Table 1) and a sampled [`history::History`] of active-set size and
//! estimate snapshots (reproducing Figures 5c and 6a).

// `deny` rather than `forbid`: the persistent worker pool (`pool`, built
// only under the `parallel` feature) contains one vetted lifetime-erasure
// `unsafe` — the same scoped-task pattern rayon and crossbeam use — and
// carries a module-local `allow` with its safety argument.
// The algorithms walk several parallel per-group arrays (estimates, active
// flags, samplers) by index; iterator zips would obscure the pseudocode
// correspondence that this crate deliberately mirrors.
#![allow(clippy::needless_range_loop)]

pub mod clock;
pub mod config;
pub mod extensions;
pub mod group;
pub mod history;
pub mod ifocus;
pub mod irefine;
pub mod ordering;
#[cfg(feature = "parallel")]
mod pool;
pub mod result;
pub mod roundrobin;
pub mod runner;
pub mod saved;
pub mod scan;
mod state;
pub mod trace;
pub mod viz;

pub use clock::{Clock, SimulatedClock, SystemClock};
pub use config::{AlgoConfig, ReactivationPolicy};
pub use group::GroupSource;
pub use history::{History, HistoryPoint};
pub use ifocus::{IFocus, IFocusStepper};
pub use irefine::{IRefine, IRefineStepper};
pub use ordering::{
    count_incorrect_pairs, fraction_correct_pairs, is_correctly_ordered,
    is_correctly_ordered_with_resolution, is_top_t_correct, is_trend_correct,
};
pub use result::RunResult;
pub use roundrobin::{RoundRobin, RoundRobinStepper};
pub use runner::{AlgorithmStepper, OneShotStepper, OrderingAlgorithm, Snapshot, StepOutcome};
pub use saved::{
    RestoreError, SavedFocusCore, SavedIRefine, SavedPartial, SavedScan, SavedStepper, SavedSum2,
};
pub use scan::{ExactScan, ScanStepper};
pub use trace::{Trace, TraceRow};

// Re-export the sampling-mode enum so downstream users configure algorithms
// without importing rapidviz-stats directly.
pub use rapidviz_stats::SamplingMode;
