//! Shared round-loop state for the focused sampling algorithms.
//!
//! IFOCUS, ROUNDROBIN, and every §6 extension share the same bookkeeping:
//! per-group running means, the global round counter `m`, the anytime ε,
//! active flags, frozen intervals for deactivated groups, and trace/history
//! recording. [`FocusState`] centralizes it; the algorithms differ only in
//! *who gets sampled* each round and *when groups deactivate*.

use crate::config::{AlgoConfig, ReactivationPolicy};
use crate::group::GroupSource;
use crate::history::{History, HistoryPoint};
use crate::result::RunResult;
use crate::runner::Snapshot;
use crate::saved::{check_len, RestoreError, SavedFocusCore};
use crate::trace::{Trace, TraceRow};
use rand::RngCore;
use rapidviz_stats::{EpsilonSchedule, Interval, IntervalSetScratch, RunningMean};

/// Reusable buffers for the deactivation fixpoint: the active-member index
/// list, the interval set, and the per-iteration removal list are all
/// rebuilt in place, so a warmed scratch makes the whole fixpoint
/// allocation-free (the same arena discipline as the samplers'
/// `BatchScratch`). Shared by [`FocusState`], the SUM-scaled variant, and
/// the unknown-size SUM/COUNT stepper.
#[derive(Debug, Clone, Default)]
pub(crate) struct FixpointScratch {
    /// Indices of currently active groups, rebuilt per iteration.
    members: Vec<usize>,
    /// Their confidence intervals, positionally aligned with `members`.
    set: IntervalSetScratch,
    /// Members that separated this iteration.
    pub(crate) remove: Vec<usize>,
}

impl FixpointScratch {
    /// One fixpoint iteration: rebuilds the member list and interval set
    /// from `active`, filling `remove` with every member whose interval is
    /// disjoint from all other members'. Returns `false` when the fixpoint
    /// is reached (no members, or nothing separated); callers loop while
    /// it returns `true`, deactivating `remove` between iterations.
    pub(crate) fn separate(
        &mut self,
        active: &[bool],
        interval_of: impl Fn(usize) -> Interval,
    ) -> bool {
        self.members.clear();
        self.members
            .extend((0..active.len()).filter(|&i| active[i]));
        if self.members.is_empty() {
            return false;
        }
        self.set.begin();
        for &i in &self.members {
            self.set.push(interval_of(i));
        }
        self.set.build();
        self.remove.clear();
        for (pos, &i) in self.members.iter().enumerate() {
            if !self.set.member_overlaps_others(pos) {
                self.remove.push(i);
            }
        }
        !self.remove.is_empty()
    }

    /// Rebuilds the interval set over **all** `k` groups (the reactivation
    /// policy (b) test, which probes every group rather than iterating a
    /// fixpoint over the active subset).
    pub(crate) fn build_full(&mut self, k: usize, interval_of: impl Fn(usize) -> Interval) {
        self.set.begin();
        for i in 0..k {
            self.set.push(interval_of(i));
        }
        self.set.build();
    }

    /// Whether member `i` (an index into the `build_full` ordering)
    /// overlaps any other member.
    pub(crate) fn full_overlaps_others(&self, i: usize) -> bool {
        self.set.member_overlaps_others(i)
    }

    /// Approximate resident bytes of the retained fixpoint buffers.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.members.capacity() * size_of::<usize>()
            + self.remove.capacity() * size_of::<usize>()
            + self.set.approx_bytes()
    }
}

/// Round-loop state over `k` groups.
#[derive(Debug)]
pub(crate) struct FocusState {
    pub(crate) schedule: EpsilonSchedule,
    pub(crate) config: AlgoConfig,
    pub(crate) labels: Vec<String>,
    pub(crate) sizes: Vec<u64>,
    pub(crate) estimates: Vec<RunningMean>,
    pub(crate) active: Vec<bool>,
    /// Groups whose population is exhausted (without replacement): their
    /// estimate equals the exact group mean and cannot change.
    pub(crate) exhausted: Vec<bool>,
    /// ε at the moment each group deactivated (for frozen trace intervals).
    pub(crate) frozen_eps: Vec<f64>,
    pub(crate) samples: Vec<u64>,
    /// Round counter `m` (samples per still-active group so far).
    pub(crate) m: u64,
    pub(crate) trace: Option<Trace>,
    pub(crate) history: Option<History>,
    pub(crate) truncated: bool,
    /// Reusable buffer for batched draws (avoids a per-round allocation).
    scratch: Vec<f64>,
    /// Reusable round-selection index buffer: the per-round list of groups
    /// to draw from is rebuilt in place here instead of allocating a fresh
    /// `Vec<usize>` every round.
    round_idxs: Vec<usize>,
    /// Reusable deactivation-fixpoint buffers (member list, interval set,
    /// removal list) — zero steady-state allocation per round.
    pub(crate) fix: FixpointScratch,
}

impl FocusState {
    /// Initializes state and performs the first round (one sample from every
    /// group — Algorithm 1 lines 1–3).
    pub(crate) fn initialize<G: GroupSource>(
        config: &AlgoConfig,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let schedule = config.schedule(k);
        let labels = groups.iter().map(GroupSource::label).collect();
        let sizes: Vec<u64> = groups.iter().map(GroupSource::len).collect();
        let mut state = Self {
            schedule,
            config: config.clone(),
            labels,
            sizes,
            estimates: vec![RunningMean::new(); k],
            active: vec![true; k],
            exhausted: vec![false; k],
            frozen_eps: vec![f64::INFINITY; k],
            samples: vec![0; k],
            m: 1,
            trace: config.record_trace.then(Trace::new),
            history: (config.history_every > 0).then(History::new),
            truncated: false,
            scratch: Vec::new(),
            round_idxs: Vec::new(),
            fix: FixpointScratch::default(),
        };
        for (i, group) in groups.iter_mut().enumerate() {
            state.draw(i, group, rng);
        }
        state
    }

    /// Number of groups.
    pub(crate) fn k(&self) -> usize {
        self.active.len()
    }

    /// Draws one sample from group `i` into its running mean; marks the
    /// group exhausted when a without-replacement source runs dry.
    pub(crate) fn draw<G: GroupSource>(&mut self, i: usize, group: &mut G, rng: &mut dyn RngCore) {
        match group.sample(rng, self.config.mode) {
            Some(x) => {
                self.estimates[i].push(x);
                self.samples[i] += 1;
            }
            None => {
                self.exhausted[i] = true;
            }
        }
    }

    /// Draws a batch of `n` samples from group `i` through its
    /// [`GroupSource::draw_batch`] hook (one call instead of `n`); marks the
    /// group exhausted when the source comes up short. Identical in effect
    /// and RNG consumption to `n` repeated [`Self::draw`] calls.
    pub(crate) fn draw_batch<G: GroupSource>(
        &mut self,
        i: usize,
        group: &mut G,
        rng: &mut dyn RngCore,
        n: u64,
    ) {
        self.scratch.clear();
        let got = group.draw_batch(n, rng, self.config.mode, &mut self.scratch);
        self.estimates[i].push_batch(&self.scratch);
        self.samples[i] += got;
        if got < n {
            self.exhausted[i] = true;
        }
    }

    /// Draws this round's batch from every group the selection admits,
    /// reusing the state's round-index scratch buffer instead of
    /// allocating a fresh index vector per round (the IFOCUS / ROUNDROBIN
    /// / partial-results hot loops all come through here).
    ///
    /// With `include_inactive` false only active, unexhausted groups draw
    /// (IFOCUS semantics); with it true every unexhausted group draws
    /// (ROUNDROBIN semantics).
    pub(crate) fn draw_round_selected<G: GroupSource + crate::group::MaybeSend>(
        &mut self,
        include_inactive: bool,
        groups: &mut [G],
        rng: &mut dyn RngCore,
        batch: u64,
    ) {
        let mut idxs = std::mem::take(&mut self.round_idxs);
        idxs.clear();
        idxs.extend(
            (0..self.k()).filter(|&i| (include_inactive || self.active[i]) && !self.exhausted[i]),
        );
        self.draw_round(&idxs, groups, rng, batch);
        self.round_idxs = idxs;
    }

    /// Draws this round's batch from every group selected by `idxs`
    /// (indices must be ascending). Sequential by default; under the
    /// `parallel` feature, rounds whose total draw count
    /// (`batch × |idxs|`) reaches [`AlgoConfig::parallel_threshold`] fan
    /// the per-group loop out across the persistent worker pool.
    pub(crate) fn draw_round<G: GroupSource + crate::group::MaybeSend>(
        &mut self,
        idxs: &[usize],
        groups: &mut [G],
        rng: &mut dyn RngCore,
        batch: u64,
    ) {
        #[cfg(feature = "parallel")]
        if idxs.len() > 1
            && batch.saturating_mul(idxs.len() as u64) >= self.config.parallel_threshold
        {
            self.draw_round_parallel(idxs, groups, rng, batch);
            return;
        }
        for &i in idxs {
            self.draw_batch(i, &mut groups[i], rng, batch);
        }
    }

    /// Parallel per-group draw fan-out (`parallel` feature).
    ///
    /// Each selected group gets an independent RNG stream seeded from the
    /// master RNG **in group order**, so results are deterministic for a
    /// fixed seed regardless of thread scheduling — but the streams differ
    /// from the sequential path's single interleaved stream, so parallel
    /// runs are reproducible against parallel runs, not sequential ones.
    /// The workspace has no rayon (offline build); near-equal chunks are
    /// dispatched onto the persistent [`crate::pool`] worker pool, whose
    /// per-round cost is a channel send rather than a thread spawn.
    #[cfg(feature = "parallel")]
    fn draw_round_parallel<G: GroupSource + Send>(
        &mut self,
        idxs: &[usize],
        groups: &mut [G],
        rng: &mut dyn RngCore,
        batch: u64,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mode = self.config.mode;
        // Disjoint &mut access: walk all groups once, keeping those selected
        // (idxs is ascending), pairing each with its order-derived seed.
        let mut work: Vec<(usize, &mut G, u64)> = Vec::with_capacity(idxs.len());
        let mut next = 0usize;
        for (i, group) in groups.iter_mut().enumerate() {
            if next < idxs.len() && idxs[next] == i {
                work.push((i, group, rng.next_u64()));
                next += 1;
            }
        }
        debug_assert_eq!(work.len(), idxs.len());
        let pool = crate::pool::global();
        let threads = pool.workers().min(work.len());
        let chunk_size = work.len().div_ceil(threads);
        let mut chunks: Vec<Vec<(usize, &mut G, u64)>> = Vec::with_capacity(threads);
        let mut rest = work;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk_size.min(rest.len()));
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        // One output slot per chunk; each task writes only its own slot,
        // and the merge below walks slots in chunk (= group) order, so
        // estimator updates stay deterministic.
        let mut outputs: Vec<Vec<(usize, u64, Vec<f64>)>> =
            chunks.iter().map(|_| Vec::new()).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .zip(outputs.iter_mut())
            .map(|(chunk, out)| {
                Box::new(move || {
                    *out = chunk
                        .into_iter()
                        .map(|(i, group, seed)| {
                            let mut rng = StdRng::seed_from_u64(seed);
                            let mut buf = Vec::with_capacity(batch as usize);
                            let got = group.draw_batch(batch, &mut rng, mode, &mut buf);
                            (i, got, buf)
                        })
                        .collect();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        for (i, got, xs) in outputs.into_iter().flatten() {
            self.estimates[i].push_batch(&xs);
            self.samples[i] += got;
            if got < batch {
                self.exhausted[i] = true;
            }
        }
    }

    /// Largest population among currently active groups (the `N` of the
    /// ε formula); falls back to the global max when nothing is active.
    pub(crate) fn n_max_active(&self) -> u64 {
        let active_max = self
            .sizes
            .iter()
            .zip(&self.active)
            .filter(|(_, &a)| a)
            .map(|(&n, _)| n)
            .max();
        active_max.unwrap_or_else(|| self.sizes.iter().copied().max().unwrap_or(1))
    }

    /// The anytime ε at the current round.
    pub(crate) fn epsilon(&self) -> f64 {
        self.schedule.half_width(self.m, self.n_max_active())
    }

    /// Current confidence interval of group `i`: live ε while active, frozen
    /// ε after deactivation (Table 1 renders both).
    pub(crate) fn interval(&self, i: usize, eps_now: f64) -> Interval {
        let eps = if self.active[i] {
            eps_now
        } else if self.exhausted[i] {
            // Exhausted estimates are exact.
            0.0
        } else {
            // Frozen at deactivation time.
            self.frozen_eps[i]
        };
        Interval::centered(self.estimates[i].mean(), eps)
    }

    /// Deactivates group `i`, freezing its interval at the given ε.
    pub(crate) fn deactivate(&mut self, i: usize, eps_now: f64) {
        if self.active[i] {
            self.active[i] = false;
            self.frozen_eps[i] = eps_now;
        }
    }

    /// Standard IFOCUS deactivation (Algorithm 1 lines 10–12), iterated to a
    /// fixpoint: a group leaves the active set when its interval is disjoint
    /// from the union of the *other active* groups' intervals. Under
    /// [`ReactivationPolicy::Allow`], activity is instead recomputed from
    /// scratch over all non-exhausted groups (§3.1 option (b)).
    ///
    /// Every fixpoint iteration rebuilds its member list and interval set in
    /// the state's reusable [`FixpointScratch`] — zero steady-state heap
    /// allocation (verified by the `alloc_free` integration tests).
    pub(crate) fn standard_deactivation(&mut self) {
        let eps_now = self.epsilon();
        let mut fix = std::mem::take(&mut self.fix);
        match self.config.reactivation {
            ReactivationPolicy::Never => {
                while fix.separate(&self.active, |i| {
                    Interval::centered(self.estimates[i].mean(), eps_now)
                }) {
                    for &i in &fix.remove {
                        self.deactivate(i, eps_now);
                    }
                }
            }
            ReactivationPolicy::Allow => {
                // Recompute overlap among every group (frozen estimates for
                // previously inactive ones, live ε for all).
                fix.build_full(self.k(), |i| {
                    Interval::centered(self.estimates[i].mean(), eps_now)
                });
                for i in 0..self.k() {
                    let overlapping = fix.full_overlaps_others(i);
                    if self.exhausted[i] {
                        // Exhausted estimates cannot improve; keep inactive.
                        self.deactivate(i, eps_now);
                    } else if overlapping {
                        self.active[i] = true;
                    } else {
                        self.deactivate(i, eps_now);
                    }
                }
            }
        }
        self.fix = fix;
    }

    /// Deactivates everything (resolution cut-off or exhaustion).
    pub(crate) fn deactivate_all(&mut self) {
        let eps_now = self.epsilon();
        for i in 0..self.k() {
            self.deactivate(i, eps_now);
        }
    }

    /// Whether the resolution relaxation allows stopping now (`ε_m < r/4`).
    pub(crate) fn resolution_reached(&self) -> bool {
        self.config
            .resolution_epsilon()
            .is_some_and(|thresh| self.epsilon() < thresh)
    }

    /// True when every active group is exhausted — no further sampling can
    /// change any estimate, so the run must stop.
    pub(crate) fn all_active_exhausted(&self) -> bool {
        let mut any_active = false;
        for i in 0..self.k() {
            if self.active[i] {
                any_active = true;
                if !self.exhausted[i] {
                    return false;
                }
            }
        }
        any_active
    }

    /// Any group still active?
    pub(crate) fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }

    /// Count of active groups.
    pub(crate) fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Records trace and history rows for the just-finished round.
    pub(crate) fn record(&mut self) {
        let eps_now = self.epsilon();
        if self.trace.is_some() {
            let row = TraceRow {
                round: self.m,
                intervals: (0..self.k()).map(|i| self.interval(i, eps_now)).collect(),
                active: self.active.clone(),
            };
            if let Some(trace) = &mut self.trace {
                trace.push(row);
            }
        }
        let every = self.config.history_every;
        if every > 0 && (self.m == 1 || self.m.is_multiple_of(every) || !self.any_active()) {
            let point = HistoryPoint {
                round: self.m,
                total_samples: self.samples.iter().sum(),
                active_groups: self.active_count(),
                estimates: self.estimates.iter().map(RunningMean::mean).collect(),
            };
            if let Some(history) = &mut self.history {
                history.push(point);
            }
        }
    }

    /// Total samples drawn so far (cheap; no snapshot allocation).
    pub(crate) fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Approximate resident bytes of the live round-loop state: per-group
    /// estimators, flags, and the reusable scratch arenas. Backs the
    /// steppers' [`crate::runner::AlgorithmStepper::approx_bytes`] memory-
    /// accounting hook without allocating a snapshot. Trace/history
    /// recording (disabled on resumable sessions) is not counted.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.labels.capacity() * size_of::<String>()
            + self.labels.iter().map(String::capacity).sum::<usize>()
            + self.sizes.capacity() * size_of::<u64>()
            + self.estimates.capacity() * size_of::<RunningMean>()
            + self.active.capacity() * size_of::<bool>()
            + self.exhausted.capacity() * size_of::<bool>()
            + self.frozen_eps.capacity() * size_of::<f64>()
            + self.samples.capacity() * size_of::<u64>()
            + self.scratch.capacity() * size_of::<f64>()
            + self.round_idxs.capacity() * size_of::<usize>()
            + self.fix.approx_bytes()
    }

    /// A point-in-time view for the resumable stepping API: estimates,
    /// intervals (live ε for active groups, frozen for certified ones),
    /// active flags, and sample counts.
    pub(crate) fn snapshot(&self) -> Snapshot {
        let eps_now = self.epsilon();
        Snapshot {
            labels: self.labels.clone(),
            estimates: self.estimates.iter().map(RunningMean::mean).collect(),
            intervals: (0..self.k()).map(|i| self.interval(i, eps_now)).collect(),
            active: self.active.clone(),
            samples_per_group: self.samples.clone(),
            rounds: self.m,
            truncated: self.truncated,
        }
    }

    /// Captures the mutable round-loop state for a session checkpoint.
    /// Derived state (labels, sizes, config, ε schedule) and scratch
    /// arenas are excluded — resume re-derives them by re-planning.
    pub(crate) fn save_core(&self) -> SavedFocusCore {
        SavedFocusCore {
            estimates: self
                .estimates
                .iter()
                .map(|e| (e.count(), e.mean()))
                .collect(),
            active: self.active.clone(),
            exhausted: self.exhausted.clone(),
            frozen_eps: self.frozen_eps.clone(),
            samples: self.samples.clone(),
            m: self.m,
            truncated: self.truncated,
        }
    }

    /// Overwrites the mutable round-loop state from a checkpoint taken by
    /// [`Self::save_core`]. The state must have been freshly initialized
    /// for the *same* query (same group count); shape mismatches return a
    /// structured error and leave the state untouched.
    pub(crate) fn restore_core(&mut self, saved: &SavedFocusCore) -> Result<(), RestoreError> {
        let k = self.k();
        check_len(k, &saved.estimates)?;
        check_len(k, &saved.active)?;
        check_len(k, &saved.exhausted)?;
        check_len(k, &saved.frozen_eps)?;
        check_len(k, &saved.samples)?;
        for (est, &(count, mean)) in self.estimates.iter_mut().zip(&saved.estimates) {
            *est = RunningMean::from_parts(count, mean);
        }
        self.active.copy_from_slice(&saved.active);
        self.exhausted.copy_from_slice(&saved.exhausted);
        self.frozen_eps.copy_from_slice(&saved.frozen_eps);
        self.samples.copy_from_slice(&saved.samples);
        self.m = saved.m;
        self.truncated = saved.truncated;
        Ok(())
    }

    /// Packages the final result.
    pub(crate) fn finish(self) -> RunResult {
        RunResult {
            labels: self.labels,
            estimates: self.estimates.iter().map(RunningMean::mean).collect(),
            samples_per_group: self.samples,
            rounds: self.m,
            trace: self.trace,
            history: self.history,
            truncated: self.truncated,
        }
    }
}
