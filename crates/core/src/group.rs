//! The group abstraction the algorithms sample from.
//!
//! A [`GroupSource`] is "one bar of the chart": it knows its population size
//! `n_i` and can produce random members. The algorithms never see raw
//! storage — NEEDLETAIL handles, materialized vectors, and lazily generated
//! virtual groups (for `10^10`-record sweeps) all implement this trait.

use rand::RngCore;
use rapidviz_stats::SamplingMode;

/// Marker bound that equals `Send` when the `parallel` feature is on and is
/// satisfied by every type otherwise. The algorithms bound their group type
/// on it so the parallel draw fan-out can move groups across threads
/// without imposing `Send` on single-threaded builds.
#[cfg(feature = "parallel")]
pub trait MaybeSend: Send {}
#[cfg(feature = "parallel")]
impl<T: Send + ?Sized> MaybeSend for T {}

/// Marker bound that equals `Send` when the `parallel` feature is on and is
/// satisfied by every type otherwise.
#[cfg(not(feature = "parallel"))]
pub trait MaybeSend {}
#[cfg(not(feature = "parallel"))]
impl<T: ?Sized> MaybeSend for T {}

/// A sampleable group `S_i` of bounded values.
///
/// The `rng` parameter is `dyn` so implementations stay object-safe; rand's
/// blanket `Rng for &mut dyn RngCore` extension keeps call sites ergonomic.
pub trait GroupSource {
    /// Display label for the group (the group-by value).
    fn label(&self) -> String;

    /// Population size `n_i`.
    ///
    /// Used by the without-replacement confidence schedule and as the
    /// exhaustion bound. Virtual groups report their *virtual* size.
    fn len(&self) -> u64;

    /// Whether the group has no members.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws one sample.
    ///
    /// * [`SamplingMode::WithReplacement`]: i.i.d. uniform member.
    /// * [`SamplingMode::WithoutReplacement`]: next element of a uniformly
    ///   random permutation; `None` once all `n_i` members are drawn.
    fn sample(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<f64>;

    /// Draws up to `n` samples in one call, appending them to `out` in draw
    /// order; returns the number appended (`< n` only when a
    /// without-replacement source runs dry mid-batch).
    ///
    /// The default implementation loops [`Self::sample`], so every source
    /// is batch-capable with unchanged semantics. Sources backed by
    /// rank/select storage (e.g. the NEEDLETAIL adapter) override this to
    /// resolve the whole batch through one sorted `select_many` sweep —
    /// the hot-path optimization the per-round draw loops rely on.
    /// Overrides **must** consume the RNG identically to `n` single draws
    /// so that batch size never changes a fixed-seed run's output.
    fn draw_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        mode: SamplingMode,
        out: &mut Vec<f64>,
    ) -> u64 {
        let mut got = 0;
        for _ in 0..n {
            match self.sample(rng, mode) {
                Some(x) => {
                    out.push(x);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// The true mean `µ_i`, when the source knows it (synthetic data,
    /// materialized groups). Only used for *evaluation* — algorithms must
    /// never consult it.
    fn true_mean(&self) -> Option<f64> {
        None
    }

    /// Resets any without-replacement state, starting a fresh permutation.
    fn reset(&mut self);
}

/// A group backed by a materialized `Vec<f64>` — the simplest
/// [`GroupSource`], used by tests, examples, and small benchmarks.
#[derive(Debug, Clone)]
pub struct VecGroup {
    label: String,
    values: Vec<f64>,
    true_mean: f64,
    /// Without-replacement cursor: `values[..drawn]` have been produced.
    drawn: usize,
}

impl VecGroup {
    /// Creates a group from its member values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "a group must have at least one member");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "group values must not be NaN"
        );
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        Self {
            label: label.into(),
            values,
            true_mean,
            drawn: 0,
        }
    }

    /// The member values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl GroupSource for VecGroup {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn len(&self) -> u64 {
        self.values.len() as u64
    }

    fn sample(&mut self, rng: &mut dyn RngCore, mode: SamplingMode) -> Option<f64> {
        use rand::Rng;
        match mode {
            SamplingMode::WithReplacement => {
                let i = rng.gen_range(0..self.values.len());
                Some(self.values[i])
            }
            SamplingMode::WithoutReplacement => {
                if self.drawn == self.values.len() {
                    return None;
                }
                // Incremental Fisher–Yates: uniformly pick among the
                // not-yet-drawn suffix and swap it into position `drawn`.
                let j = rng.gen_range(self.drawn..self.values.len());
                self.values.swap(self.drawn, j);
                let v = self.values[self.drawn];
                self.drawn += 1;
                Some(v)
            }
        }
    }

    fn true_mean(&self) -> Option<f64> {
        Some(self.true_mean)
    }

    fn reset(&mut self) {
        self.drawn = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_group_true_mean() {
        let g = VecGroup::new("g", vec![1.0, 2.0, 3.0]);
        assert_eq!(g.true_mean(), Some(2.0));
        assert_eq!(g.len(), 3);
        assert_eq!(g.label(), "g");
        assert!(!g.is_empty());
    }

    #[test]
    fn without_replacement_exhausts_exactly() {
        let mut g = VecGroup::new("g", vec![1.0, 2.0, 3.0, 4.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut out = Vec::new();
        while let Some(v) = g.sample(&mut rng, SamplingMode::WithoutReplacement) {
            out.push(v);
        }
        out.sort_by(f64::total_cmp);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reset_allows_resampling() {
        let mut g = VecGroup::new("g", vec![1.0, 2.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = g.sample(&mut rng, SamplingMode::WithoutReplacement);
        let _ = g.sample(&mut rng, SamplingMode::WithoutReplacement);
        assert!(g
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_none());
        g.reset();
        assert!(g
            .sample(&mut rng, SamplingMode::WithoutReplacement)
            .is_some());
    }

    #[test]
    fn with_replacement_never_exhausts() {
        let mut g = VecGroup::new("g", vec![5.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng, SamplingMode::WithReplacement), Some(5.0));
        }
    }

    #[test]
    fn with_replacement_mean_converges() {
        let mut g = VecGroup::new("g", vec![0.0, 10.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.sample(&mut rng, SamplingMode::WithReplacement).unwrap();
        }
        let mean = sum / f64::from(n);
        assert!((mean - 5.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn draw_batch_default_matches_repeated_sample() {
        for mode in [
            SamplingMode::WithReplacement,
            SamplingMode::WithoutReplacement,
        ] {
            let values: Vec<f64> = (0..40).map(f64::from).collect();
            let mut g1 = VecGroup::new("g", values.clone());
            let mut g2 = g1.clone();
            let mut rng1 = rand::rngs::StdRng::seed_from_u64(7);
            let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
            let singles: Vec<f64> = (0..25).filter_map(|_| g1.sample(&mut rng1, mode)).collect();
            let mut batched = Vec::new();
            let got = g2.draw_batch(25, &mut rng2, mode, &mut batched);
            assert_eq!(got, 25);
            assert_eq!(batched, singles, "mode {mode:?}");
        }
    }

    #[test]
    fn draw_batch_truncates_at_exhaustion() {
        let mut g = VecGroup::new("g", vec![1.0, 2.0, 3.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut out = Vec::new();
        let got = g.draw_batch(10, &mut rng, SamplingMode::WithoutReplacement, &mut out);
        assert_eq!(got, 3);
        out.sort_by(f64::total_cmp);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        assert_eq!(
            g.draw_batch(5, &mut rng, SamplingMode::WithoutReplacement, &mut out),
            0
        );
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn rejects_empty() {
        let _ = VecGroup::new("g", vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = VecGroup::new("g", vec![f64::NAN]);
    }
}
