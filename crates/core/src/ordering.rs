//! Ordering verifiers for every correctness notion in the paper.
//!
//! These functions compare returned estimates `ν` against true means `µ`
//! under the various correctness definitions (Problems 1–5) and are used by
//! the test suite and by the accuracy experiments (Figures 5a/5b, §5's
//! "accuracy" metric).

/// A pair `(i, j)` is *ordered correctly* when `sign(ν_i − ν_j)` matches
/// `sign(µ_i − µ_j)`; ties in the true means accept either estimate order.
fn pair_correct(estimates: &[f64], truths: &[f64], i: usize, j: usize) -> bool {
    let dt = truths[i] - truths[j];
    if dt == 0.0 {
        return true;
    }
    let de = estimates[i] - estimates[j];
    // Equal estimates cannot express a strict true ordering.
    de != 0.0 && (de > 0.0) == (dt > 0.0)
}

/// Problem 1 correctness: every pair ordered correctly.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn is_correctly_ordered(estimates: &[f64], truths: &[f64]) -> bool {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    let k = truths.len();
    (0..k).all(|i| (i + 1..k).all(|j| pair_correct(estimates, truths, i, j)))
}

/// Problem 2 correctness: pairs with `|µ_i − µ_j| ≤ r` are exempt; all other
/// pairs must be ordered correctly.
///
/// # Panics
///
/// Panics if the slices differ in length or `r < 0`.
#[must_use]
pub fn is_correctly_ordered_with_resolution(estimates: &[f64], truths: &[f64], r: f64) -> bool {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    assert!(r >= 0.0, "resolution must be non-negative");
    let k = truths.len();
    (0..k).all(|i| {
        (i + 1..k)
            .all(|j| (truths[i] - truths[j]).abs() <= r || pair_correct(estimates, truths, i, j))
    })
}

/// Number of incorrectly ordered pairs (the Figure 6a series).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn count_incorrect_pairs(estimates: &[f64], truths: &[f64]) -> u64 {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    let k = truths.len();
    let mut bad = 0;
    for i in 0..k {
        for j in i + 1..k {
            if !pair_correct(estimates, truths, i, j) {
                bad += 1;
            }
        }
    }
    bad
}

/// Fraction of pairs ordered correctly (Problem 5's γ criterion).
/// Returns 1.0 when there are fewer than two groups.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn fraction_correct_pairs(estimates: &[f64], truths: &[f64]) -> f64 {
    let k = truths.len();
    if k < 2 {
        return 1.0;
    }
    let total = (k * (k - 1) / 2) as f64;
    1.0 - count_incorrect_pairs(estimates, truths) as f64 / total
}

/// Problem 3 (trends/choropleths) correctness: only *adjacent* pairs
/// `(i, i+1)` need to be ordered correctly, optionally exempting pairs
/// closer than `r`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn is_trend_correct(estimates: &[f64], truths: &[f64], r: f64) -> bool {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    (1..truths.len()).all(|i| {
        (truths[i - 1] - truths[i]).abs() <= r || pair_correct(estimates, truths, i - 1, i)
    })
}

/// Problem 4 (top-t) correctness: the `t` groups with the largest estimates
/// are exactly the `t` groups with the largest true means, and they are
/// ordered correctly among themselves. Pairs of true means within `r` are
/// exempt from both requirements.
///
/// # Panics
///
/// Panics if the slices differ in length or `t > k`.
#[must_use]
pub fn is_top_t_correct(estimates: &[f64], truths: &[f64], t: usize, r: f64) -> bool {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    let k = truths.len();
    assert!(t <= k, "t cannot exceed the number of groups");
    if t == 0 {
        return true;
    }
    let mut by_est: Vec<usize> = (0..k).collect();
    by_est.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]));
    let mut by_truth: Vec<usize> = (0..k).collect();
    by_truth.sort_by(|&a, &b| truths[b].total_cmp(&truths[a]));
    let claimed = &by_est[..t];
    let actual = &by_truth[..t];
    // Membership: a claimed group not in the true top-t is forgiven only if
    // its true mean is within r of the t-th true mean (boundary blur).
    let threshold = truths[actual[t - 1]];
    for &g in claimed {
        if !actual.contains(&g) && (truths[g] - threshold).abs() > r {
            return false;
        }
    }
    // Internal ordering among the claimed groups.
    for (a_pos, &a) in claimed.iter().enumerate() {
        for &b in &claimed[a_pos + 1..] {
            if (truths[a] - truths[b]).abs() <= r {
                continue;
            }
            if !pair_correct(estimates, truths, a, b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_order() {
        assert!(is_correctly_ordered(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]));
        assert!(!is_correctly_ordered(&[2.0, 1.0, 3.0], &[10.0, 20.0, 30.0]));
    }

    #[test]
    fn ties_in_truth_accept_any_order() {
        assert!(is_correctly_ordered(&[2.0, 1.0], &[5.0, 5.0]));
        assert!(is_correctly_ordered(&[1.0, 2.0], &[5.0, 5.0]));
    }

    #[test]
    fn tied_estimates_cannot_express_strict_order() {
        assert!(!is_correctly_ordered(&[1.0, 1.0], &[5.0, 6.0]));
    }

    #[test]
    fn resolution_exempts_close_pairs() {
        let truths = [10.0, 10.5, 30.0];
        let est_swapped_close = [2.0, 1.0, 9.0];
        assert!(!is_correctly_ordered(&est_swapped_close, &truths));
        assert!(is_correctly_ordered_with_resolution(
            &est_swapped_close,
            &truths,
            1.0
        ));
        // A far pair swapped is still wrong even with resolution.
        let est_swapped_far = [9.0, 1.0, 2.0];
        assert!(!is_correctly_ordered_with_resolution(
            &est_swapped_far,
            &truths,
            1.0
        ));
    }

    #[test]
    fn incorrect_pair_counting() {
        let truths = [1.0, 2.0, 3.0];
        assert_eq!(count_incorrect_pairs(&[1.0, 2.0, 3.0], &truths), 0);
        assert_eq!(count_incorrect_pairs(&[2.0, 1.0, 3.0], &truths), 1);
        assert_eq!(count_incorrect_pairs(&[3.0, 2.0, 1.0], &truths), 3);
    }

    #[test]
    fn fraction_correct() {
        let truths = [1.0, 2.0, 3.0];
        assert_eq!(fraction_correct_pairs(&[3.0, 2.0, 1.0], &truths), 0.0);
        assert_eq!(fraction_correct_pairs(&[1.0, 2.0, 3.0], &truths), 1.0);
        assert!((fraction_correct_pairs(&[2.0, 1.0, 3.0], &truths) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(fraction_correct_pairs(&[], &[]), 1.0);
        assert_eq!(fraction_correct_pairs(&[1.0], &[9.0]), 1.0);
    }

    #[test]
    fn trend_checks_only_neighbors() {
        let truths = [1.0, 5.0, 3.0, 8.0];
        // Estimates preserve every adjacent comparison but swap the
        // non-adjacent pair (0, 2).
        let est = [3.5, 5.0, 3.4, 8.0];
        assert!(is_trend_correct(&est, &truths, 0.0));
        assert!(!is_correctly_ordered(&est, &truths));
        // Break an adjacent pair.
        let bad = [5.5, 5.0, 3.4, 8.0];
        assert!(!is_trend_correct(&bad, &truths, 0.0));
        // ...unless the pair is within resolution.
        assert!(is_trend_correct(&bad, &truths, 4.1));
    }

    #[test]
    fn top_t_membership_and_order() {
        let truths = [10.0, 40.0, 30.0, 20.0];
        // True top-2 = groups 1 (40) and 2 (30).
        let good = [1.0, 9.0, 8.0, 2.0];
        assert!(is_top_t_correct(&good, &truths, 2, 0.0));
        // Wrong membership: claims group 3 in top-2.
        let wrong_member = [1.0, 9.0, 2.0, 8.0];
        assert!(!is_top_t_correct(&wrong_member, &truths, 2, 0.0));
        // Right membership, wrong internal order.
        let wrong_order = [1.0, 8.0, 9.0, 2.0];
        assert!(!is_top_t_correct(&wrong_order, &truths, 2, 0.0));
        // Forgiven when the swapped pair is within resolution.
        assert!(is_top_t_correct(&wrong_order, &truths, 2, 10.0));
        // t = 0 and t = k degenerate cases.
        assert!(is_top_t_correct(&good, &truths, 0, 0.0));
        assert!(is_top_t_correct(&[1.0, 4.0, 3.0, 2.0], &truths, 4, 0.0));
    }

    #[test]
    fn top_t_boundary_blur() {
        // 2nd and 3rd true means within r: membership swap is forgiven.
        let truths = [10.0, 40.0, 30.0, 29.9];
        let swapped_boundary = [1.0, 9.0, 2.0, 8.0];
        assert!(!is_top_t_correct(&swapped_boundary, &truths, 2, 0.0));
        assert!(is_top_t_correct(&swapped_boundary, &truths, 2, 0.5));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = is_correctly_ordered(&[1.0], &[1.0, 2.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The identity assignment is always correct.
        #[test]
        fn identity_always_correct(truths in proptest::collection::vec(-100f64..100.0, 2..20)) {
            prop_assert!(is_correctly_ordered(&truths, &truths));
            prop_assert_eq!(count_incorrect_pairs(&truths, &truths), 0);
            prop_assert!(is_trend_correct(&truths, &truths, 0.0));
            prop_assert!(is_top_t_correct(&truths, &truths, truths.len() / 2, 0.0));
        }

        /// Any monotone transform of the truths is correct.
        #[test]
        fn monotone_transform_correct(truths in proptest::collection::vec(-100f64..100.0, 2..20)) {
            let est: Vec<f64> = truths.iter().map(|t| t * 3.0 + 7.0).collect();
            prop_assert!(is_correctly_ordered(&est, &truths));
        }

        /// Resolution relaxation is monotone: if correct at r, correct at r' > r.
        #[test]
        fn resolution_monotone(
            truths in proptest::collection::vec(-100f64..100.0, 2..12),
            noise in proptest::collection::vec(-5f64..5.0, 2..12),
            r in 0f64..10.0,
        ) {
            let n = truths.len().min(noise.len());
            let est: Vec<f64> = truths[..n]
                .iter()
                .zip(&noise[..n])
                .map(|(t, e)| t + e)
                .collect();
            if is_correctly_ordered_with_resolution(&est, &truths[..n], r) {
                prop_assert!(is_correctly_ordered_with_resolution(&est, &truths[..n], r * 2.0));
            }
        }

        /// Full correctness implies trend and top-t correctness.
        #[test]
        fn full_implies_weaker(
            truths in proptest::collection::vec(-100f64..100.0, 2..12),
            noise in proptest::collection::vec(-0.001f64..0.001, 2..12),
        ) {
            let n = truths.len().min(noise.len());
            let est: Vec<f64> = truths[..n]
                .iter()
                .zip(&noise[..n])
                .map(|(t, e)| t + e)
                .collect();
            if is_correctly_ordered(&est, &truths[..n]) {
                prop_assert!(is_trend_correct(&est, &truths[..n], 0.0));
                for t in 0..=n {
                    prop_assert!(is_top_t_correct(&est, &truths[..n], t, 0.0));
                }
            }
        }
    }
}
