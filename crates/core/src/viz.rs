//! Terminal rendering of approximate visualizations.
//!
//! The end product of every algorithm here is a *visualization* — so the
//! crate can draw one. These renderers are deliberately plain text (no
//! dependencies) and are used by the examples and the experiment harness:
//!
//! * [`bar_chart`] — Figure-1-style horizontal bars from `(label, value)`
//!   pairs.
//! * [`bar_chart_with_intervals`] — Figure-2-style bars with confidence
//!   whiskers, for intermediate states.
//! * [`sparkline`] — a one-line trend rendering with Unicode block glyphs.

use rapidviz_stats::Interval;

/// Renders a horizontal bar chart. `width` is the maximum bar width in
/// characters; values are scaled so the largest fills it. Negative values
/// render as empty bars (the paper's setting assumes `[0, c]`).
///
/// # Panics
///
/// Panics if `labels` and `values` lengths differ or `width == 0`.
#[must_use]
pub fn bar_chart(labels: &[&str], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "length mismatch");
    assert!(width > 0, "width must be positive");
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let label_width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, &value) in labels.iter().zip(values) {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round().max(0.0) as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:>label_width$} | {} {value:.2}\n",
            "█".repeat(bar_len)
        ));
    }
    out
}

/// Renders bars with confidence whiskers: the bar reaches the estimate,
/// and `[` / `]` mark the interval endpoints on the same scale.
///
/// # Panics
///
/// Panics if `labels` and `intervals` lengths differ or `width == 0`.
#[must_use]
pub fn bar_chart_with_intervals(labels: &[&str], intervals: &[Interval], width: usize) -> String {
    assert_eq!(labels.len(), intervals.len(), "length mismatch");
    assert!(width > 0, "width must be positive");
    let max = intervals.iter().map(|iv| iv.hi).fold(0.0f64, f64::max);
    let label_width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let scale = |x: f64| -> usize {
        if max > 0.0 {
            ((x / max) * width as f64).round().clamp(0.0, width as f64) as usize
        } else {
            0
        }
    };
    let mut out = String::new();
    for (label, iv) in labels.iter().zip(intervals) {
        let center = iv.center();
        let (lo, mid, hi) = (scale(iv.lo.max(0.0)), scale(center.max(0.0)), scale(iv.hi));
        let mut row: Vec<char> = vec![' '; width + 2];
        for slot in row.iter_mut().take(mid) {
            *slot = '█';
        }
        if lo < row.len() {
            row[lo] = '[';
        }
        if hi < row.len() {
            row[hi] = ']';
        }
        let row: String = row.into_iter().collect();
        out.push_str(&format!(
            "{label:>label_width$} | {} {:.1} ± {:.1}\n",
            row.trim_end(),
            center,
            iv.width() / 2.0
        ));
    }
    out
}

/// Renders a one-line sparkline with the eight Unicode block glyphs.
/// Returns an empty string for empty input.
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let chart = bar_chart(&["AA", "JB"], &[30.0, 15.0], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"█".repeat(10)), "max value fills width");
        assert!(lines[1].contains(&"█".repeat(5)), "half value half width");
        assert!(lines[0].contains("30.00"));
    }

    #[test]
    fn bar_chart_aligns_labels() {
        let chart = bar_chart(&["A", "LONGER"], &[1.0, 2.0], 4);
        for line in chart.lines() {
            assert_eq!(line.find('|'), Some(7), "pipe aligned: {line:?}");
        }
    }

    #[test]
    fn bar_chart_all_zero() {
        let chart = bar_chart(&["x"], &[0.0], 10);
        assert!(!chart.contains('█'));
    }

    #[test]
    fn intervals_render_whiskers() {
        let ivs = [
            Interval::centered(50.0, 10.0),
            Interval::centered(20.0, 5.0),
        ];
        let chart = bar_chart_with_intervals(&["a", "b"], &ivs, 20);
        assert!(chart.contains('['));
        assert!(chart.contains(']'));
        assert!(chart.contains("50.0 ± 10.0"));
        assert!(chart.contains("20.0 ± 5.0"));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 2.0, 1.0]);
        assert_eq!(s.chars().count(), 6);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().nth(3), Some('█'));
        assert_eq!(sparkline(&[]), "");
        // Constant series doesn't divide by zero.
        let flat = sparkline(&[5.0, 5.0]);
        assert_eq!(flat.chars().count(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = bar_chart(&["a"], &[1.0, 2.0], 5);
    }
}
