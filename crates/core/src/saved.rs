//! Serializable algorithm-stepper state — the core half of durable query
//! sessions.
//!
//! Every resumable stepper can dump its mutable round-loop state into a
//! [`SavedStepper`] and later be rebuilt from it: the session layer
//! re-plans the query (recreating the *derived* state — labels, sizes,
//! configuration, ε schedule — from storage), starts a fresh stepper, and
//! overwrites the mutable fields from the saved bag. Together with the
//! sampler permutation state and the RNG words (captured separately by the
//! session layer), `restore` makes the resumed round stream bit-identical
//! to the uninterrupted run.
//!
//! What is saved is deliberately minimal: per-group estimator parts
//! (`(count, mean)` pairs), activity/exhaustion flags, frozen interval
//! half-widths, per-group sample counters, the round counter, and the
//! truncation flag. Everything re-derivable from the query spec (labels,
//! group sizes, the ε schedule, scratch arenas) is *not* saved — it is
//! rebuilt on resume, which keeps checkpoints compact and immune to cache
//! state.
//!
//! Restoring validates shape (kind tag and per-group vector lengths)
//! and returns a structured [`RestoreError`] on mismatch — never panics —
//! so corrupt or mismatched checkpoints surface as answerable errors.

use crate::result::PartialEmission;

/// The mutable round-loop state shared by the `FocusState`-backed steppers
/// (IFOCUS, ROUNDROBIN, SUM with known sizes, and the partial-results
/// variant).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedFocusCore {
    /// Per-group running-mean parts `(count, mean)`.
    pub estimates: Vec<(u64, f64)>,
    /// Active flags.
    pub active: Vec<bool>,
    /// Exhaustion flags (without-replacement sources that ran dry).
    pub exhausted: Vec<bool>,
    /// ε frozen at each group's deactivation (`+∞` while active).
    pub frozen_eps: Vec<f64>,
    /// Per-group sample counters.
    pub samples: Vec<u64>,
    /// Round counter `m`.
    pub m: u64,
    /// Whether a budget already truncated the run.
    pub truncated: bool,
}

/// The mutable state of the IREFINE phase loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedIRefine {
    /// Per-group point estimates.
    pub estimates: Vec<f64>,
    /// Per-group target half-widths `ε_i`.
    pub eps: Vec<f64>,
    /// Per-group failure budgets `δ_i`.
    pub deltas: Vec<f64>,
    /// Active flags.
    pub active: Vec<bool>,
    /// Per-group sample counters.
    pub samples: Vec<u64>,
    /// Cumulative `(count, sum)` of each group's i.i.d. sample.
    pub cumulative: Vec<(u64, f64)>,
    /// Phase counter.
    pub phase: u64,
    /// Whether a budget already truncated the run.
    pub truncated: bool,
}

/// The mutable state of the exhaustive SCAN stepper.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedScan {
    /// Exact means for groups already read (`0.0` placeholders beyond
    /// `next_group`).
    pub estimates: Vec<f64>,
    /// Rows read per group.
    pub samples: Vec<u64>,
    /// Next group to read.
    pub next_group: u64,
}

/// The mutable state of the unknown-size SUM/COUNT stepper (Algorithm 5).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedSum2 {
    /// Per-group running-mean parts `(count, mean)` over the `x·z` stream.
    pub estimates: Vec<(u64, f64)>,
    /// Active flags.
    pub active: Vec<bool>,
    /// ε frozen at each group's deactivation (`+∞` while active).
    pub frozen_eps: Vec<f64>,
    /// Per-group sample counters.
    pub samples: Vec<u64>,
    /// Round counter `m`.
    pub m: u64,
    /// Whether a budget already truncated the run.
    pub truncated: bool,
}

/// The mutable state of the partial-results stepper: the shared focus core
/// plus the emission bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedPartial {
    /// The shared focus-loop state.
    pub core: SavedFocusCore,
    /// Which groups have already been emitted downstream.
    pub emitted: Vec<bool>,
    /// Emissions queued but not yet drained at checkpoint time.
    pub pending: Vec<PartialEmission>,
}

/// A kind-tagged bag of one stepper's mutable state, as captured by
/// [`crate::AlgorithmStepper::save`] (or the inherent `save` on the
/// extension steppers) and accepted back by `restore`.
#[derive(Debug, Clone, PartialEq)]
pub enum SavedStepper {
    /// [`crate::IFocusStepper`].
    Focus(SavedFocusCore),
    /// [`crate::RoundRobinStepper`].
    RoundRobin(SavedFocusCore),
    /// [`crate::extensions::IFocusSum1Stepper`].
    Sum1(SavedFocusCore),
    /// [`crate::IRefineStepper`].
    IRefine(SavedIRefine),
    /// [`crate::ScanStepper`].
    Scan(SavedScan),
    /// [`crate::extensions::IFocusSum2Stepper`].
    Sum2(SavedSum2),
    /// [`crate::extensions::IFocusPartialStepper`].
    Partial(SavedPartial),
}

impl SavedStepper {
    /// Short kind tag used in mismatch errors and the checkpoint wire
    /// format.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SavedStepper::Focus(_) => "focus",
            SavedStepper::RoundRobin(_) => "roundrobin",
            SavedStepper::Sum1(_) => "sum1",
            SavedStepper::IRefine(_) => "irefine",
            SavedStepper::Scan(_) => "scan",
            SavedStepper::Sum2(_) => "sum2",
            SavedStepper::Partial(_) => "partial",
        }
    }
}

/// Why a `restore` call rejected a [`SavedStepper`]. Restoration never
/// panics; a session resuming from corrupt or mismatched bytes reports
/// this as a structured error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The stepper does not support save/restore (the eager
    /// [`crate::OneShotStepper`] wrapper).
    Unsupported,
    /// The saved kind tag does not match the stepper being restored.
    WrongKind {
        /// The kind the stepper expected.
        expected: &'static str,
        /// The kind found in the saved state.
        got: &'static str,
    },
    /// A per-group vector's length does not match the stepper's group
    /// count (checkpoint taken against a different query or table).
    LengthMismatch {
        /// The stepper's group count.
        expected: usize,
        /// The saved vector's length.
        got: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Unsupported => {
                write!(f, "this stepper does not support checkpoint/restore")
            }
            RestoreError::WrongKind { expected, got } => {
                write!(
                    f,
                    "saved stepper kind mismatch: expected {expected}, got {got}"
                )
            }
            RestoreError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "saved per-group state has {got} entries but the query has {expected} groups"
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Validates that a saved per-group vector matches the stepper's group
/// count.
pub(crate) fn check_len<T>(expected: usize, v: &[T]) -> Result<(), RestoreError> {
    if v.len() == expected {
        Ok(())
    } else {
        Err(RestoreError::LengthMismatch {
            expected,
            got: v.len(),
        })
    }
}
