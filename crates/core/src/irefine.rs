//! IREFINE — the interval-halving alternative (Algorithm 3, §3.6).
//!
//! Where IFOCUS shrinks confidence intervals one sample at a time, IREFINE
//! is aggressive: in each *phase* it halves every active group's target
//! half-width `ε_i` (and failure budget `δ_i`), then calls `EstimateMean`
//! (Algorithm 2) to draw a **fresh** batch of
//! `m = c²/(2ε_i²)·ln(2/δ_i)` samples for the new estimate. A group stays
//! active while its interval `[µ̂_i ± ε_i]` intersects any other group's
//! (note: *any*, not just active ones — Algorithm 3 line 10).
//!
//! Guarantees (Theorem 3.10): correct ordering w.p. `≥ 1 − δ` after at most
//! `O(log(k/δ)·Σ_i log(1/η_i)/η_i²)` samples — a `log(1/η)` factor worse
//! than IFOCUS, and not optimal. The experiments confirm it lands between
//! IFOCUS and ROUNDROBIN.
//!
//! The `δ_i` initialization follows the intent of Algorithm 3 line 3
//! (`δ_i ← δ/(2k)`), so the per-group budgets telescope to `δ/k` and the
//! union bound yields `δ` overall.
//!
//! Implementation notes:
//! * Algorithm 2 as written discards the previous phase's samples and
//!   redraws from scratch. We instead *top up*: each phase draws only the
//!   additional samples needed to reach the target batch size and estimates
//!   from the cumulative mean. A cumulative with-replacement sample is
//!   itself an i.i.d. sample of the target size, so the Chernoff–Hoeffding
//!   guarantee is identical while the cost drops by the geometric-series
//!   overhead (~25%). Under the default without-replacement mode the
//!   Hoeffding–Serfling bound applies and is strictly tighter, so the
//!   target batch size (computed from plain Hoeffding) remains valid.
//! * Without replacement, a group whose cumulative draws reach its
//!   population size is *saturated*: the estimate is exact, the group
//!   retires, and the per-group cost is bounded by `n_i`. This keeps
//!   adversarial equal-mean inputs terminating.

use crate::config::AlgoConfig;
use crate::group::{GroupSource, MaybeSend};
use crate::history::{History, HistoryPoint};
use crate::result::RunResult;
use crate::runner::{AlgorithmStepper, OrderingAlgorithm, Snapshot, StepOutcome};
use crate::saved::{check_len, RestoreError, SavedIRefine, SavedStepper};
use rand::RngCore;
use rapidviz_stats::{hoeffding_sample_size, Interval, IntervalSet, SamplingMode};

/// The IREFINE algorithm (and IREFINE-R with a resolution configured).
#[derive(Debug, Clone)]
pub struct IRefine {
    config: AlgoConfig,
}

impl IRefine {
    /// Creates the algorithm with the given configuration.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AlgoConfig {
        &self.config
    }

    /// Begins a resumable run (Algorithm 3 lines 1–4: per-group targets and
    /// budgets initialized, nothing sampled yet — IREFINE's first draws
    /// happen in the first phase). A fixed-seed `start`/`step`/`finish`
    /// drive is byte-identical to [`IRefine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        _rng: &mut dyn RngCore,
    ) -> IRefineStepper {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let c = self.config.c;
        IRefineStepper {
            config: self.config.clone(),
            labels: groups.iter().map(GroupSource::label).collect(),
            sizes: groups.iter().map(GroupSource::len).collect(),
            estimates: vec![c / 2.0; k],
            eps: vec![c / 2.0; k],
            deltas: vec![self.config.delta / (2.0 * k as f64); k],
            active: vec![true; k],
            samples: vec![0u64; k],
            cumulative: vec![(0u64, 0.0f64); k],
            history: (self.config.history_every > 0).then(History::new),
            phase: 0,
            truncated: false,
            batch_buf: Vec::new(),
            // Each phase halves ε; ~60 phases reach f64 resolution. Anything
            // deeper means adversarial input; respect max_rounds too.
            phase_cap: self.config.max_rounds.min(200),
        }
    }

    /// Runs IREFINE over the groups to completion — a thin loop over
    /// [`IRefine::start`] and [`AlgorithmStepper::step`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// The IREFINE state machine: one [`AlgorithmStepper::step`] call per
/// *phase* (halve every active group's target half-width, top up its
/// cumulative sample to the new Hoeffding target, recompute activity).
#[derive(Debug)]
pub struct IRefineStepper {
    config: AlgoConfig,
    labels: Vec<String>,
    sizes: Vec<u64>,
    estimates: Vec<f64>,
    eps: Vec<f64>,
    deltas: Vec<f64>,
    active: Vec<bool>,
    samples: Vec<u64>,
    /// Cumulative (count, sum) of the i.i.d. with-replacement sample.
    cumulative: Vec<(u64, f64)>,
    history: Option<History>,
    phase: u64,
    truncated: bool,
    batch_buf: Vec<f64>,
    phase_cap: u64,
}

impl IRefineStepper {
    /// Total samples drawn so far (cheaper than a full snapshot — used by
    /// session budget checks every round).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }
}

impl AlgorithmStepper for IRefineStepper {
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        if !self.active.iter().any(|&a| a) {
            return StepOutcome::Converged;
        }
        let k = self.labels.len();
        let c = self.config.c;
        let resolution_eps = self.config.resolution_epsilon();
        self.phase += 1;
        if self.phase > self.phase_cap {
            self.truncated = true;
            return StepOutcome::BudgetExhausted;
        }
        for i in 0..k {
            if !self.active[i] {
                continue;
            }
            // Resolution relaxation: stop refining below r/4.
            if resolution_eps.is_some_and(|r| self.eps[i] < r) {
                self.active[i] = false;
                continue;
            }
            // Halve targets and re-estimate (lines 8–9).
            self.eps[i] /= 2.0;
            self.deltas[i] /= 2.0;
            let target = hoeffding_sample_size(self.eps[i], self.deltas[i], c);
            // Sample-budget guard: a target past the per-group budget
            // retires the group with its current estimate (truncated
            // run) rather than spinning on an adversarial near-tie.
            if target > self.config.max_samples_per_group {
                self.active[i] = false;
                self.truncated = true;
                continue;
            }
            // Saturation: under without-replacement sampling a target at
            // or past the population size just tops up to exhaustion —
            // the cumulative sample then IS the population and the
            // estimate is exact (Serfling width 0). With replacement the
            // cap would void the Hoeffding guarantee, so the full target
            // stands (the budget guard above bounds runaway).
            let without_replacement = self.config.mode == SamplingMode::WithoutReplacement;
            let target = if without_replacement {
                target.min(self.sizes[i])
            } else {
                target
            };
            let have = self.cumulative[i].0;
            // Top up to the phase target in one batched call: the
            // engine-backed sources resolve the whole top-up through a
            // single select_many sweep instead of `target - have`
            // independent directory searches.
            self.batch_buf.clear();
            let got =
                groups[i].draw_batch(target - have, rng, self.config.mode, &mut self.batch_buf);
            for &x in &self.batch_buf {
                self.cumulative[i].0 += 1;
                self.cumulative[i].1 += x;
            }
            debug_assert_eq!(self.cumulative[i].0, have + got);
            self.samples[i] += got;
            if self.cumulative[i].0 > 0 {
                self.estimates[i] = self.cumulative[i].1 / self.cumulative[i].0 as f64;
            }
            if without_replacement && self.cumulative[i].0 >= self.sizes[i] {
                // Entire population drawn: estimate is exact (the group
                // is saturated and retires with a zero-width interval).
                self.eps[i] = 0.0;
                self.active[i] = false;
            }
        }
        // Line 10: recompute activity against every group's interval.
        let set = IntervalSet::new(
            (0..k)
                .map(|i| Interval::centered(self.estimates[i], self.eps[i]))
                .collect(),
        );
        for i in 0..k {
            if self.active[i] {
                self.active[i] = set.member_overlaps_others(i);
            }
        }
        let any_active = self.active.iter().any(|&a| a);
        if let Some(h) = &mut self.history {
            if self.phase == 1
                || self.phase.is_multiple_of(self.config.history_every)
                || !any_active
            {
                h.push(HistoryPoint {
                    round: self.phase,
                    total_samples: self.samples.iter().sum(),
                    active_groups: self.active.iter().filter(|&&a| a).count(),
                    estimates: self.estimates.clone(),
                });
            }
        }
        if any_active {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            labels: self.labels.clone(),
            estimates: self.estimates.clone(),
            intervals: (0..self.labels.len())
                .map(|i| Interval::centered(self.estimates[i], self.eps[i]))
                .collect(),
            active: self.active.clone(),
            samples_per_group: self.samples.clone(),
            rounds: self.phase,
            truncated: self.truncated,
        }
    }

    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.labels.capacity() * size_of::<String>()
            + self.labels.iter().map(String::capacity).sum::<usize>()
            + self.sizes.capacity() * size_of::<u64>()
            + self.estimates.capacity() * size_of::<f64>()
            + self.eps.capacity() * size_of::<f64>()
            + self.deltas.capacity() * size_of::<f64>()
            + self.active.capacity() * size_of::<bool>()
            + self.samples.capacity() * size_of::<u64>()
            + self.cumulative.capacity() * size_of::<(u64, f64)>()
            + self.batch_buf.capacity() * size_of::<f64>()
    }

    fn save(&self) -> Option<SavedStepper> {
        Some(SavedStepper::IRefine(SavedIRefine {
            estimates: self.estimates.clone(),
            eps: self.eps.clone(),
            deltas: self.deltas.clone(),
            active: self.active.clone(),
            samples: self.samples.clone(),
            cumulative: self.cumulative.clone(),
            phase: self.phase,
            truncated: self.truncated,
        }))
    }

    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        let SavedStepper::IRefine(s) = saved else {
            return Err(RestoreError::WrongKind {
                expected: "irefine",
                got: saved.kind(),
            });
        };
        let k = self.labels.len();
        check_len(k, &s.estimates)?;
        check_len(k, &s.eps)?;
        check_len(k, &s.deltas)?;
        check_len(k, &s.active)?;
        check_len(k, &s.samples)?;
        check_len(k, &s.cumulative)?;
        self.estimates.copy_from_slice(&s.estimates);
        self.eps.copy_from_slice(&s.eps);
        self.deltas.copy_from_slice(&s.deltas);
        self.active.copy_from_slice(&s.active);
        self.samples.copy_from_slice(&s.samples);
        self.cumulative.copy_from_slice(&s.cumulative);
        self.phase = s.phase;
        self.truncated = s.truncated;
        Ok(())
    }

    fn finish(self) -> RunResult {
        RunResult {
            labels: self.labels,
            estimates: self.estimates,
            samples_per_group: self.samples,
            rounds: self.phase,
            trace: None,
            history: self.history,
            truncated: self.truncated,
        }
    }
}

impl OrderingAlgorithm for IRefine {
    type Stepper = IRefineStepper;

    fn name(&self) -> String {
        if self.config.resolution.is_some() {
            "irefiner".to_owned()
        } else {
            "irefine".to_owned()
        }
    }

    fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IRefineStepper {
        IRefine::start(self, groups, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn correct_ordering() {
        let mut groups = two_point_groups(&[20.0, 50.0, 80.0], 100_000, 61);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IRefine::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
        assert!(!result.truncated);
    }

    #[test]
    fn lands_between_ifocus_and_exhaustive() {
        let mut g1 = two_point_groups(&[25.0, 45.0, 47.0, 75.0], 300_000, 63);
        let mut g2 = g1.clone();
        let ir = IRefine::new(AlgoConfig::new(100.0, 0.05));
        let ifx = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(64);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(64);
        let r_ir = ir.run(&mut g1, &mut rng1);
        let r_if = ifx.run(&mut g2, &mut rng2);
        // IREFINE overshoots each phase, so it should cost more than IFOCUS
        // (allow slack for randomness but require the trend).
        assert!(
            r_ir.total_samples() > r_if.total_samples() / 2,
            "irefine {} suspiciously below ifocus {}",
            r_ir.total_samples(),
            r_if.total_samples()
        );
        assert!(!r_ir.truncated);
    }

    #[test]
    fn resolution_stops_early() {
        let mut g1 = two_point_groups(&[30.0, 31.0, 70.0], 500_000, 65);
        let mut g2 = g1.clone();
        let plain = IRefine::new(AlgoConfig::new(100.0, 0.05));
        let relaxed = IRefine::new(AlgoConfig::new(100.0, 0.05).with_resolution(8.0));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(66);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(66);
        let r_plain = plain.run(&mut g1, &mut rng1);
        let r_relaxed = relaxed.run(&mut g2, &mut rng2);
        assert!(r_relaxed.total_samples() < r_plain.total_samples());
    }

    #[test]
    fn equal_means_saturate_and_terminate() {
        let mut groups = vec![
            VecGroup::new("a", vec![50.0; 200]),
            VecGroup::new("b", vec![50.0; 200]),
        ];
        let algo = IRefine::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
        assert!((result.estimates[0] - 50.0).abs() < 1e-9);
        assert!((result.estimates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn single_group() {
        let mut groups = vec![VecGroup::new("only", vec![1.0, 2.0])];
        let algo = IRefine::new(AlgoConfig::new(10.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(68);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
    }

    #[test]
    fn name() {
        assert_eq!(IRefine::new(AlgoConfig::new(1.0, 0.05)).name(), "irefine");
        assert_eq!(
            IRefine::new(AlgoConfig::new(1.0, 0.05).with_resolution(0.1)).name(),
            "irefiner"
        );
    }

    /// The pre-stepper IREFINE phase loop, verbatim. Guards the acceptance
    /// criterion that the resumable-session refactor is byte-identical for
    /// a fixed seed.
    fn reference_irefine(
        config: &AlgoConfig,
        groups: &mut [VecGroup],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        use crate::history::{History, HistoryPoint};
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let c = config.c;
        let labels: Vec<String> = groups.iter().map(GroupSource::label).collect();
        let sizes: Vec<u64> = groups.iter().map(GroupSource::len).collect();
        let mut estimates = vec![c / 2.0; k];
        let mut eps = vec![c / 2.0; k];
        let mut deltas = vec![config.delta / (2.0 * k as f64); k];
        let mut active = vec![true; k];
        let mut samples = vec![0u64; k];
        let mut cumulative = vec![(0u64, 0.0f64); k];
        let mut history = (config.history_every > 0).then(History::new);
        let resolution_eps = config.resolution_epsilon();
        let mut phase = 0u64;
        let mut truncated = false;
        let mut batch_buf: Vec<f64> = Vec::new();
        let phase_cap = config.max_rounds.min(200);
        while active.iter().any(|&a| a) {
            phase += 1;
            if phase > phase_cap {
                truncated = true;
                break;
            }
            for i in 0..k {
                if !active[i] {
                    continue;
                }
                if resolution_eps.is_some_and(|r| eps[i] < r) {
                    active[i] = false;
                    continue;
                }
                eps[i] /= 2.0;
                deltas[i] /= 2.0;
                let target = hoeffding_sample_size(eps[i], deltas[i], c);
                if target > config.max_samples_per_group {
                    active[i] = false;
                    truncated = true;
                    continue;
                }
                let without_replacement = config.mode == SamplingMode::WithoutReplacement;
                let target = if without_replacement {
                    target.min(sizes[i])
                } else {
                    target
                };
                let have = cumulative[i].0;
                batch_buf.clear();
                let got = groups[i].draw_batch(target - have, rng, config.mode, &mut batch_buf);
                for &x in &batch_buf {
                    cumulative[i].0 += 1;
                    cumulative[i].1 += x;
                }
                samples[i] += got;
                if cumulative[i].0 > 0 {
                    estimates[i] = cumulative[i].1 / cumulative[i].0 as f64;
                }
                if without_replacement && cumulative[i].0 >= sizes[i] {
                    eps[i] = 0.0;
                    active[i] = false;
                }
            }
            let set = IntervalSet::new(
                (0..k)
                    .map(|i| Interval::centered(estimates[i], eps[i]))
                    .collect(),
            );
            for i in 0..k {
                if active[i] {
                    active[i] = set.member_overlaps_others(i);
                }
            }
            if let Some(h) = &mut history {
                if phase == 1
                    || phase.is_multiple_of(config.history_every)
                    || !active.iter().any(|&a| a)
                {
                    h.push(HistoryPoint {
                        round: phase,
                        total_samples: samples.iter().sum(),
                        active_groups: active.iter().filter(|&&a| a).count(),
                        estimates: estimates.clone(),
                    });
                }
            }
        }
        RunResult {
            labels,
            estimates,
            samples_per_group: samples,
            rounds: phase,
            trace: None,
            history,
            truncated,
        }
    }

    #[test]
    fn stepper_matches_blocking_reference() {
        let mut g1 = two_point_groups(&[25.0, 47.0, 53.0, 80.0], 60_000, 70);
        let mut g2 = g1.clone();
        let config = AlgoConfig::new(100.0, 0.05);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(71);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(71);
        let result = IRefine::new(config.clone()).run(&mut g1, &mut rng1);
        let reference = reference_irefine(&config, &mut g2, &mut rng2);
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
        assert_eq!(result.truncated, reference.truncated);
    }
}
