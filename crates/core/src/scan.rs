//! The exhaustive SCAN baseline.
//!
//! Reads every member of every group (a full sequential pass in storage
//! terms) and reports exact means. This is what a conventional DBMS does
//! for the visualization query, and the yardstick the paper's Figure 4 and
//! the conclusion's "1000× speedup" compare against.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::runner::OrderingAlgorithm;
use rand::RngCore;
use rapidviz_stats::SamplingMode;

/// Exhaustive exact computation (zero failure probability, maximal cost).
#[derive(Debug, Clone)]
pub struct ExactScan {
    config: AlgoConfig,
}

impl ExactScan {
    /// Creates the baseline (only `c` is meaningful; `δ` is ignored since
    /// the answer is exact).
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Reads every group fully and returns exact means.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        assert!(!groups.is_empty(), "need at least one group");
        let _ = &self.config;
        let labels = groups.iter().map(GroupSource::label).collect();
        let mut estimates = Vec::with_capacity(groups.len());
        let mut samples = Vec::with_capacity(groups.len());
        let mut max_read = 0u64;
        for group in groups.iter_mut() {
            group.reset();
            let mut sum = 0.0;
            let mut n = 0u64;
            while let Some(x) = group.sample(rng, SamplingMode::WithoutReplacement) {
                sum += x;
                n += 1;
            }
            estimates.push(if n == 0 { 0.0 } else { sum / n as f64 });
            samples.push(n);
            max_read = max_read.max(n);
        }
        RunResult {
            labels,
            estimates,
            samples_per_group: samples,
            rounds: max_read,
            trace: None,
            history: None,
            truncated: false,
        }
    }
}

impl OrderingAlgorithm for ExactScan {
    fn name(&self) -> String {
        "scan".to_owned()
    }

    fn execute<G: GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        self.run(groups, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use rand::SeedableRng;

    #[test]
    fn exact_means_full_cost() {
        let mut groups = vec![
            VecGroup::new("a", vec![1.0, 2.0, 3.0]),
            VecGroup::new("b", vec![10.0, 20.0]),
        ];
        let algo = ExactScan::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.estimates, vec![2.0, 15.0]);
        assert_eq!(result.samples_per_group, vec![3, 2]);
        assert_eq!(result.total_samples(), 5);
        assert_eq!(algo.name(), "scan");
    }

    #[test]
    fn scan_after_partial_sampling_still_exact() {
        // reset() must restart the permutation even if the group was
        // partially consumed by another algorithm first.
        let mut g = VecGroup::new("a", vec![4.0, 8.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = g.sample(&mut rng, SamplingMode::WithoutReplacement);
        let mut groups = vec![g];
        let algo = ExactScan::new(AlgoConfig::new(100.0, 0.05));
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.estimates, vec![6.0]);
    }
}
