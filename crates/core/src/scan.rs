//! The exhaustive SCAN baseline.
//!
//! Reads every member of every group (a full sequential pass in storage
//! terms) and reports exact means. This is what a conventional DBMS does
//! for the visualization query, and the yardstick the paper's Figure 4 and
//! the conclusion's "1000× speedup" compare against.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::runner::{AlgorithmStepper, OrderingAlgorithm, Snapshot, StepOutcome};
use crate::saved::{check_len, RestoreError, SavedScan, SavedStepper};
use rand::RngCore;
use rapidviz_stats::{Interval, SamplingMode};

/// Exhaustive exact computation (zero failure probability, maximal cost).
#[derive(Debug, Clone)]
pub struct ExactScan {
    config: AlgoConfig,
}

impl ExactScan {
    /// Creates the baseline (only `c` is meaningful; `δ` is ignored since
    /// the answer is exact).
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Begins a resumable scan. Each [`AlgorithmStepper::step`] reads **one
    /// whole group**, so even the exhaustive baseline streams per-group
    /// exact bars as they complete.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource>(&self, groups: &mut [G], _rng: &mut dyn RngCore) -> ScanStepper {
        assert!(!groups.is_empty(), "need at least one group");
        let _ = &self.config;
        let k = groups.len();
        ScanStepper {
            labels: groups.iter().map(GroupSource::label).collect(),
            estimates: vec![0.0; k],
            samples: vec![0u64; k],
            next_group: 0,
        }
    }

    /// Reads every group fully and returns exact means — a thin loop over
    /// [`ExactScan::start`] and [`AlgorithmStepper::step`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step_any(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// The SCAN state machine: one group read exhaustively per step.
#[derive(Debug)]
pub struct ScanStepper {
    labels: Vec<String>,
    estimates: Vec<f64>,
    samples: Vec<u64>,
    /// Next group to read; groups `..next_group` hold exact estimates.
    next_group: usize,
}

impl ScanStepper {
    /// Total samples (rows read) so far.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// [`AlgorithmStepper::step`] without the `MaybeSend` bound (SCAN never
    /// fans out across threads).
    pub fn step_any<G: GroupSource>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        if self.next_group >= self.labels.len() {
            return StepOutcome::Converged;
        }
        let i = self.next_group;
        let group = &mut groups[i];
        group.reset();
        let mut sum = 0.0;
        let mut n = 0u64;
        while let Some(x) = group.sample(rng, SamplingMode::WithoutReplacement) {
            sum += x;
            n += 1;
        }
        self.estimates[i] = if n == 0 { 0.0 } else { sum / n as f64 };
        self.samples[i] = n;
        self.next_group += 1;
        if self.next_group >= self.labels.len() {
            StepOutcome::Converged
        } else {
            StepOutcome::Running
        }
    }
}

impl AlgorithmStepper for ScanStepper {
    fn step<G: GroupSource + crate::group::MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        self.step_any(groups, rng)
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            labels: self.labels.clone(),
            estimates: self.estimates.clone(),
            // Scanned groups are exact (point intervals); unscanned ones
            // are completely unknown, rendered as point intervals at the
            // 0.0 placeholder while still marked active.
            intervals: self
                .estimates
                .iter()
                .map(|&e| Interval::centered(e, 0.0))
                .collect(),
            active: (0..self.labels.len())
                .map(|i| i >= self.next_group)
                .collect(),
            samples_per_group: self.samples.clone(),
            rounds: self.samples.iter().copied().max().unwrap_or(0),
            truncated: false,
        }
    }

    fn save(&self) -> Option<SavedStepper> {
        Some(SavedStepper::Scan(SavedScan {
            estimates: self.estimates.clone(),
            samples: self.samples.clone(),
            next_group: self.next_group as u64,
        }))
    }

    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        let SavedStepper::Scan(s) = saved else {
            return Err(RestoreError::WrongKind {
                expected: "scan",
                got: saved.kind(),
            });
        };
        let k = self.labels.len();
        check_len(k, &s.estimates)?;
        check_len(k, &s.samples)?;
        self.estimates.copy_from_slice(&s.estimates);
        self.samples.copy_from_slice(&s.samples);
        // A corrupt cursor past the group count means "all groups read";
        // clamping keeps step() a terminal no-op instead of panicking.
        self.next_group = usize::try_from(s.next_group).unwrap_or(k).min(k);
        Ok(())
    }

    fn finish(self) -> RunResult {
        let max_read = self.samples.iter().copied().max().unwrap_or(0);
        RunResult {
            labels: self.labels,
            estimates: self.estimates,
            samples_per_group: self.samples,
            rounds: max_read,
            trace: None,
            history: None,
            truncated: false,
        }
    }
}

impl OrderingAlgorithm for ExactScan {
    type Stepper = ScanStepper;

    fn name(&self) -> String {
        "scan".to_owned()
    }

    fn start<G: GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> ScanStepper {
        ExactScan::start(self, groups, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use rand::SeedableRng;

    #[test]
    fn exact_means_full_cost() {
        let mut groups = vec![
            VecGroup::new("a", vec![1.0, 2.0, 3.0]),
            VecGroup::new("b", vec![10.0, 20.0]),
        ];
        let algo = ExactScan::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.estimates, vec![2.0, 15.0]);
        assert_eq!(result.samples_per_group, vec![3, 2]);
        assert_eq!(result.total_samples(), 5);
        assert_eq!(algo.name(), "scan");
    }

    #[test]
    fn scan_after_partial_sampling_still_exact() {
        // reset() must restart the permutation even if the group was
        // partially consumed by another algorithm first.
        let mut g = VecGroup::new("a", vec![4.0, 8.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = g.sample(&mut rng, SamplingMode::WithoutReplacement);
        let mut groups = vec![g];
        let algo = ExactScan::new(AlgoConfig::new(100.0, 0.05));
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.estimates, vec![6.0]);
    }
}
