//! Problem 7 — AVG-ORDER-PARTIAL (§6.2.2).
//!
//! Long-running visualizations should render incrementally: each group's
//! bar appears the moment the algorithm is confident about it. The solution
//! is exactly the paper's: emit a group's estimate when it deactivates.
//! With probability `1 − δ`, the ordering among all groups emitted at any
//! point in time is correct (they were mutually disjoint when they froze).

use crate::config::AlgoConfig;
use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use crate::runner::{Snapshot, StepOutcome};
use crate::saved::{check_len, RestoreError, SavedPartial, SavedStepper};
use crate::state::FocusState;
use rand::RngCore;

pub use crate::result::PartialEmission;

/// IFOCUS that streams estimates as groups become inactive.
#[derive(Debug, Clone)]
pub struct IFocusPartial {
    config: AlgoConfig,
}

impl IFocusPartial {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Begins a resumable run: bootstrap sample, round-1 deactivation, and
    /// the first emission flush (a group can certify instantly only under
    /// degenerate inputs, but the flush keeps the stream exact). Drain the
    /// stepper's pending emissions after `start` and after every `step`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusPartialStepper {
        let state = FocusState::initialize(&self.config, groups, rng);
        let emitted = vec![false; state.k()];
        let mut stepper = IFocusPartialStepper {
            state,
            emitted,
            pending: Vec::new(),
        };
        stepper.state.standard_deactivation();
        stepper.flush();
        stepper.state.record();
        stepper
    }

    /// Runs over the groups, invoking `emit` for each group the moment it
    /// deactivates. The final [`RunResult`] is identical to plain IFOCUS's.
    ///
    /// Rounds draw through the same batched pipeline as IFOCUS (one
    /// `draw_batch` of [`AlgoConfig::samples_per_round`] per active group,
    /// selected via the state's reusable scratch), so fixed-seed results
    /// match the historical per-draw loop exactly at batch size 1. This is
    /// a thin loop over [`IFocusPartial::start`] and
    /// [`IFocusPartialStepper::step`], draining emissions per round.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
        mut emit: impl FnMut(PartialEmission),
    ) -> RunResult {
        let mut stepper = self.start(groups, rng);
        for e in stepper.drain_emissions() {
            emit(e);
        }
        loop {
            let outcome = stepper.step(groups, rng);
            for e in stepper.drain_emissions() {
                emit(e);
            }
            if !outcome.is_running() {
                break;
            }
        }
        stepper.finish()
    }
}

/// The streaming-IFOCUS state machine: identical rounds to
/// [`crate::IFocus`]'s stepper, plus a pending-emission queue filled the
/// moment groups deactivate. Mirrors [`crate::runner::AlgorithmStepper`]'s
/// shape with an extra [`IFocusPartialStepper::drain_emissions`] hook.
#[derive(Debug)]
pub struct IFocusPartialStepper {
    state: FocusState,
    emitted: Vec<bool>,
    pending: Vec<PartialEmission>,
}

impl IFocusPartialStepper {
    /// Total samples drawn so far.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.state.total_samples()
    }

    /// Advances one round; mirrors
    /// [`crate::runner::AlgorithmStepper::step`]. Newly certified groups
    /// land in the pending queue — drain it after each call.
    pub fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        if !self.state.any_active() {
            return StepOutcome::Converged;
        }
        if self.state.m >= self.state.config.max_rounds {
            self.state.truncated = true;
            // Truncated runs still flush whatever froze.
            self.flush();
            return StepOutcome::BudgetExhausted;
        }
        let batch = self.state.config.samples_per_round;
        self.state.m += batch;
        self.state.draw_round_selected(false, groups, rng, batch);
        if self.state.resolution_reached() || self.state.all_active_exhausted() {
            self.state.deactivate_all();
        } else {
            self.state.standard_deactivation();
        }
        self.flush();
        self.state.record();
        if self.state.any_active() {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }

    /// Removes and returns the emissions produced since the last drain, in
    /// deactivation order.
    pub fn drain_emissions(&mut self) -> Vec<PartialEmission> {
        std::mem::take(&mut self.pending)
    }

    /// The current estimates, intervals, active set, and partial ordering.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.state.snapshot()
    }

    /// Captures the mutable round-loop state — the shared focus core plus
    /// the emission bookkeeping (including any queued-but-undrained
    /// emissions, so a checkpoint taken mid-round loses nothing); mirrors
    /// [`crate::runner::AlgorithmStepper::save`].
    #[must_use]
    pub fn save(&self) -> SavedStepper {
        SavedStepper::Partial(SavedPartial {
            core: self.state.save_core(),
            emitted: self.emitted.clone(),
            pending: self.pending.clone(),
        })
    }

    /// Overwrites the mutable state from a checkpoint taken by
    /// [`Self::save`] on an identically planned run; mirrors
    /// [`crate::runner::AlgorithmStepper::restore`].
    ///
    /// # Errors
    ///
    /// Returns a structured [`RestoreError`] (never panics) when the saved
    /// kind or per-group shape does not match this stepper.
    pub fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        let SavedStepper::Partial(s) = saved else {
            return Err(RestoreError::WrongKind {
                expected: "partial",
                got: saved.kind(),
            });
        };
        check_len(self.state.k(), &s.emitted)?;
        self.state.restore_core(&s.core)?;
        self.emitted.copy_from_slice(&s.emitted);
        self.pending = s.pending.clone();
        Ok(())
    }

    /// Consumes the stepper and packages the final result.
    #[must_use]
    pub fn finish(self) -> RunResult {
        self.state.finish()
    }

    /// Queues an emission for every group that deactivated since the last
    /// flush.
    fn flush(&mut self) {
        let state = &self.state;
        let total: u64 = state.samples.iter().sum();
        for i in 0..state.k() {
            if !state.active[i] && !self.emitted[i] {
                self.emitted[i] = true;
                self.pending.push(PartialEmission {
                    group: i,
                    label: state.labels[i].clone(),
                    estimate: state.estimates[i].mean(),
                    round: state.m,
                    total_samples_so_far: total,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn emits_every_group_exactly_once_in_deactivation_order() {
        let means = [20.0, 48.0, 52.0, 85.0];
        let mut groups = two_point_groups(&means, 200_000, 110);
        let algo = IFocusPartial::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(111);
        let mut emissions = Vec::new();
        let result = algo.run(&mut groups, &mut rng, |e| emissions.push(e));
        assert_eq!(emissions.len(), 4, "each group emitted once");
        let mut seen: Vec<usize> = emissions.iter().map(|e| e.group).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // Emission rounds are non-decreasing.
        for w in emissions.windows(2) {
            assert!(w[1].round >= w[0].round);
            assert!(w[1].total_samples_so_far >= w[0].total_samples_so_far);
        }
        // The contentious middle pair deactivates last.
        let last_two: Vec<usize> = emissions[2..].iter().map(|e| e.group).collect();
        assert!(
            last_two.contains(&1) && last_two.contains(&2),
            "near-tied groups should finish last: {last_two:?}"
        );
        // Final estimates equal the streamed ones.
        for e in &emissions {
            assert_eq!(result.estimates[e.group], e.estimate);
        }
    }

    #[test]
    fn prefix_of_emissions_is_correctly_ordered() {
        let means = [15.0, 40.0, 65.0, 90.0];
        let mut groups = two_point_groups(&means, 100_000, 112);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusPartial::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        let mut emissions = Vec::new();
        let _ = algo.run(&mut groups, &mut rng, |e| emissions.push(e));
        // Every prefix of the emission stream must be internally ordered
        // correctly (the partial-results guarantee).
        for prefix_len in 1..=emissions.len() {
            let prefix = &emissions[..prefix_len];
            let est: Vec<f64> = prefix.iter().map(|e| e.estimate).collect();
            let tru: Vec<f64> = prefix.iter().map(|e| truths[e.group]).collect();
            assert!(
                is_correctly_ordered(&est, &tru),
                "prefix of {prefix_len} emissions mis-ordered"
            );
        }
    }

    /// The pre-refactor emission flush, verbatim (the production flush now
    /// lives on the stepper and queues instead of calling out).
    fn reference_flush(
        state: &FocusState,
        emitted: &mut [bool],
        emit: &mut impl FnMut(PartialEmission),
    ) {
        let total: u64 = state.samples.iter().sum();
        for i in 0..state.k() {
            if !state.active[i] && !emitted[i] {
                emitted[i] = true;
                emit(PartialEmission {
                    group: i,
                    label: state.labels[i].clone(),
                    estimate: state.estimates[i].mean(),
                    round: state.m,
                    total_samples_so_far: total,
                });
            }
        }
    }

    /// The pre-batching partial-results round loop, verbatim: one
    /// `state.draw` per active group per round.
    fn reference_partial(
        config: &AlgoConfig,
        groups: &mut [VecGroup],
        rng: &mut dyn rand::RngCore,
        emit: &mut impl FnMut(PartialEmission),
    ) -> RunResult {
        let mut state = FocusState::initialize(config, groups, rng);
        let mut emitted = vec![false; state.k()];
        state.standard_deactivation();
        reference_flush(&state, &mut emitted, emit);
        state.record();
        while state.any_active() {
            if state.m >= config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..state.k() {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                state.standard_deactivation();
            }
            reference_flush(&state, &mut emitted, emit);
            state.record();
        }
        reference_flush(&state, &mut emitted, emit);
        state.finish()
    }

    #[test]
    fn batched_partial_matches_single_draw_reference() {
        // Byte-identical emissions and result vs the per-draw loop at the
        // default batch size. Skipped under `parallel` (per-group streams).
        if cfg!(feature = "parallel") {
            return;
        }
        let means = [20.0, 46.0, 54.0, 85.0];
        let mut g1 = two_point_groups(&means, 50_000, 140);
        let mut g2 = g1.clone();
        let config = AlgoConfig::new(100.0, 0.05);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(141);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(141);
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let result = IFocusPartial::new(config.clone()).run(&mut g1, &mut rng1, |e| e1.push(e));
        let reference = reference_partial(&config, &mut g2, &mut rng2, &mut |e| e2.push(e));
        assert_eq!(e1, e2, "emission streams must be identical");
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
    }
}
