//! Problem 5 — AVG-ORDER-MISTAKES (§6.1.3).
//!
//! The analyst tolerates incorrect ordering on up to a fraction γ of the
//! group pairs (in exchange for speed). Following the paper's solution, the
//! algorithm tracks the fraction of pairs whose ordering is already
//! *certified* — pairs of mutually inactive groups — and terminates as soon
//! as that fraction reaches `1 − γ`, abandoning the hardest comparisons.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::state::FocusState;
use rand::RngCore;

/// IFOCUS with an allowed fraction of pair mistakes.
#[derive(Debug, Clone)]
pub struct IFocusMistakes {
    config: AlgoConfig,
    /// Allowed fraction γ ∈ [0, 1) of pairs that may be mis-ordered.
    gamma: f64,
}

impl IFocusMistakes {
    /// Creates the algorithm with mistake budget `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ [0, 1)`.
    #[must_use]
    pub fn new(config: AlgoConfig, gamma: f64) -> Self {
        assert!((0.0..1.0).contains(&gamma), "gamma must lie in [0, 1)");
        Self { config, gamma }
    }

    /// Runs over the groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        let k = state.k();
        let total_pairs = (k * (k.saturating_sub(1)) / 2).max(1) as f64;
        state.standard_deactivation();
        state.record();

        while state.any_active() {
            // Certified pairs: every pair with at least one inactive
            // endpoint. (When a group deactivates its interval is disjoint
            // from all then-active intervals, and Lemma 1's argument shows
            // its order relative to *every* other group is settled.) Only
            // active–active pairs remain uncertain.
            let active = state.active_count();
            let certified = total_pairs - (active * active.saturating_sub(1) / 2) as f64;
            if certified / total_pairs >= 1.0 - self.gamma {
                state.deactivate_all();
                break;
            }
            if state.m >= self.config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..k {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                state.standard_deactivation();
            }
            state.record();
        }
        state.finish()
    }
}

impl crate::runner::OrderingAlgorithm for IFocusMistakes {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-mistakes".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::fraction_correct_pairs;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn zero_gamma_equals_full_ifocus_cost_profile() {
        let means = [20.0, 50.0, 80.0];
        let mut g1 = two_point_groups(&means, 50_000, 90);
        let mut g2 = g1.clone();
        let strict = IFocusMistakes::new(AlgoConfig::new(100.0, 0.05), 0.0);
        let full = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(91);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(91);
        let r_strict = strict.run(&mut g1, &mut rng1);
        let r_full = full.run(&mut g2, &mut rng2);
        assert_eq!(r_strict.total_samples(), r_full.total_samples());
    }

    #[test]
    fn budget_skips_hard_pair() {
        // One near-tie among 5 groups: allowing 1/10 of pairs wrong lets the
        // run stop without resolving it.
        let means = [30.0, 30.5, 55.0, 75.0, 90.0];
        let mut g1 = two_point_groups(&means, 400_000, 92);
        let mut g2 = g1.clone();
        let lenient = IFocusMistakes::new(AlgoConfig::new(100.0, 0.05), 0.11);
        let strict = IFocusMistakes::new(AlgoConfig::new(100.0, 0.05), 0.0);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(93);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(93);
        let r_lenient = lenient.run(&mut g1, &mut rng1);
        let r_strict = strict.run(&mut g2, &mut rng2);
        assert!(
            r_lenient.total_samples() * 3 < r_strict.total_samples(),
            "lenient {} should be far below strict {}",
            r_lenient.total_samples(),
            r_strict.total_samples()
        );
        // The result is still mostly correct.
        let truths: Vec<f64> = g1.iter().map(|g| g.true_mean().unwrap()).collect();
        let frac = fraction_correct_pairs(&r_lenient.estimates, &truths);
        assert!(frac >= 0.89, "pair accuracy {frac}");
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_one() {
        let _ = IFocusMistakes::new(AlgoConfig::new(1.0, 0.05), 1.0);
    }
}
