//! Problem 3 — AVG-ORDER-TRENDS (§6.1.1).
//!
//! For a trend-line (ordinal x-axis) or a choropleth, only comparisons
//! between *neighboring* groups must be correct. The IFOCUS generalization
//! redefines activity: a group stays active while one of its **incident
//! adjacent pairs** is unresolved, where pair `(i, i+1)` resolves when the
//! two confidence intervals become disjoint. The sample complexity bound
//! holds with `η_i` replaced by `η*_i = min(τ_{i−1,i}, τ_{i,i+1})` — never
//! smaller than the all-pairs `η_i`, so trends are never harder and usually
//! far cheaper.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::state::FocusState;
use rand::RngCore;

/// IFOCUS for adjacent-pair (trend/choropleth) ordering.
#[derive(Debug, Clone)]
pub struct IFocusTrends {
    config: AlgoConfig,
}

impl IFocusTrends {
    /// Creates the algorithm; group order is the x-axis order.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Runs over the groups (in x-axis order).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        let k = state.k();
        // pair_resolved[i] covers (i, i+1).
        let mut pair_resolved = vec![false; k.saturating_sub(1)];
        Self::update(&mut state, &mut pair_resolved);
        state.record();

        while state.any_active() {
            if state.m >= self.config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..k {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                Self::update(&mut state, &mut pair_resolved);
            }
            state.record();
        }
        state.finish()
    }

    /// Resolves adjacent pairs whose intervals separated, then deactivates
    /// groups with no unresolved incident pair.
    fn update(state: &mut FocusState, pair_resolved: &mut [bool]) {
        let eps_now = state.epsilon();
        let k = state.k();
        for i in 0..k.saturating_sub(1) {
            if !pair_resolved[i] {
                let a = state.interval(i, eps_now);
                let b = state.interval(i + 1, eps_now);
                if !a.overlaps(&b) {
                    pair_resolved[i] = true;
                }
            }
        }
        for i in 0..k {
            let left_open = i > 0 && !pair_resolved[i - 1];
            let right_open = i + 1 < k && !pair_resolved[i];
            if !left_open && !right_open {
                state.deactivate(i, eps_now);
            }
        }
    }
}

impl crate::runner::OrderingAlgorithm for IFocusTrends {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-trends".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_trend_correct;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("t{i}"), values)
            })
            .collect()
    }

    #[test]
    fn trend_ordering_holds() {
        // A zig-zag trend with close non-adjacent values.
        let means = [20.0, 60.0, 35.0, 70.0, 30.0];
        let mut groups = two_point_groups(&means, 100_000, 70);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusTrends::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_trend_correct(&result.estimates, &truths, 0.0));
        assert!(!result.truncated);
    }

    #[test]
    fn cheaper_than_all_pairs_when_distant_groups_conflict() {
        // Groups 0 and 3 nearly tied but NOT adjacent: the trend variant can
        // ignore that conflict; full IFOCUS cannot.
        let means = [40.0, 10.0, 90.0, 41.0];
        let mut g1 = two_point_groups(&means, 400_000, 72);
        let mut g2 = g1.clone();
        let trends = IFocusTrends::new(AlgoConfig::new(100.0, 0.05));
        let full = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(73);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(73);
        let r_trends = trends.run(&mut g1, &mut rng1);
        let r_full = full.run(&mut g2, &mut rng2);
        assert!(
            r_trends.total_samples() * 4 < r_full.total_samples(),
            "trends {} should be far below full {}",
            r_trends.total_samples(),
            r_full.total_samples()
        );
    }

    #[test]
    fn single_group_trivial() {
        let mut groups = vec![VecGroup::new("only", vec![5.0, 6.0])];
        let algo = IFocusTrends::new(AlgoConfig::new(10.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.total_samples(), 1);
    }

    #[test]
    fn resolution_variant_terminates_fast() {
        let means = [20.0, 21.0, 22.0, 23.0];
        let mut groups = two_point_groups(&means, 500_000, 75);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusTrends::new(AlgoConfig::new(100.0, 0.05).with_resolution(5.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(76);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_trend_correct(&result.estimates, &truths, 5.0));
        assert!(
            result.total_samples() < 500_000,
            "resolution keeps cost bounded"
        );
    }
}
