//! §6.3.6 — no index on the group-by attribute (Problem 9).
//!
//! Without an index we cannot direct samples at specific groups; all we can
//! do is draw uniformly random *rows* of the relation and observe which
//! group each belongs to. Per-group sample counts `m_i` therefore grow in
//! proportion to group sizes rather than need. The anytime confidence bound
//! still applies per group at its own `m_i` (each group's observations are
//! i.i.d. uniform members conditioned on the count), so the run terminates
//! — with the full `1 − δ` guarantee — once every pair of intervals
//! `[ν_i ± ε(m_i)]` is disjoint, or once every active ε has dropped below
//! the resolution cut-off.
//!
//! As the paper notes, when groups are roughly equal-sized this behaves
//! like ROUNDROBIN (no focusing is possible), yet still samples far less
//! than a full scan.

use crate::config::AlgoConfig;
use crate::result::RunResult;
use rand::RngCore;
use rapidviz_stats::{Interval, IntervalSet, RunningMean};

/// A relation we can only sample whole rows from: each draw yields
/// `(group index, measure value)`.
pub trait StreamSource {
    /// Number of groups `k`.
    fn group_count(&self) -> usize;

    /// Group labels.
    fn labels(&self) -> Vec<String>;

    /// Total number of rows.
    fn total_rows(&self) -> u64;

    /// Draws one uniformly random row (with replacement).
    fn sample_row(&mut self, rng: &mut dyn RngCore) -> (usize, f64);
}

/// A [`StreamSource`] over materialized per-group vectors.
#[derive(Debug, Clone)]
pub struct VecStream {
    labels: Vec<String>,
    groups: Vec<Vec<f64>>,
    /// Cumulative row counts for weighted group choice.
    cumulative: Vec<u64>,
    total: u64,
}

impl VecStream {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups or any group is empty.
    #[must_use]
    pub fn new(labeled_groups: Vec<(String, Vec<f64>)>) -> Self {
        assert!(!labeled_groups.is_empty(), "need at least one group");
        let mut labels = Vec::with_capacity(labeled_groups.len());
        let mut groups = Vec::with_capacity(labeled_groups.len());
        let mut cumulative = Vec::with_capacity(labeled_groups.len());
        let mut total = 0u64;
        for (label, values) in labeled_groups {
            assert!(!values.is_empty(), "group {label:?} is empty");
            total += values.len() as u64;
            labels.push(label);
            groups.push(values);
            cumulative.push(total);
        }
        Self {
            labels,
            groups,
            cumulative,
            total,
        }
    }

    /// True group means (evaluation only).
    #[must_use]
    pub fn true_means(&self) -> Vec<f64> {
        self.groups
            .iter()
            .map(|g| g.iter().sum::<f64>() / g.len() as f64)
            .collect()
    }
}

impl StreamSource for VecStream {
    fn group_count(&self) -> usize {
        self.groups.len()
    }

    fn labels(&self) -> Vec<String> {
        self.labels.clone()
    }

    fn total_rows(&self) -> u64 {
        self.total
    }

    fn sample_row(&mut self, rng: &mut dyn RngCore) -> (usize, f64) {
        use rand::Rng;
        let row = rng.gen_range(0..self.total);
        let gi = self.cumulative.partition_point(|&c| c <= row);
        let within = row - (if gi == 0 { 0 } else { self.cumulative[gi - 1] });
        (gi, self.groups[gi][within as usize])
    }
}

/// The no-index ordering algorithm (Problem 9).
#[derive(Debug, Clone)]
pub struct NoIndexSampler {
    config: AlgoConfig,
}

impl NoIndexSampler {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Runs over the stream. `rounds` in the result counts drawn rows.
    pub fn run<S: StreamSource>(&self, stream: &mut S, rng: &mut dyn RngCore) -> RunResult {
        let k = stream.group_count();
        assert!(k > 0, "need at least one group");
        let schedule = self.config.schedule(k);
        let n_total = stream.total_rows();
        let labels = stream.labels();
        let mut estimates = vec![RunningMean::new(); k];
        let mut rows_drawn = 0u64;
        let mut truncated = false;
        let resolution_eps = self.config.resolution_epsilon();
        // Check termination every `check_stride` rows: each check is O(k log k).
        let check_stride = (k as u64).max(16);

        loop {
            // Draw a batch of rows.
            for _ in 0..check_stride {
                let (gi, value) = stream.sample_row(rng);
                estimates[gi].push(value);
            }
            rows_drawn += check_stride;

            // Groups not yet observed keep ε = c (vacuous interval spanning
            // the whole range).
            let eps_of = |i: usize| {
                let m = estimates[i].count();
                if m == 0 {
                    self.config.c
                } else {
                    // No-index sampling is with replacement over the whole
                    // relation; per-group draws are i.i.d. group members.
                    schedule.half_width(m, n_total)
                }
            };
            if let Some(thresh) = resolution_eps {
                if (0..k).all(|i| eps_of(i) < thresh) {
                    break;
                }
            }
            let set = IntervalSet::new(
                (0..k)
                    .map(|i| Interval::centered(estimates[i].mean(), eps_of(i)))
                    .collect(),
            );
            if (0..k).all(|i| !set.member_overlaps_others(i)) {
                break;
            }
            if rows_drawn >= self.config.max_rounds {
                truncated = true;
                break;
            }
        }
        RunResult {
            labels,
            estimates: estimates.iter().map(RunningMean::mean).collect(),
            samples_per_group: (0..k).map(|i| estimates[i].count()).collect(),
            rounds: rows_drawn,
            trace: None,
            history: None,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn stream(means: &[f64], n: usize, seed: u64) -> VecStream {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        VecStream::new(
            means
                .iter()
                .enumerate()
                .map(|(i, &mu)| {
                    let values: Vec<f64> = (0..n)
                        .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                        .collect();
                    (format!("g{i}"), values)
                })
                .collect(),
        )
    }

    #[test]
    fn orders_correctly_without_an_index() {
        let mut s = stream(&[20.0, 50.0, 80.0], 50_000, 140);
        let truths = s.true_means();
        let algo = NoIndexSampler::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(141);
        let result = algo.run(&mut s, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
        assert!(!result.truncated);
    }

    #[test]
    fn per_group_counts_follow_sizes() {
        // 80% of rows in group 0: it gets ~4x the samples of group 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(142);
        let big: Vec<f64> = (0..80_000)
            .map(|_| if rng.gen_bool(0.2) { 100.0 } else { 0.0 })
            .collect();
        let small: Vec<f64> = (0..20_000)
            .map(|_| if rng.gen_bool(0.8) { 100.0 } else { 0.0 })
            .collect();
        let mut s = VecStream::new(vec![("big".into(), big), ("small".into(), small)]);
        let algo = NoIndexSampler::new(AlgoConfig::new(100.0, 0.05));
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(143);
        let result = algo.run(&mut s, &mut run_rng);
        let ratio = result.samples_per_group[0] as f64 / result.samples_per_group[1] as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "sample ratio should track the 4:1 size ratio, got {ratio}"
        );
    }

    #[test]
    fn resolution_bounds_total_draws() {
        let mut s = stream(&[40.0, 41.0], 200_000, 144);
        let algo = NoIndexSampler::new(AlgoConfig::new(100.0, 0.05).with_resolution(5.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(145);
        let result = algo.run(&mut s, &mut rng);
        assert!(!result.truncated);
        assert!(
            result.rounds < 400_000,
            "resolution must bound draws, took {}",
            result.rounds
        );
    }

    #[test]
    fn stream_sampling_is_weighted_uniform() {
        let mut s = VecStream::new(vec![
            ("a".into(), vec![1.0; 300]),
            ("b".into(), vec![2.0; 700]),
        ]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(146);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            let (gi, v) = s.sample_row(&mut rng);
            counts[gi] += 1;
            assert_eq!(v, if gi == 0 { 1.0 } else { 2.0 });
        }
        let frac = f64::from(counts[0]) / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "group share {frac}");
    }
}
