//! §6.3.1 / §6.3.2 — `SUM` and `COUNT` aggregates.
//!
//! * **Known group sizes (Algorithm 4, [`IFocusSum1`]).** `σ_i = µ_i·|S_i|`,
//!   so the machinery is IFOCUS with per-group scaling: estimates and
//!   confidence half-widths are both multiplied by `|S_i|`, making the
//!   interval-overlap test operate in "sum space".
//! * **Unknown group sizes (Algorithm 5, [`IFocusSum2`]).** Sources produce
//!   pairs `(x, z)` where `x` is a random group member and `z` an
//!   independent unbiased `{0,1}` estimate of the normalized group size
//!   `s_i` (NEEDLETAIL gets `z` from its in-memory bitmaps without extra
//!   I/O). `x·z ∈ [0, c]` is an unbiased estimate of the normalized sum
//!   `σ_i = s_i·µ_i`, so the *same* Hoeffding-based schedule applies — the
//!   surprising observation the paper makes. Estimates returned are
//!   normalized sums; multiply by the total relation size for absolute sums.
//! * **`COUNT` ([`ifocus_count`]).** Trivial with known sizes; with unknown
//!   sizes, run the same loop on the `z` stream alone (values in `[0, 1]`,
//!   so the schedule uses `c = 1`), yielding normalized counts `s_i`.

use crate::config::AlgoConfig;
use crate::group::{GroupSource, MaybeSend};
use crate::result::RunResult;
use crate::runner::{AlgorithmStepper, OrderingAlgorithm, Snapshot, StepOutcome};
use crate::saved::{check_len, RestoreError, SavedStepper, SavedSum2};
use crate::state::{FixpointScratch, FocusState};
use rand::RngCore;
use rapidviz_stats::{EpsilonSchedule, Interval, RunningMean, SamplingMode};

/// IFOCUS for `SUM` with known group sizes (Algorithm 4).
#[derive(Debug, Clone)]
pub struct IFocusSum1 {
    config: AlgoConfig,
}

impl IFocusSum1 {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Begins a resumable run (bootstrap sample plus the round-1 scaled
    /// separation check). A fixed-seed `start`/`step`/`finish` drive is
    /// byte-identical to [`IFocusSum1::run`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: GroupSource>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusSum1Stepper {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        let sizes = state.sizes.clone();
        Self::deactivate_scaled(&mut state, &sizes);
        state.record();
        IFocusSum1Stepper { state, sizes }
    }

    /// Runs over the groups; estimates are group **sums** `ν_i ≈ σ_i` —
    /// a thin loop over [`IFocusSum1::start`] and
    /// [`AlgorithmStepper::step`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step_any(groups, rng).is_running() {}
        stepper.finish()
    }

    /// Overlap test with per-group scaled intervals
    /// `[|S_i|·(ν_i − ε), |S_i|·(ν_i + ε)]` (Algorithm 4 lines 6–7, 11–13),
    /// iterated to a fixpoint in the state's reusable scratch (zero
    /// steady-state allocation).
    fn deactivate_scaled(state: &mut FocusState, sizes: &[u64]) {
        let eps_base = state.epsilon();
        let mut fix = std::mem::take(&mut state.fix);
        while fix.separate(&state.active, |i| {
            let scale = sizes[i] as f64;
            Interval::centered(state.estimates[i].mean() * scale, eps_base * scale)
        }) {
            for &i in &fix.remove {
                state.deactivate(i, eps_base);
            }
        }
        state.fix = fix;
    }
}

/// The Algorithm-4 state machine: one step per round (one draw per active
/// group, then the scaled-interval deactivation fixpoint). Snapshots report
/// estimates and intervals in **sum space** (`×|S_i|`), matching the final
/// result semantics.
#[derive(Debug)]
pub struct IFocusSum1Stepper {
    state: FocusState,
    sizes: Vec<u64>,
}

impl IFocusSum1Stepper {
    /// Total samples drawn so far (cheaper than a full snapshot — used by
    /// session budget checks every round).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.state.total_samples()
    }

    /// [`AlgorithmStepper::step`] without the `MaybeSend` bound (this
    /// per-draw loop never fans out across threads).
    pub fn step_any<G: GroupSource>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        let state = &mut self.state;
        if !state.any_active() {
            return StepOutcome::Converged;
        }
        if state.m >= state.config.max_rounds {
            state.truncated = true;
            return StepOutcome::BudgetExhausted;
        }
        state.m += 1;
        for i in 0..state.k() {
            if state.active[i] && !state.exhausted[i] {
                state.draw(i, &mut groups[i], rng);
            }
        }
        // Resolution semantics in sum space: ε_i = |S_i|·ε, so the
        // cut-off compares the *largest* scaled width against r/4.
        let eps_base = state.epsilon();
        let max_scaled = self
            .sizes
            .iter()
            .zip(&state.active)
            .filter(|(_, &a)| a)
            .map(|(&n, _)| n as f64 * eps_base)
            .fold(0.0f64, f64::max);
        let resolution_hit = state
            .config
            .resolution_epsilon()
            .is_some_and(|thresh| max_scaled < thresh);
        if resolution_hit || state.all_active_exhausted() {
            state.deactivate_all();
        } else {
            IFocusSum1::deactivate_scaled(state, &self.sizes);
        }
        state.record();
        if state.any_active() {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }
}

impl AlgorithmStepper for IFocusSum1Stepper {
    fn step<G: GroupSource + MaybeSend>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        self.step_any(groups, rng)
    }

    fn snapshot(&self) -> Snapshot {
        let mut snap = self.state.snapshot();
        // Scale estimates and intervals from mean space into sum space.
        for (i, &n) in self.sizes.iter().enumerate() {
            let scale = n as f64;
            snap.estimates[i] *= scale;
            let iv = snap.intervals[i];
            snap.intervals[i] = Interval::centered(iv.center() * scale, 0.5 * iv.width() * scale);
        }
        snap
    }

    fn approx_bytes(&self) -> usize {
        self.state.approx_bytes() + self.sizes.capacity() * std::mem::size_of::<u64>()
    }

    fn save(&self) -> Option<SavedStepper> {
        // `sizes` is derived (cloned from the state at start) — only the
        // shared focus core needs saving.
        Some(SavedStepper::Sum1(self.state.save_core()))
    }

    fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        match saved {
            SavedStepper::Sum1(core) => self.state.restore_core(core),
            other => Err(RestoreError::WrongKind {
                expected: "sum1",
                got: other.kind(),
            }),
        }
    }

    fn finish(self) -> RunResult {
        let mut result = self.state.finish();
        // Convert mean estimates to sums.
        for (est, &n) in result.estimates.iter_mut().zip(&self.sizes) {
            *est *= n as f64;
        }
        result
    }
}

impl OrderingAlgorithm for IFocusSum1 {
    type Stepper = IFocusSum1Stepper;

    fn name(&self) -> String {
        if self.config.resolution.is_some() {
            "ifocus-sum1r".to_owned()
        } else {
            "ifocus-sum1".to_owned()
        }
    }

    fn start<G: GroupSource + MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusSum1Stepper {
        IFocusSum1::start(self, groups, rng)
    }
}

/// A group source that also yields unbiased normalized-size estimates —
/// what Algorithm 5 needs when group sizes are unknown.
pub trait SizedGroupSource {
    /// Display label.
    fn label(&self) -> String;

    /// Draws `(x, z)`: a uniform random member value and an independent
    /// `{0, 1}` estimate with `E[z] = s_i` (the group's fraction of the
    /// relation). Always with replacement.
    fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)>;

    /// Draws up to `n` `(x, z)` pairs in one call, appending them to `out`
    /// in draw order; returns the number appended (stops early only if the
    /// source comes up dry mid-batch, which i.i.d. sized sources never do).
    ///
    /// The default implementation loops [`Self::sample_with_size`], so
    /// every source is batch-capable with unchanged semantics. Sources
    /// backed by rank/select storage (the NEEDLETAIL size-estimating
    /// sampler) override this to resolve the whole batch through one
    /// sorted `select_many` sweep. Overrides **must** consume the RNG
    /// identically to `n` single draws so batching never changes a
    /// fixed-seed run's output.
    fn sample_with_size_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut Vec<(f64, f64)>,
    ) -> u64 {
        let mut got = 0;
        for _ in 0..n {
            match self.sample_with_size(rng) {
                Some(pair) => {
                    out.push(pair);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// True normalized sum `s_i·µ_i`, when known (evaluation only).
    fn true_normalized_sum(&self) -> Option<f64> {
        None
    }
}

/// Mutable references delegate verbatim (including the batch hook, so a
/// `select_many`-backed override is never shadowed by the looping default).
impl<G: SizedGroupSource + ?Sized> SizedGroupSource for &mut G {
    fn label(&self) -> String {
        (**self).label()
    }

    fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)> {
        (**self).sample_with_size(rng)
    }

    fn sample_with_size_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut Vec<(f64, f64)>,
    ) -> u64 {
        (**self).sample_with_size_batch(n, rng, out)
    }

    fn true_normalized_sum(&self) -> Option<f64> {
        (**self).true_normalized_sum()
    }
}

/// The `COUNT` reduction over a [`SizedGroupSource`] (§6.3.2): forwards the
/// inner source's draws but replaces every `x` by the constant 1, so
/// `x·z = z` and IFOCUS runs on the size-estimate stream alone. Owns its
/// inner source, so resumable sessions can hold count-reduced storage
/// handles without borrowing.
#[derive(Debug, Clone)]
pub struct CountSource<G> {
    inner: G,
}

impl<G: SizedGroupSource> CountSource<G> {
    /// Wraps a sized source in the COUNT reduction.
    #[must_use]
    pub fn new(inner: G) -> Self {
        Self { inner }
    }

    /// The wrapped source.
    #[must_use]
    pub fn inner(&self) -> &G {
        &self.inner
    }
}

impl<G: SizedGroupSource> SizedGroupSource for CountSource<G> {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)> {
        self.inner.sample_with_size(rng).map(|(_, z)| (1.0, z))
    }

    fn sample_with_size_batch(
        &mut self,
        n: u64,
        rng: &mut dyn RngCore,
        out: &mut Vec<(f64, f64)>,
    ) -> u64 {
        // Forward to the source's (possibly select_many-batched)
        // implementation, then overwrite x with the constant 1.
        let base = out.len();
        let got = self.inner.sample_with_size_batch(n, rng, out);
        for pair in &mut out[base..] {
            pair.0 = 1.0;
        }
        got
    }

    // true_normalized_sum deliberately stays at the `None` default: under
    // the x ≡ 1 rewrite the truth would be the normalized count s_i, which
    // the inner SizedGroupSource does not expose on its own.
}

/// A [`SizedGroupSource`] over a materialized vector with a known fraction —
/// the test/synthetic counterpart of a NEEDLETAIL size-estimating handle.
#[derive(Debug, Clone)]
pub struct VecSizedGroup {
    label: String,
    values: Vec<f64>,
    fraction: f64,
}

impl VecSizedGroup {
    /// Creates a group occupying `fraction` of the relation.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `fraction ∉ (0, 1]`.
    #[must_use]
    pub fn new(label: impl Into<String>, values: Vec<f64>, fraction: f64) -> Self {
        assert!(!values.is_empty(), "a group must have at least one member");
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must lie in (0, 1]"
        );
        Self {
            label: label.into(),
            values,
            fraction,
        }
    }
}

impl SizedGroupSource for VecSizedGroup {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)> {
        use rand::Rng;
        let x = self.values[rng.gen_range(0..self.values.len())];
        let z = f64::from(u8::from(rng.gen_bool(self.fraction)));
        Some((x, z))
    }

    fn true_normalized_sum(&self) -> Option<f64> {
        let mean = self.values.iter().sum::<f64>() / self.values.len() as f64;
        Some(mean * self.fraction)
    }
}

/// IFOCUS for `SUM` with **unknown** group sizes (Algorithm 5). Returns
/// normalized sums `ν_i ≈ s_i·µ_i`.
#[derive(Debug, Clone)]
pub struct IFocusSum2 {
    config: AlgoConfig,
}

impl IFocusSum2 {
    /// Creates the algorithm.
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Begins a resumable run: one bootstrap `(x, z)` pair per group plus
    /// the round-1 deactivation test. Drive the returned stepper with
    /// [`IFocusSum2Stepper::step`] over the same groups and RNG; a
    /// fixed-seed `start`/`step`/`finish` drive is byte-identical to
    /// [`IFocusSum2::run`].
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn start<G: SizedGroupSource>(
        &self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> IFocusSum2Stepper {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        // Algorithm 5's ε has no without-replacement factor (x·z pairs are
        // i.i.d. by construction).
        let schedule = EpsilonSchedule::with_options(
            self.config.c,
            self.config.delta,
            k,
            self.config.kappa,
            SamplingMode::WithReplacement,
            self.config.heuristic_factor,
        );
        let mut stepper = IFocusSum2Stepper {
            config: self.config.clone(),
            schedule,
            labels: groups.iter().map(SizedGroupSource::label).collect(),
            estimates: vec![RunningMean::new(); k],
            active: vec![true; k],
            frozen_eps: vec![f64::INFINITY; k],
            samples: vec![0u64; k],
            m: 1,
            truncated: false,
            pairs: Vec::new(),
            fix: FixpointScratch::default(),
        };
        for (i, group) in groups.iter_mut().enumerate() {
            if let Some((x, z)) = group.sample_with_size(rng) {
                stepper.estimates[i].push(x * z);
                stepper.samples[i] += 1;
            }
        }
        // Round-1 deactivation (lines 11–13) so the first snapshot already
        // reflects any instant separations.
        stepper.deactivate();
        stepper
    }

    /// Runs over sized sources to completion — a thin loop over
    /// [`IFocusSum2::start`] and [`IFocusSum2Stepper::step`].
    ///
    /// Rounds draw [`AlgoConfig::samples_per_round`] pairs per active
    /// group through [`SizedGroupSource::sample_with_size_batch`] — one
    /// batched call (and, for NEEDLETAIL-backed sources, one sorted
    /// `select_many` sweep) instead of per-draw sampler round trips — into
    /// a reusable pair buffer, feeding the estimator via the batched
    /// [`RunningMean::push_products`] hook. Fixed-seed results are
    /// byte-identical to the historical per-draw loop (regression-tested
    /// against a verbatim reference implementation).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: SizedGroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut stepper = self.start(groups, rng);
        while stepper.step(groups, rng).is_running() {}
        stepper.finish()
    }
}

/// The Algorithm-5 state machine: one step per round (a batched `(x, z)`
/// draw from every active group, then the deactivation fixpoint at the new
/// `m`). Operates over [`SizedGroupSource`]s, so it mirrors
/// [`AlgorithmStepper`]'s shape with inherent methods rather than
/// implementing the `GroupSource`-bound trait.
#[derive(Debug)]
pub struct IFocusSum2Stepper {
    config: AlgoConfig,
    schedule: EpsilonSchedule,
    labels: Vec<String>,
    estimates: Vec<RunningMean>,
    active: Vec<bool>,
    /// ε at the moment each group deactivated (snapshot intervals only;
    /// the historical blocking loop never tracked it, and it affects no
    /// estimate).
    frozen_eps: Vec<f64>,
    samples: Vec<u64>,
    m: u64,
    truncated: bool,
    /// Reusable draw buffer: cleared, never shrunk, between batches.
    pairs: Vec<(f64, f64)>,
    /// Reusable deactivation-fixpoint buffers.
    fix: FixpointScratch,
}

impl IFocusSum2Stepper {
    /// Total samples drawn so far (cheaper than a full snapshot — used by
    /// session budget checks every round).
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Deactivation (lines 11–13) at the current `m`, iterated to a
    /// fixpoint in the reusable scratch (zero steady-state allocation).
    fn deactivate(&mut self) {
        let eps = self.schedule.half_width(self.m, u64::MAX);
        let resolution_hit = self
            .config
            .resolution_epsilon()
            .is_some_and(|thresh| eps < thresh);
        if resolution_hit {
            for i in 0..self.active.len() {
                if self.active[i] {
                    self.active[i] = false;
                    self.frozen_eps[i] = eps;
                }
            }
        } else {
            let mut fix = std::mem::take(&mut self.fix);
            while fix.separate(&self.active, |i| {
                Interval::centered(self.estimates[i].mean(), eps)
            }) {
                for &i in &fix.remove {
                    self.active[i] = false;
                    self.frozen_eps[i] = eps;
                }
            }
            self.fix = fix;
        }
    }

    /// Advances one round; mirrors [`AlgorithmStepper::step`].
    pub fn step<G: SizedGroupSource>(
        &mut self,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> StepOutcome {
        if !self.active.iter().any(|&a| a) {
            return StepOutcome::Converged;
        }
        if self.m >= self.config.max_rounds {
            self.truncated = true;
            return StepOutcome::BudgetExhausted;
        }
        let batch = self.config.samples_per_round;
        self.m += batch;
        for i in 0..self.active.len() {
            if self.active[i] {
                self.pairs.clear();
                let got = groups[i].sample_with_size_batch(batch, rng, &mut self.pairs);
                self.estimates[i].push_products(&self.pairs);
                self.samples[i] += got;
            }
        }
        self.deactivate();
        if self.active.iter().any(|&a| a) {
            StepOutcome::Running
        } else {
            StepOutcome::Converged
        }
    }

    /// The current estimates (normalized sums), intervals, active set, and
    /// sample counts; mirrors [`AlgorithmStepper::snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let eps = self.schedule.half_width(self.m, u64::MAX);
        Snapshot {
            labels: self.labels.clone(),
            estimates: self.estimates.iter().map(RunningMean::mean).collect(),
            intervals: (0..self.labels.len())
                .map(|i| {
                    let half = if self.active[i] {
                        eps
                    } else {
                        self.frozen_eps[i]
                    };
                    Interval::centered(self.estimates[i].mean(), half)
                })
                .collect(),
            active: self.active.clone(),
            samples_per_group: self.samples.clone(),
            rounds: self.m,
            truncated: self.truncated,
        }
    }

    /// Approximate resident bytes of the stepper's state; mirrors
    /// [`AlgorithmStepper::approx_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.labels.capacity() * size_of::<String>()
            + self.labels.iter().map(String::capacity).sum::<usize>()
            + self.estimates.capacity() * size_of::<RunningMean>()
            + self.active.capacity() * size_of::<bool>()
            + self.frozen_eps.capacity() * size_of::<f64>()
            + self.samples.capacity() * size_of::<u64>()
            + self.pairs.capacity() * size_of::<(f64, f64)>()
            + self.fix.approx_bytes()
    }

    /// Captures the mutable round-loop state for a durable session
    /// checkpoint; mirrors [`AlgorithmStepper::save`]. The ε schedule is
    /// derived from the configuration (always with-replacement for the
    /// i.i.d. `x·z` stream) and is rebuilt by `start` on resume.
    #[must_use]
    pub fn save(&self) -> SavedStepper {
        SavedStepper::Sum2(SavedSum2 {
            estimates: self
                .estimates
                .iter()
                .map(|e| (e.count(), e.mean()))
                .collect(),
            active: self.active.clone(),
            frozen_eps: self.frozen_eps.clone(),
            samples: self.samples.clone(),
            m: self.m,
            truncated: self.truncated,
        })
    }

    /// Overwrites the mutable state from a checkpoint taken by
    /// [`Self::save`] on an identically planned run; mirrors
    /// [`AlgorithmStepper::restore`].
    ///
    /// # Errors
    ///
    /// Returns a structured [`RestoreError`] (never panics) when the saved
    /// kind or per-group shape does not match this stepper.
    pub fn restore(&mut self, saved: &SavedStepper) -> Result<(), RestoreError> {
        let SavedStepper::Sum2(s) = saved else {
            return Err(RestoreError::WrongKind {
                expected: "sum2",
                got: saved.kind(),
            });
        };
        let k = self.labels.len();
        check_len(k, &s.estimates)?;
        check_len(k, &s.active)?;
        check_len(k, &s.frozen_eps)?;
        check_len(k, &s.samples)?;
        for (est, &(count, mean)) in self.estimates.iter_mut().zip(&s.estimates) {
            *est = RunningMean::from_parts(count, mean);
        }
        self.active.copy_from_slice(&s.active);
        self.frozen_eps.copy_from_slice(&s.frozen_eps);
        self.samples.copy_from_slice(&s.samples);
        self.m = s.m;
        self.truncated = s.truncated;
        Ok(())
    }

    /// Packages the final result; mirrors [`AlgorithmStepper::finish`].
    #[must_use]
    pub fn finish(self) -> RunResult {
        RunResult {
            labels: self.labels,
            estimates: self.estimates.iter().map(RunningMean::mean).collect(),
            samples_per_group: self.samples,
            rounds: self.m,
            trace: None,
            history: None,
            truncated: self.truncated,
        }
    }
}

/// `COUNT` with unknown group sizes (§6.3.2): IFOCUS over the `z` stream
/// alone. Values lie in `[0, 1]`, so the schedule uses `c = 1`; the
/// returned estimates are normalized counts `ν_i ≈ s_i`.
///
/// # Panics
///
/// Panics if `groups` is empty.
pub fn ifocus_count<G: SizedGroupSource>(
    config: &AlgoConfig,
    groups: &mut [G],
    rng: &mut dyn RngCore,
) -> RunResult {
    // Reuse IFocusSum2 through [`CountSource`], which replaces x by the
    // constant 1 so x·z = z: exactly the "only getting samples for s_i"
    // reduction the paper describes.
    let mut adapters: Vec<CountSource<&mut G>> = groups.iter_mut().map(CountSource::new).collect();
    IFocusSum2::new(count_config(config)).run(&mut adapters, rng)
}

/// The configuration [`ifocus_count`] derives from a caller's: identical
/// except `c = 1` (the z stream lives in `[0, 1]`). Exposed so resumable
/// sessions can build the same COUNT stepper the blocking helper runs.
#[must_use]
pub fn count_config(config: &AlgoConfig) -> AlgoConfig {
    let mut count_config = config.clone();
    count_config.c = 1.0;
    count_config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};
    use rapidviz_stats::IntervalSet;

    fn two_point_values(mean: f64, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n)
            .map(|_| {
                if rng.gen_bool(mean / 100.0) {
                    100.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn sum1_orders_by_sum_not_mean() {
        // Group "big" has a lower mean but a much larger size, so its SUM
        // dominates: mean ordering and sum ordering disagree.
        let mut rng = rand::rngs::StdRng::seed_from_u64(120);
        let mut groups = vec![
            VecGroup::new("big", two_point_values(30.0, 60_000, &mut rng)),
            VecGroup::new("small", two_point_values(80.0, 5_000, &mut rng)),
        ];
        let true_sums: Vec<f64> = groups
            .iter()
            .map(|g| g.true_mean().unwrap() * g.len() as f64)
            .collect();
        assert!(true_sums[0] > true_sums[1], "test premise");
        let algo = IFocusSum1::new(AlgoConfig::new(100.0, 0.05));
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(121);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(
            result.estimates[0] > result.estimates[1],
            "sum ordering: {:?} vs true {:?}",
            result.estimates,
            true_sums
        );
        assert!(is_correctly_ordered(&result.estimates, &true_sums));
        // Estimated sums in the right ballpark.
        for (est, truth) in result.estimates.iter().zip(&true_sums) {
            assert!(
                (est - truth).abs() / truth < 0.5,
                "sum estimate {est} far from {truth}"
            );
        }
    }

    #[test]
    fn sum2_orders_normalized_sums() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(122);
        // Normalized sums: 0.6*30 = 18, 0.3*80 = 24, 0.1*50 = 5.
        let mut groups = vec![
            VecSizedGroup::new("a", two_point_values(30.0, 20_000, &mut rng), 0.6),
            VecSizedGroup::new("b", two_point_values(80.0, 20_000, &mut rng), 0.3),
            VecSizedGroup::new("c", two_point_values(50.0, 20_000, &mut rng), 0.1),
        ];
        let truths: Vec<f64> = groups
            .iter()
            .map(|g| g.true_normalized_sum().unwrap())
            .collect();
        let algo = IFocusSum2::new(AlgoConfig::new(100.0, 0.05).with_resolution(2.0));
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(123);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(
            crate::ordering::is_correctly_ordered_with_resolution(&result.estimates, &truths, 2.0),
            "estimates {:?} vs truths {truths:?}",
            result.estimates
        );
    }

    #[test]
    fn count_estimates_fractions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(124);
        let mut groups = vec![
            VecSizedGroup::new("half", two_point_values(50.0, 1000, &mut rng), 0.5),
            VecSizedGroup::new("third", two_point_values(50.0, 1000, &mut rng), 0.3),
            VecSizedGroup::new("fifth", two_point_values(50.0, 1000, &mut rng), 0.2),
        ];
        let config = AlgoConfig::new(100.0, 0.05).with_resolution(0.05);
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(125);
        let result = ifocus_count(&config, &mut groups, &mut run_rng);
        assert!(result.estimates[0] > result.estimates[1]);
        assert!(result.estimates[1] > result.estimates[2]);
        assert!((result.estimates[0] - 0.5).abs() < 0.08);
        assert!((result.estimates[1] - 0.3).abs() < 0.08);
        assert!((result.estimates[2] - 0.2).abs() < 0.08);
    }

    #[test]
    fn sum1_equal_sizes_matches_avg_behaviour() {
        // With equal sizes, SUM ordering == AVG ordering.
        let mut rng = rand::rngs::StdRng::seed_from_u64(126);
        let mut groups = vec![
            VecGroup::new("lo", two_point_values(20.0, 30_000, &mut rng)),
            VecGroup::new("hi", two_point_values(70.0, 30_000, &mut rng)),
        ];
        let algo = IFocusSum1::new(AlgoConfig::new(100.0, 0.05));
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(127);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(result.estimates[0] < result.estimates[1]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn sized_group_rejects_bad_fraction() {
        let _ = VecSizedGroup::new("x", vec![1.0], 0.0);
    }

    /// The pre-batching Algorithm 5 loop, verbatim: one `sample_with_size`
    /// call per active group per round. Guards the acceptance criterion
    /// that the batched SUM path is byte-identical for a fixed seed.
    fn reference_sum2<G: SizedGroupSource>(
        config: &AlgoConfig,
        groups: &mut [G],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let schedule = EpsilonSchedule::with_options(
            config.c,
            config.delta,
            k,
            config.kappa,
            SamplingMode::WithReplacement,
            config.heuristic_factor,
        );
        let labels: Vec<String> = groups.iter().map(SizedGroupSource::label).collect();
        let mut estimates = vec![RunningMean::new(); k];
        let mut active = vec![true; k];
        let mut samples = vec![0u64; k];
        let mut m = 1u64;
        let mut truncated = false;
        for (i, group) in groups.iter_mut().enumerate() {
            if let Some((x, z)) = group.sample_with_size(rng) {
                estimates[i].push(x * z);
                samples[i] += 1;
            }
        }
        loop {
            let eps = schedule.half_width(m, u64::MAX);
            let resolution_hit = config
                .resolution_epsilon()
                .is_some_and(|thresh| eps < thresh);
            if resolution_hit {
                active.iter_mut().for_each(|a| *a = false);
            } else {
                loop {
                    let members: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
                    if members.is_empty() {
                        break;
                    }
                    let set = IntervalSet::new(
                        members
                            .iter()
                            .map(|&i| Interval::centered(estimates[i].mean(), eps))
                            .collect(),
                    );
                    let to_remove: Vec<usize> = members
                        .iter()
                        .enumerate()
                        .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                        .map(|(_, &i)| i)
                        .collect();
                    if to_remove.is_empty() {
                        break;
                    }
                    for i in to_remove {
                        active[i] = false;
                    }
                }
            }
            if !active.iter().any(|&a| a) {
                break;
            }
            if m >= config.max_rounds {
                truncated = true;
                break;
            }
            m += 1;
            for i in 0..k {
                if active[i] {
                    if let Some((x, z)) = groups[i].sample_with_size(rng) {
                        estimates[i].push(x * z);
                        samples[i] += 1;
                    }
                }
            }
        }
        RunResult {
            labels,
            estimates: estimates.iter().map(RunningMean::mean).collect(),
            samples_per_group: samples,
            rounds: m,
            trace: None,
            history: None,
            truncated,
        }
    }

    #[test]
    fn sum2_batched_matches_single_draw_reference() {
        // Byte-identical results vs the pre-batching per-draw Algorithm 5
        // loop at batch size 1 (the default every caller gets).
        let mut rng = rand::rngs::StdRng::seed_from_u64(130);
        let make = |rng: &mut rand::rngs::StdRng| {
            vec![
                VecSizedGroup::new("a", two_point_values(30.0, 10_000, rng), 0.55),
                VecSizedGroup::new("b", two_point_values(75.0, 10_000, rng), 0.30),
                VecSizedGroup::new("c", two_point_values(50.0, 10_000, rng), 0.15),
            ]
        };
        let mut g1 = make(&mut rng);
        let mut g2 = g1.clone();
        let config = AlgoConfig::new(100.0, 0.05).with_resolution(1.0);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(131);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(131);
        let result = IFocusSum2::new(config.clone()).run(&mut g1, &mut rng1);
        let reference = reference_sum2(&config, &mut g2, &mut rng2);
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
        assert_eq!(result.truncated, reference.truncated);
    }

    #[test]
    fn sum2_larger_batches_still_order_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(132);
        let mut groups = vec![
            VecSizedGroup::new("a", two_point_values(30.0, 20_000, &mut rng), 0.6),
            VecSizedGroup::new("b", two_point_values(80.0, 20_000, &mut rng), 0.3),
            VecSizedGroup::new("c", two_point_values(50.0, 20_000, &mut rng), 0.1),
        ];
        let truths: Vec<f64> = groups
            .iter()
            .map(|g| g.true_normalized_sum().unwrap())
            .collect();
        let algo = IFocusSum2::new(
            AlgoConfig::new(100.0, 0.05)
                .with_resolution(2.0)
                .with_samples_per_round(32),
        );
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(133);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(
            crate::ordering::is_correctly_ordered_with_resolution(&result.estimates, &truths, 2.0),
            "estimates {:?} vs truths {truths:?}",
            result.estimates
        );
    }

    /// The pre-stepper Algorithm 4 loop, verbatim (per-iteration member /
    /// removal vectors and a fresh `IntervalSet` per fixpoint pass, as the
    /// blocking implementation had before the scratch arena). Guards the
    /// acceptance criterion that the refactor is byte-identical.
    fn reference_sum1(
        config: &AlgoConfig,
        groups: &mut [VecGroup],
        rng: &mut dyn RngCore,
    ) -> RunResult {
        fn deactivate_scaled(state: &mut FocusState, sizes: &[u64]) {
            let eps_base = state.epsilon();
            loop {
                let members: Vec<usize> = (0..state.k()).filter(|&i| state.active[i]).collect();
                if members.is_empty() {
                    break;
                }
                let set = IntervalSet::new(
                    members
                        .iter()
                        .map(|&i| {
                            let scale = sizes[i] as f64;
                            Interval::centered(state.estimates[i].mean() * scale, eps_base * scale)
                        })
                        .collect(),
                );
                let to_remove: Vec<usize> = members
                    .iter()
                    .enumerate()
                    .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                    .map(|(_, &i)| i)
                    .collect();
                if to_remove.is_empty() {
                    break;
                }
                for i in to_remove {
                    state.deactivate(i, eps_base);
                }
            }
        }
        let mut state = FocusState::initialize(config, groups, rng);
        let sizes = state.sizes.clone();
        deactivate_scaled(&mut state, &sizes);
        state.record();
        while state.any_active() {
            if state.m >= config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..state.k() {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            let eps_base = state.epsilon();
            let max_scaled = sizes
                .iter()
                .zip(&state.active)
                .filter(|(_, &a)| a)
                .map(|(&n, _)| n as f64 * eps_base)
                .fold(0.0f64, f64::max);
            let resolution_hit = config
                .resolution_epsilon()
                .is_some_and(|thresh| max_scaled < thresh);
            if resolution_hit || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                deactivate_scaled(&mut state, &sizes);
            }
            state.record();
        }
        let mut result = state.finish();
        for (est, &n) in result.estimates.iter_mut().zip(&sizes) {
            *est *= n as f64;
        }
        result
    }

    #[test]
    fn sum1_stepper_matches_blocking_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(140);
        let mut g1 = vec![
            VecGroup::new("big", two_point_values(30.0, 40_000, &mut rng)),
            VecGroup::new("mid", two_point_values(55.0, 20_000, &mut rng)),
            VecGroup::new("small", two_point_values(80.0, 5_000, &mut rng)),
        ];
        let mut g2 = g1.clone();
        let config = AlgoConfig::new(100.0, 0.05);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(141);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(141);
        let result = IFocusSum1::new(config.clone()).run(&mut g1, &mut rng1);
        let reference = reference_sum1(&config, &mut g2, &mut rng2);
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
        assert_eq!(result.truncated, reference.truncated);
    }

    #[test]
    fn count_matches_reference_sum2_with_rewrite() {
        // ifocus_count == reference Algorithm-5 loop over x-rewritten
        // sources with c = 1: the owned CountSource refactor must not move
        // a single RNG draw.
        #[derive(Clone)]
        struct RewriteX(VecSizedGroup);
        impl SizedGroupSource for RewriteX {
            fn label(&self) -> String {
                self.0.label()
            }
            fn sample_with_size(&mut self, rng: &mut dyn RngCore) -> Option<(f64, f64)> {
                self.0.sample_with_size(rng).map(|(_, z)| (1.0, z))
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(150);
        let make = |rng: &mut rand::rngs::StdRng| {
            vec![
                VecSizedGroup::new("half", two_point_values(50.0, 2_000, rng), 0.5),
                VecSizedGroup::new("fifth", two_point_values(50.0, 2_000, rng), 0.2),
            ]
        };
        let mut groups = make(&mut rng);
        let mut rewritten: Vec<RewriteX> = groups.iter().cloned().map(RewriteX).collect();
        let config = AlgoConfig::new(100.0, 0.05).with_resolution(0.05);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(151);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(151);
        let result = ifocus_count(&config, &mut groups, &mut rng1);
        let reference = reference_sum2(&count_config(&config), &mut rewritten, &mut rng2);
        assert_eq!(result.estimates, reference.estimates);
        assert_eq!(result.samples_per_group, reference.samples_per_group);
        assert_eq!(result.rounds, reference.rounds);
    }

    #[test]
    fn count_batch_adapter_forwards_and_rewrites_x() {
        // With per-round batches of 8 the COUNT adapter's batch override is
        // on the hot path; had it forwarded z but kept the raw x values,
        // the estimates would land near s_i·µ_i (≈ 12–16 here) instead of
        // the normalized fractions in [0, 1].
        let mut rng = rand::rngs::StdRng::seed_from_u64(134);
        let mut groups = vec![
            VecSizedGroup::new("big", two_point_values(40.0, 5_000, &mut rng), 0.6),
            VecSizedGroup::new("small", two_point_values(40.0, 5_000, &mut rng), 0.2),
        ];
        let config = AlgoConfig::new(100.0, 0.05)
            .with_resolution(0.05)
            .with_samples_per_round(8);
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(135);
        let result = ifocus_count(&config, &mut groups, &mut run_rng);
        assert!((result.estimates[0] - 0.6).abs() < 0.08);
        assert!((result.estimates[1] - 0.2).abs() < 0.08);
    }
}
