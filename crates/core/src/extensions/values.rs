//! Problem 6 — AVG-ORDER-ACTUAL (§6.2.1).
//!
//! Beyond ordering, each returned estimate must satisfy `|ν_i − µ_i| ≤ d`.
//! Per the paper's solution we enforce a minimum amount of sampling: a
//! group cannot deactivate while the anytime half-width is still above
//! `d/2` (so on the `1 − δ` event every estimate is within `d/2 ≤ d` of its
//! true mean). The sample complexity matches Theorem 3.6 with `η_i`
//! replaced by `min(η_i, d/2)` — the value requirement can only *increase*
//! sampling, never reduce it.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::state::FocusState;
use rand::RngCore;
use rapidviz_stats::{Interval, IntervalSet};

/// IFOCUS with a per-group value-accuracy requirement `±d`.
#[derive(Debug, Clone)]
pub struct IFocusValues {
    config: AlgoConfig,
    d: f64,
}

impl IFocusValues {
    /// Creates the algorithm with value tolerance `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    #[must_use]
    pub fn new(config: AlgoConfig, d: f64) -> Self {
        assert!(d > 0.0, "value tolerance d must be positive");
        Self { config, d }
    }

    /// Runs over the groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let mut state = FocusState::initialize(&self.config, groups, rng);
        self.update(&mut state);
        state.record();

        while state.any_active() {
            if state.m >= self.config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..state.k() {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                self.update(&mut state);
            }
            state.record();
        }
        state.finish()
    }

    /// Standard overlap deactivation gated on the value requirement:
    /// while `ε ≥ d/2` nobody may deactivate.
    fn update(&self, state: &mut FocusState) {
        let eps_now = state.epsilon();
        if eps_now >= self.d / 2.0 {
            return;
        }
        loop {
            let members: Vec<usize> = (0..state.k()).filter(|&i| state.active[i]).collect();
            if members.is_empty() {
                break;
            }
            let set = IntervalSet::new(
                members
                    .iter()
                    .map(|&i| Interval::centered(state.estimates[i].mean(), eps_now))
                    .collect(),
            );
            let to_remove: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                .map(|(_, &i)| i)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for i in to_remove {
                state.deactivate(i, eps_now);
            }
        }
    }
}

impl crate::runner::OrderingAlgorithm for IFocusValues {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-values".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn values_are_accurate_and_ordered() {
        let means = [20.0, 50.0, 80.0];
        let d = 3.0;
        let mut groups = two_point_groups(&means, 200_000, 100);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusValues::new(AlgoConfig::new(100.0, 0.05), d);
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
        for (est, truth) in result.estimates.iter().zip(&truths) {
            assert!(
                (est - truth).abs() <= d,
                "estimate {est} strayed more than {d} from {truth}"
            );
        }
    }

    #[test]
    fn costs_more_than_plain_ifocus_on_easy_data() {
        // Widely separated groups: plain IFOCUS stops early with sloppy
        // values; the value requirement forces more sampling.
        let means = [10.0, 50.0, 90.0];
        let mut g1 = two_point_groups(&means, 200_000, 102);
        let mut g2 = g1.clone();
        let values = IFocusValues::new(AlgoConfig::new(100.0, 0.05), 2.0);
        let plain = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(103);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(103);
        let r_values = values.run(&mut g1, &mut rng1);
        let r_plain = plain.run(&mut g2, &mut rng2);
        assert!(
            r_values.total_samples() > r_plain.total_samples(),
            "value accuracy must cost extra: {} vs {}",
            r_values.total_samples(),
            r_plain.total_samples()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_d() {
        let _ = IFocusValues::new(AlgoConfig::new(1.0, 0.05), 0.0);
    }
}
