//! Every algorithm variant of §6.
//!
//! * [`trends`] — Problem 3: trend-lines and choropleths need only
//!   *adjacent* groups ordered correctly.
//! * [`topt`] — Problem 4: certify and order only the top-`t` groups.
//! * [`mistakes`] — Problem 5: stop early once the ordering of all but an
//!   allowed fraction of pairs is certified.
//! * [`values`] — Problem 6: ordering *plus* per-group value accuracy `±d`.
//! * [`partial`] — Problem 7: stream each group's estimate out the moment
//!   it becomes inactive.
//! * [`sum`] — §6.3.1/§6.3.2: `SUM` with known (Algorithm 4) and unknown
//!   (Algorithm 5) group sizes, and `COUNT`.
//! * [`multi`] — §6.3.5: two aggregates visualized simultaneously
//!   (Problem 8).
//! * [`noindex`] — §6.3.6: no index on the group-by attribute (Problem 9).
//!
//! Selection predicates (§6.3.3) and multiple group-bys (§6.3.4) change
//! *which rows are eligible*, not the algorithm, and are provided by the
//! storage layer: `rapidviz_needletail::NeedleTail::group_handles` accepts
//! an arbitrary predicate, and a multi-attribute group-by is expressed by
//! handing the algorithm one group per cell of the cross product.

pub mod adaptive;
pub mod graph;
pub mod mistakes;
pub mod multi;
pub mod noindex;
pub mod partial;
pub mod sum;
pub mod topt;
pub mod trends;
pub mod values;

pub use adaptive::IFocusBernstein;
pub use graph::{is_graph_correct, IFocusGraph};
pub use mistakes::IFocusMistakes;
pub use multi::{IFocusMultiAggregate, MultiAggregateResult, PairGroupSource, VecPairGroup};
pub use noindex::{NoIndexSampler, StreamSource, VecStream};
pub use partial::{IFocusPartial, IFocusPartialStepper, PartialEmission};
pub use sum::{
    count_config, ifocus_count, CountSource, IFocusSum1, IFocusSum1Stepper, IFocusSum2,
    IFocusSum2Stepper, SizedGroupSource, VecSizedGroup,
};
pub use topt::{IFocusTopT, TopTDirection};
pub use trends::IFocusTrends;
pub use values::IFocusValues;
