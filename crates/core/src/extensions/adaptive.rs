//! Variance-adaptive IFOCUS (empirical-Bernstein schedule).
//!
//! An extension beyond the paper (invited by its §3.6 theory remarks on
//! Bernstein-type bounds): identical round structure to IFOCUS, but the
//! per-group confidence half-width comes from the anytime **empirical
//! Bernstein** bound, which pays for the *observed* group variance instead
//! of the worst case `c²/4`. On low-variance workloads (the `truncnorm`
//! family has σ ≤ 10 on a range of 100) groups separate after a small
//! fraction of the samples Hoeffding needs.
//!
//! Because widths are per-group (they depend on each group's variance),
//! the overlap test uses heterogeneous intervals, like Algorithm 4's.
//! Sampling is with replacement (the empirical Bernstein inequality is
//! stated for i.i.d. draws); a finite-population refinement would only
//! tighten it.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use rand::RngCore;
use rapidviz_stats::{BernsteinSchedule, Interval, IntervalSet, SamplingMode, WelfordVariance};

/// IFOCUS with the empirical-Bernstein anytime schedule.
#[derive(Debug, Clone)]
pub struct IFocusBernstein {
    config: AlgoConfig,
}

impl IFocusBernstein {
    /// Creates the algorithm (uses `c`, `δ`, `resolution`, and the round
    /// caps from the config; κ/heuristic options do not apply).
    #[must_use]
    pub fn new(config: AlgoConfig) -> Self {
        Self { config }
    }

    /// Runs over the groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        assert!(!groups.is_empty(), "need at least one group");
        let k = groups.len();
        let schedule = BernsteinSchedule::new(self.config.c, self.config.delta, k);
        let labels: Vec<String> = groups.iter().map(GroupSource::label).collect();
        let mut stats = vec![WelfordVariance::new(); k];
        let mut active = vec![true; k];
        let mut samples = vec![0u64; k];
        let mut m = 1u64;
        let mut truncated = false;
        let resolution_eps = self.config.resolution_epsilon();

        for (i, group) in groups.iter_mut().enumerate() {
            if let Some(x) = group.sample(rng, SamplingMode::WithReplacement) {
                stats[i].push(x);
                samples[i] += 1;
            }
        }
        loop {
            let eps_of = |i: usize| {
                let var = stats[i].population_variance().unwrap_or(0.0);
                schedule.half_width(stats[i].count().max(1), var)
            };
            // Resolution cut-off: every active width below r/4.
            if let Some(thresh) = resolution_eps {
                if (0..k).filter(|&i| active[i]).all(|i| eps_of(i) < thresh) {
                    active.iter_mut().for_each(|a| *a = false);
                }
            }
            // Fixpoint deactivation with per-group widths.
            loop {
                let members: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
                if members.is_empty() {
                    break;
                }
                let set = IntervalSet::new(
                    members
                        .iter()
                        .map(|&i| Interval::centered(stats[i].mean(), eps_of(i)))
                        .collect(),
                );
                let to_remove: Vec<usize> = members
                    .iter()
                    .enumerate()
                    .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                    .map(|(_, &i)| i)
                    .collect();
                if to_remove.is_empty() {
                    break;
                }
                for i in to_remove {
                    active[i] = false;
                }
            }
            if !active.iter().any(|&a| a) {
                break;
            }
            if m >= self.config.max_rounds {
                truncated = true;
                break;
            }
            m += 1;
            for i in 0..k {
                if active[i] {
                    if let Some(x) = groups[i].sample(rng, SamplingMode::WithReplacement) {
                        stats[i].push(x);
                        samples[i] += 1;
                    }
                }
            }
        }
        RunResult {
            labels,
            estimates: stats.iter().map(WelfordVariance::mean).collect(),
            samples_per_group: samples,
            rounds: m,
            trace: None,
            history: None,
            truncated,
        }
    }
}

impl crate::runner::OrderingAlgorithm for IFocusBernstein {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-bernstein".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_correctly_ordered;
    use rand::{Rng, SeedableRng};

    /// Low-variance groups: values within ±3 of the mean on a [0, 100]
    /// range.
    fn narrow_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n).map(|_| mu + rng.gen_range(-3.0..3.0)).collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn orders_correctly() {
        let mut groups = narrow_groups(&[20.0, 50.0, 80.0], 100_000, 1);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusBernstein::new(AlgoConfig::new(100.0, 0.05));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
        assert!(!result.truncated);
    }

    #[test]
    fn beats_hoeffding_on_low_variance_data() {
        // Close means + tiny variance: the Bernstein variant should need
        // far fewer samples than Hoeffding-based IFOCUS.
        let means = [40.0, 43.0, 60.0];
        let mut g1 = narrow_groups(&means, 300_000, 3);
        let mut g2 = g1.clone();
        let bern = IFocusBernstein::new(AlgoConfig::new(100.0, 0.05));
        let hoef = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(4);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(4);
        let r_bern = bern.run(&mut g1, &mut rng1);
        let r_hoef = hoef.run(&mut g2, &mut rng2);
        assert!(
            r_bern.total_samples() * 5 < r_hoef.total_samples(),
            "bernstein {} should be far below hoeffding {}",
            r_bern.total_samples(),
            r_hoef.total_samples()
        );
        let truths: Vec<f64> = g1.iter().map(|g| g.true_mean().unwrap()).collect();
        assert!(is_correctly_ordered(&r_bern.estimates, &truths));
    }

    #[test]
    fn high_variance_data_still_correct() {
        // Two-point data (worst-case variance): no advantage, but the
        // guarantee must hold.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut groups: Vec<VecGroup> = [30.0f64, 70.0]
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..50_000)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect();
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusBernstein::new(AlgoConfig::new(100.0, 0.05));
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(6);
        let result = algo.run(&mut groups, &mut run_rng);
        assert!(is_correctly_ordered(&result.estimates, &truths));
    }

    #[test]
    fn resolution_cut_off_applies() {
        let mut groups = narrow_groups(&[50.0, 50.4], 400_000, 7);
        let algo = IFocusBernstein::new(AlgoConfig::new(100.0, 0.05).with_resolution(2.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
        assert!(
            result.total_samples() < 400_000,
            "resolution should bound sampling, took {}",
            result.total_samples()
        );
    }
}
