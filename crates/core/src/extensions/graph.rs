//! Choropleth / proximity-graph ordering (§6.1.1, second half).
//!
//! For a heat map the paper asks that "adjacent regions are correctly
//! ordered with respect to each other (or, even ... regions that are close
//! by)". [`IFocusGraph`] generalizes the trend-line variant from the path
//! graph to an arbitrary symmetric adjacency relation: only pairs joined by
//! an edge must order correctly, and a group deactivates when all its
//! incident edges are resolved. The trend-line algorithm is exactly this
//! with the path graph; a choropleth supplies its region-adjacency edges.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::state::FocusState;
use rand::RngCore;

/// IFOCUS for graph-restricted pairwise ordering.
#[derive(Debug, Clone)]
pub struct IFocusGraph {
    config: AlgoConfig,
    /// Symmetric edge list over group indices.
    edges: Vec<(usize, usize)>,
}

impl IFocusGraph {
    /// Creates the algorithm for the given adjacency edges (self-loops are
    /// ignored; duplicates are harmless).
    #[must_use]
    pub fn new(config: AlgoConfig, edges: Vec<(usize, usize)>) -> Self {
        Self { config, edges }
    }

    /// Builds the path graph over `k` groups — the trend-line special case.
    #[must_use]
    pub fn path(config: AlgoConfig, k: usize) -> Self {
        let edges = (1..k).map(|i| (i - 1, i)).collect();
        Self::new(config, edges)
    }

    /// Builds a 2D grid adjacency over `rows x cols` regions (row-major
    /// group indexing) — the typical choropleth lattice.
    #[must_use]
    pub fn grid(config: AlgoConfig, rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        Self::new(config, edges)
    }

    /// The edges this instance certifies.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Runs over the groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or an edge references a missing group.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        let k = groups.len();
        for &(a, b) in &self.edges {
            assert!(a < k && b < k, "edge ({a}, {b}) out of range for k={k}");
        }
        let mut state = FocusState::initialize(&self.config, groups, rng);
        let mut resolved: Vec<bool> = self.edges.iter().map(|&(a, b)| a == b).collect();
        self.update(&mut state, &mut resolved);
        state.record();

        while state.any_active() {
            if state.m >= self.config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..k {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                self.update(&mut state, &mut resolved);
            }
            state.record();
        }
        state.finish()
    }

    /// Resolves separated edges, then retires groups with no open edge.
    fn update(&self, state: &mut FocusState, resolved: &mut [bool]) {
        let eps_now = state.epsilon();
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            if !resolved[e] {
                let ia = state.interval(a, eps_now);
                let ib = state.interval(b, eps_now);
                if !ia.overlaps(&ib) {
                    resolved[e] = true;
                }
            }
        }
        let k = state.k();
        let mut has_open_edge = vec![false; k];
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            if !resolved[e] {
                has_open_edge[a] = true;
                has_open_edge[b] = true;
            }
        }
        for i in 0..k {
            if !has_open_edge[i] {
                state.deactivate(i, eps_now);
            }
        }
    }
}

/// Verifies graph-restricted ordering: every edge `(a, b)` with
/// `|µ_a − µ_b| > r` must have matching estimate and truth orderings.
///
/// # Panics
///
/// Panics if slices mismatch or an edge is out of range.
#[must_use]
pub fn is_graph_correct(
    estimates: &[f64],
    truths: &[f64],
    edges: &[(usize, usize)],
    r: f64,
) -> bool {
    assert_eq!(estimates.len(), truths.len(), "length mismatch");
    edges.iter().all(|&(a, b)| {
        let dt = truths[a] - truths[b];
        if dt.abs() <= r {
            return true;
        }
        let de = estimates[a] - estimates[b];
        de != 0.0 && (de > 0.0) == (dt > 0.0)
    })
}

impl crate::runner::OrderingAlgorithm for IFocusGraph {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-graph".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("region{i}"), values)
            })
            .collect()
    }

    #[test]
    fn grid_choropleth_orders_neighbors() {
        // 2x3 grid of regions; diagonal pairs (not adjacent) may stay
        // unresolved.
        let means = [30.0, 55.0, 20.0, 70.0, 45.0, 80.0];
        let mut groups = two_point_groups(&means, 80_000, 10);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusGraph::grid(AlgoConfig::new(100.0, 0.05), 2, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_graph_correct(
            &result.estimates,
            &truths,
            algo.edges(),
            0.0
        ));
    }

    #[test]
    fn path_graph_matches_trends_semantics() {
        let means = [20.0, 60.0, 35.0, 75.0];
        let mut groups = two_point_groups(&means, 60_000, 12);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusGraph::path(AlgoConfig::new(100.0, 0.05), 4);
        assert_eq!(algo.edges(), &[(0, 1), (1, 2), (2, 3)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let result = algo.run(&mut groups, &mut rng);
        assert!(crate::ordering::is_trend_correct(
            &result.estimates,
            &truths,
            0.0
        ));
    }

    #[test]
    fn sparse_graph_cheaper_than_full_ordering() {
        // Near-tied pair (0, 3) NOT joined by an edge: graph variant skips
        // the expensive comparison.
        let means = [40.0, 10.0, 90.0, 40.8];
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let mut g1 = two_point_groups(&means, 400_000, 14);
        let mut g2 = g1.clone();
        let graph = IFocusGraph::new(AlgoConfig::new(100.0, 0.05), edges);
        let full = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(15);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(15);
        let r_graph = graph.run(&mut g1, &mut rng1);
        let r_full = full.run(&mut g2, &mut rng2);
        assert!(
            r_graph.total_samples() * 4 < r_full.total_samples(),
            "graph {} should be far below full {}",
            r_graph.total_samples(),
            r_full.total_samples()
        );
    }

    #[test]
    fn empty_edge_set_terminates_immediately() {
        let mut groups = two_point_groups(&[30.0, 60.0], 1000, 16);
        let algo = IFocusGraph::new(AlgoConfig::new(100.0, 0.05), vec![]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let result = algo.run(&mut groups, &mut rng);
        assert_eq!(result.total_samples(), 2, "one bootstrap sample each");
    }

    #[test]
    fn self_loops_ignored() {
        let mut groups = two_point_groups(&[30.0, 60.0], 10_000, 18);
        let algo = IFocusGraph::new(AlgoConfig::new(100.0, 0.05), vec![(0, 0), (0, 1)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let result = algo.run(&mut groups, &mut rng);
        assert!(!result.truncated);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edge() {
        let mut groups = two_point_groups(&[30.0], 100, 20);
        let algo = IFocusGraph::new(AlgoConfig::new(100.0, 0.05), vec![(0, 5)]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let _ = algo.run(&mut groups, &mut rng);
    }

    #[test]
    fn graph_verifier() {
        let truths = [1.0, 5.0, 3.0];
        let est_good = [1.1, 5.2, 2.9];
        let est_bad = [5.5, 5.2, 2.9];
        let edges = [(0, 1), (1, 2)];
        assert!(is_graph_correct(&est_good, &truths, &edges, 0.0));
        assert!(!is_graph_correct(&est_bad, &truths, &edges, 0.0));
        // Pair (0, 2) is not an edge; mis-ordering it is fine.
        let est_non_edge = [3.5, 5.2, 3.4];
        assert!(is_graph_correct(&est_non_edge, &truths, &edges, 0.0));
        // Resolution exemption.
        assert!(is_graph_correct(&est_bad, &truths, &edges, 5.0));
    }
}
