//! Problem 4 — AVG-ORDER-TOP-t (§6.1.2).
//!
//! With many groups the analyst examines only the top-`t`; the algorithm
//! must (a) certify which groups are in the top-`t` and (b) order those
//! correctly among themselves. Activity is redefined: a group leaves the
//! active set as soon as it is **certainly outside the top-t** — i.e. at
//! least `t` other groups' confidence intervals lie entirely above its own
//! — even if its interval still overlaps someone (that comparison no longer
//! matters). Groups potentially in the top-`t` follow the usual
//! overlap rule restricted to other still-relevant groups.

use crate::config::AlgoConfig;
use crate::group::GroupSource;
use crate::result::RunResult;
use crate::state::FocusState;
use rand::RngCore;
use rapidviz_stats::{Interval, IntervalSet};

/// Whether the analyst wants the largest or the smallest `t` groups
/// (§6.1.2 supports both "top-t or bottom-t").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopTDirection {
    /// Certify the `t` groups with the largest means.
    #[default]
    Largest,
    /// Certify the `t` groups with the smallest means.
    Smallest,
}

/// IFOCUS for certified top-`t` (or bottom-`t`) visualization.
#[derive(Debug, Clone)]
pub struct IFocusTopT {
    config: AlgoConfig,
    t: usize,
    direction: TopTDirection,
}

impl IFocusTopT {
    /// Creates the algorithm for the largest `t` groups.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    #[must_use]
    pub fn new(config: AlgoConfig, t: usize) -> Self {
        assert!(t > 0, "t must be positive");
        Self {
            config,
            t,
            direction: TopTDirection::Largest,
        }
    }

    /// Creates the algorithm for the smallest `t` groups (e.g. "which
    /// airline should receive the prize for least delay" from §1).
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    #[must_use]
    pub fn new_bottom(config: AlgoConfig, t: usize) -> Self {
        assert!(t > 0, "t must be positive");
        Self {
            config,
            t,
            direction: TopTDirection::Smallest,
        }
    }

    /// The certification direction.
    #[must_use]
    pub fn direction(&self) -> TopTDirection {
        self.direction
    }

    /// The group indices the run certified, best first (largest first for
    /// [`TopTDirection::Largest`], smallest first for
    /// [`TopTDirection::Smallest`]).
    #[must_use]
    pub fn top_indices(&self, result: &RunResult) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..result.estimates.len()).collect();
        idx.sort_by(|&a, &b| {
            let ord = result.estimates[b].total_cmp(&result.estimates[a]);
            match self.direction {
                TopTDirection::Largest => ord,
                TopTDirection::Smallest => ord.reverse(),
            }
        });
        idx.truncate(self.t);
        idx
    }

    /// Runs over the groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or `t > k`.
    pub fn run<G: GroupSource>(&self, groups: &mut [G], rng: &mut dyn RngCore) -> RunResult {
        assert!(
            self.t <= groups.len(),
            "t = {} exceeds the number of groups {}",
            self.t,
            groups.len()
        );
        let mut state = FocusState::initialize(&self.config, groups, rng);
        // Groups certified outside the top-t; they stop being comparison
        // targets entirely.
        let mut ruled_out = vec![false; state.k()];
        self.update(&mut state, &mut ruled_out);
        state.record();

        while state.any_active() {
            if state.m >= self.config.max_rounds {
                state.truncated = true;
                break;
            }
            state.m += 1;
            for i in 0..state.k() {
                if state.active[i] && !state.exhausted[i] {
                    state.draw(i, &mut groups[i], rng);
                }
            }
            if state.resolution_reached() || state.all_active_exhausted() {
                state.deactivate_all();
            } else {
                self.update(&mut state, &mut ruled_out);
            }
            state.record();
        }
        state.finish()
    }

    /// Rules out groups certainly below the top-t, then applies the overlap
    /// rule among the remaining contenders.
    fn update(&self, state: &mut FocusState, ruled_out: &mut [bool]) {
        let eps_now = state.epsilon();
        let k = state.k();
        let intervals: Vec<Interval> = (0..k).map(|i| state.interval(i, eps_now)).collect();
        // A group is certainly out when >= t intervals sit strictly on the
        // winning side of it (above for top-t, below for bottom-t).
        for i in 0..k {
            if ruled_out[i] {
                continue;
            }
            let strictly_better = (0..k)
                .filter(|&j| {
                    j != i
                        && match self.direction {
                            TopTDirection::Largest => intervals[i].strictly_below(&intervals[j]),
                            TopTDirection::Smallest => intervals[j].strictly_below(&intervals[i]),
                        }
                })
                .count();
            if strictly_better >= self.t {
                ruled_out[i] = true;
                state.deactivate(i, eps_now);
            }
        }
        // Contenders follow the overlap rule among (active) contenders.
        loop {
            let members: Vec<usize> = (0..k)
                .filter(|&i| state.active[i] && !ruled_out[i])
                .collect();
            if members.is_empty() {
                break;
            }
            let set = IntervalSet::new(
                members
                    .iter()
                    .map(|&i| Interval::centered(state.estimates[i].mean(), eps_now))
                    .collect(),
            );
            let to_remove: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|&(pos, _)| !set.member_overlaps_others(pos))
                .map(|(_, &i)| i)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for i in to_remove {
                state.deactivate(i, eps_now);
            }
        }
    }
}

impl crate::runner::OrderingAlgorithm for IFocusTopT {
    type Stepper = crate::runner::OneShotStepper;

    fn name(&self) -> String {
        "ifocus-topt".to_owned()
    }

    /// Eager algorithm: the whole run happens inside `start`, and the
    /// returned one-shot stepper exposes only the final state.
    fn start<G: crate::group::GroupSource + crate::group::MaybeSend>(
        &self,
        groups: &mut [G],
        rng: &mut dyn rand::RngCore,
    ) -> crate::runner::OneShotStepper {
        crate::runner::OneShotStepper::completed(self.run(groups, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::VecGroup;
    use crate::ifocus::IFocus;
    use crate::ordering::is_top_t_correct;
    use rand::{Rng, SeedableRng};

    fn two_point_groups(means: &[f64], n: usize, seed: u64) -> Vec<VecGroup> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        means
            .iter()
            .enumerate()
            .map(|(i, &mu)| {
                let values: Vec<f64> = (0..n)
                    .map(|_| if rng.gen_bool(mu / 100.0) { 100.0 } else { 0.0 })
                    .collect();
                VecGroup::new(format!("g{i}"), values)
            })
            .collect()
    }

    #[test]
    fn certifies_the_right_top_groups() {
        let means = [15.0, 70.0, 40.0, 85.0, 25.0, 55.0];
        let mut groups = two_point_groups(&means, 100_000, 80);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusTopT::new(AlgoConfig::new(100.0, 0.05), 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let result = algo.run(&mut groups, &mut rng);
        assert!(is_top_t_correct(&result.estimates, &truths, 3, 0.0));
        let top = algo.top_indices(&result);
        assert_eq!(top, vec![3, 1, 5], "85, 70, 55 in that order");
    }

    #[test]
    fn cheaper_when_bottom_groups_conflict() {
        // Two near-ties at the bottom: top-2 certification can ignore them;
        // full ordering cannot.
        let means = [20.0, 21.0, 70.0, 90.0];
        let mut g1 = two_point_groups(&means, 400_000, 82);
        let mut g2 = g1.clone();
        let topt = IFocusTopT::new(AlgoConfig::new(100.0, 0.05), 2);
        let full = IFocus::new(AlgoConfig::new(100.0, 0.05));
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(83);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(83);
        let r_top = topt.run(&mut g1, &mut rng1);
        let r_full = full.run(&mut g2, &mut rng2);
        assert!(
            r_top.total_samples() * 4 < r_full.total_samples(),
            "top-t {} should be far below full {}",
            r_top.total_samples(),
            r_full.total_samples()
        );
    }

    #[test]
    fn t_equals_k_degenerates_to_full_ordering() {
        let means = [20.0, 50.0, 80.0];
        let mut groups = two_point_groups(&means, 50_000, 84);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusTopT::new(AlgoConfig::new(100.0, 0.05), 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(85);
        let result = algo.run(&mut groups, &mut rng);
        assert!(crate::ordering::is_correctly_ordered(
            &result.estimates,
            &truths
        ));
    }

    #[test]
    fn bottom_t_certifies_smallest() {
        let means = [15.0, 70.0, 40.0, 85.0, 25.0, 55.0];
        let mut groups = two_point_groups(&means, 100_000, 88);
        let truths: Vec<f64> = groups.iter().map(|g| g.true_mean().unwrap()).collect();
        let algo = IFocusTopT::new_bottom(AlgoConfig::new(100.0, 0.05), 2);
        assert_eq!(algo.direction(), TopTDirection::Smallest);
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let result = algo.run(&mut groups, &mut rng);
        let bottom = algo.top_indices(&result);
        assert_eq!(bottom, vec![0, 4], "15 and 25 are the two smallest");
        // Bottom-t correctness == top-t correctness on negated values.
        let neg_est: Vec<f64> = result.estimates.iter().map(|e| -e).collect();
        let neg_truth: Vec<f64> = truths.iter().map(|t| -t).collect();
        assert!(is_top_t_correct(&neg_est, &neg_truth, 2, 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn t_larger_than_k_panics() {
        let mut groups = two_point_groups(&[50.0], 100, 86);
        let algo = IFocusTopT::new(AlgoConfig::new(100.0, 0.05), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(87);
        let _ = algo.run(&mut groups, &mut rng);
    }
}
